"""Admission control: token buckets, backpressure, and portal wiring."""

from __future__ import annotations

import math
import tempfile

import pytest

from repro.portal import PortalClient, make_default_app
from repro.portal.admission import (
    AdmissionController,
    TokenBucket,
    admission_key,
    shed_response,
)
from repro.portal.http import Request


def _env(path="/", **extra):
    env = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path,
        "QUERY_STRING": "",
        "REMOTE_ADDR": "10.0.0.9",
    }
    env.update(extra)
    return env


class TestTokenBucket:
    def test_burst_then_exact_refill_wait(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        # empty: one token lands every 0.5s
        assert bucket.try_take(0.0) == pytest.approx(0.5)
        # half a token accrued by t=0.25 -> wait for the other half
        assert bucket.try_take(0.25) == pytest.approx(0.25)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        assert bucket.try_take(100.0) == 0.0  # refilled, but only to burst
        assert bucket.tokens == pytest.approx(1.0)

    def test_zero_rate_waits_forever(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
        bucket.try_take(0.0)
        assert bucket.try_take(1000.0) == math.inf


class TestAdmissionController:
    def _clock(self):
        state = {"t": 0.0}
        return state, (lambda: state["t"])

    def test_rate_rejection_is_429_with_exact_retry_after(self):
        state, now = self._clock()
        ac = AdmissionController(rate_per_s=1.0, burst=2.0, now_fn=now)
        assert ac.admit("alice").admitted
        assert ac.admit("alice").admitted
        decision = ac.admit("alice")
        assert not decision.admitted and decision.status == 429
        assert decision.retry_after_s == pytest.approx(1.0)
        state["t"] = 1.0  # one token has landed
        assert ac.admit("alice").admitted

    def test_buckets_are_per_user(self):
        _state, now = self._clock()
        ac = AdmissionController(rate_per_s=1.0, burst=1.0, now_fn=now)
        assert ac.admit("alice").admitted
        assert not ac.admit("alice").admitted
        assert ac.admit("bob").admitted  # bob's bucket is untouched

    def test_overload_rejection_is_503_scaling_with_backlog(self):
        _state, now = self._clock()
        ac = AdmissionController(
            rate_per_s=1e9, burst=1e9, max_inflight=2, queue_limit=2,
            drain_rate_per_s=10.0, now_fn=now,
        )
        decisions = [ac.admit(f"u{i}") for i in range(4)]
        assert all(d.admitted for d in decisions)
        assert [d.queued for d in decisions] == [False, False, True, True]
        rejected = ac.admit("u5")
        assert not rejected.admitted and rejected.status == 503
        assert rejected.retry_after_s > 0
        ac.release()
        assert ac.admit("u6").admitted  # capacity freed -> admitted again

    def test_queue_depth_tracks_backlog(self):
        _state, now = self._clock()
        ac = AdmissionController(
            rate_per_s=1e9, burst=1e9, max_inflight=1, queue_limit=5, now_fn=now
        )
        for i in range(3):
            ac.admit(f"u{i}")
        assert ac.inflight == 3 and ac.queue_depth == 2
        ac.release()
        assert ac.queue_depth == 1

    def test_bucket_table_is_bounded_lru(self):
        _state, now = self._clock()
        ac = AdmissionController(max_users=100, now_fn=now)
        for i in range(250):
            ac.admit(f"student-{i}")
        assert ac.tracked_users == 100
        assert ac.stats()["evicted_users"] == 150

    def test_stats_shape(self):
        _state, now = self._clock()
        ac = AdmissionController(rate_per_s=1.0, burst=1.0, now_fn=now)
        ac.admit("a")
        ac.admit("a")
        stats = ac.stats()
        for key in ("admitted", "rejected_429", "rejected_503", "rejected_429_503",
                    "inflight", "queue_depth", "queued_peak", "retry_after_s",
                    "tracked_users", "evicted_users"):
            assert key in stats
        assert stats["admitted"] == 1
        assert stats["rejected_429_503"] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestAdmissionKey:
    def test_cookie_sid_prefix_wins(self):
        req = Request(_env(HTTP_COOKIE="portal_session=abc123.sig99; theme=dark"))
        assert admission_key(req) == "abc123"

    def test_bearer_token_fallback(self):
        req = Request(_env(HTTP_AUTHORIZATION="Bearer tok55.sig"))
        assert admission_key(req) == "tok55"

    def test_remote_addr_fallback(self):
        assert admission_key(Request(_env())) == "10.0.0.9"

    def test_anon_last_resort(self):
        env = _env()
        del env["REMOTE_ADDR"]
        assert admission_key(Request(env)) == "anon"


class TestShedResponse:
    def test_retry_after_rounds_up_to_whole_seconds(self):
        from repro.portal.admission import AdmissionDecision

        resp = shed_response(AdmissionDecision(False, status=429, retry_after_s=0.3))
        assert resp.status == 429
        assert ("Retry-After", "1") in resp.headers
        resp = shed_response(AdmissionDecision(False, status=503, retry_after_s=2.4))
        assert resp.status == 503
        assert ("Retry-After", "3") in resp.headers


@pytest.fixture
def limited_portal():
    root = tempfile.mkdtemp(prefix="admission_portal_")
    admission = AdmissionController(rate_per_s=0.5, burst=3.0)
    app = make_default_app(root, admission=admission)
    client = PortalClient(app=app)
    client.login("admin", "admin-pass")
    return app, client, admission


class TestPortalIntegration:
    def _raw_get(self, client, path):
        headers = {"Authorization": f"Bearer {client._token}"}
        return client._transport.request("GET", path, b"", headers)

    def test_burst_exhaustion_returns_429_with_retry_after(self, limited_portal):
        app, client, admission = limited_portal
        statuses = []
        retry_after = None
        for _ in range(5):
            status, headers, _body = self._raw_get(client, "/api/whoami")
            statuses.append(status)
            if status == 429:
                retry_after = headers.get("Retry-After")
        assert 429 in statuses, f"rate limit never tripped: {statuses}"
        assert retry_after is not None and int(retry_after) >= 1
        assert admission.rejected_429 > 0

    def test_stats_expose_admission_block(self, limited_portal):
        app, _client, _admission = limited_portal
        block = app.stats()["portal"]["admission"]
        assert block["admitted"] >= 1
        assert "rejected_429_503" in block and "queue_depth" in block

    def test_metrics_scrapes_are_never_shed(self, limited_portal):
        app, client, _admission = limited_portal
        for _ in range(10):
            status, _headers, body = self._raw_get(client, "/metrics")
            assert status == 200
        assert b"repro_admission_rejected_total" in body
        assert b"repro_admission_admitted_total" in body

    def test_no_admission_controller_admits_everything(self):
        root = tempfile.mkdtemp(prefix="admission_off_")
        app = make_default_app(root)
        client = PortalClient(app=app)
        client.login("admin", "admin-pass")
        for _ in range(20):
            assert client.whoami()["username"] == "admin"
        assert app.stats()["portal"]["admission"] == {"enabled": False}

    def test_release_runs_even_when_handler_raises(self, limited_portal):
        app, client, admission = limited_portal
        self._raw_get(client, "/api/jobs/job-999999")  # 404s inside the handler
        assert admission.inflight == 0
