"""Live-streaming subprocess execution: output and stdin *during* the run."""

import time

import pytest

from repro.cluster import (
    ClusterSpec,
    Grid,
    JobDistributor,
    JobKind,
    JobRequest,
    JobState,
    SubprocessBackend,
)


@pytest.fixture
def dist():
    return JobDistributor(Grid(ClusterSpec.small()), SubprocessBackend())


def wait_for_line(job, needle: str, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(needle in line for line in job.stdout.tail(50)):
            return True
        time.sleep(0.02)
    return False


class TestLiveOutput:
    def test_output_visible_while_running(self, dist):
        prog = (
            "import time\n"
            "print('early line', flush=True)\n"
            "time.sleep(1.0)\n"
            "print('late line', flush=True)\n"
        )
        job = dist.submit(JobRequest(name="live", argv=["python3", "-c", prog], timeout_s=30))
        assert wait_for_line(job, "early line")
        # The process is still running: late line must NOT be there yet.
        assert job.state is JobState.RUNNING
        assert not any("late line" in l for l in job.stdout.tail())
        assert dist.wait_all(30)
        assert job.stdout.tail(10) == ["early line", "late line"]

    def test_incremental_polling_matches_emission(self, dist):
        prog = (
            "import time\n"
            "for i in range(5):\n"
            "    print(f'tick {i}', flush=True)\n"
            "    time.sleep(0.1)\n"
        )
        job = dist.submit(JobRequest(name="ticks", argv=["python3", "-c", prog], timeout_s=30))
        collected, offset = [], 0
        deadline = time.monotonic() + 20
        while not job.terminal and time.monotonic() < deadline:
            lines, offset, _ = job.stdout.read_since(offset)
            collected.extend(lines)
            time.sleep(0.05)
        lines, offset, _ = job.stdout.read_since(offset)
        collected.extend(lines)
        assert collected == [f"tick {i}" for i in range(5)]

    def test_stderr_also_streams(self, dist):
        prog = "import sys; print('to err', file=sys.stderr, flush=True); import time; time.sleep(0.5)"
        job = dist.submit(JobRequest(name="err", argv=["python3", "-c", prog], timeout_s=30))
        deadline = time.monotonic() + 10
        seen = False
        while time.monotonic() < deadline:
            if "to err" in job.stderr.tail(10):
                seen = True
                break
            time.sleep(0.02)
        assert seen
        dist.wait_all(30)


class TestLiveInput:
    def test_stdin_sent_mid_run(self, dist):
        prog = (
            "import sys\n"
            "print('ready', flush=True)\n"
            "line = sys.stdin.readline().strip()\n"
            "print(f'got {line}', flush=True)\n"
        )
        job = dist.submit(
            JobRequest(name="inter", kind=JobKind.INTERACTIVE,
                       argv=["python3", "-c", prog], timeout_s=30)
        )
        assert wait_for_line(job, "ready")
        job.stdin.write("mid-run-input\n")
        assert dist.wait_all(30)
        assert job.state is JobState.COMPLETED
        assert "got mid-run-input" in job.stdout.tail(10)

    def test_multiple_exchanges(self, dist):
        prog = (
            "import sys\n"
            "for i in range(3):\n"
            "    print(f'ask {i}', flush=True)\n"
            "    value = sys.stdin.readline().strip()\n"
            "    print(f'answer {value}', flush=True)\n"
        )
        job = dist.submit(
            JobRequest(name="chat", kind=JobKind.INTERACTIVE,
                       argv=["python3", "-c", prog], timeout_s=30)
        )
        for i in range(3):
            assert wait_for_line(job, f"ask {i}")
            job.stdin.write(f"v{i}\n")
        assert dist.wait_all(30)
        out = job.stdout.tail(20)
        assert [l for l in out if l.startswith("answer")] == ["answer v0", "answer v1", "answer v2"]

    def test_pre_supplied_stdin_still_works(self, dist):
        job = dist.submit(
            JobRequest(name="pre", argv=["python3", "-c", "print(input()[::-1])"],
                       stdin_data="stream\n", timeout_s=30)
        )
        assert dist.wait_all(30)
        assert job.stdout.tail() == ["maerts"]


class TestControl:
    def test_cancel_kills_promptly(self, dist):
        job = dist.submit(
            JobRequest(name="sleepy", argv=["python3", "-c", "import time; time.sleep(60)"],
                       timeout_s=120)
        )
        deadline = time.monotonic() + 5
        while job.state is not JobState.RUNNING and time.monotonic() < deadline:
            time.sleep(0.01)
        t0 = time.monotonic()
        dist.cancel(job.id)
        assert dist.wait_all(10)
        assert job.state is JobState.CANCELLED
        assert time.monotonic() - t0 < 3.0

    def test_timeout_in_streaming_mode(self, dist):
        job = dist.submit(
            JobRequest(name="hang", argv=["python3", "-c", "import time; time.sleep(60)"],
                       timeout_s=0.3)
        )
        assert dist.wait_all(30)
        assert job.state is JobState.TIMEOUT

    def test_batch_mode_forced_for_parallel(self):
        backend = SubprocessBackend(stream=True)
        dist = JobDistributor(Grid(ClusterSpec.small()), backend)
        job = dist.submit(
            JobRequest(name="par", kind=JobKind.PARALLEL, n_tasks=2,
                       argv=["python3", "-c", "import os; print(os.environ['REPRO_RANK'])"])
        )
        assert dist.wait_all(30)
        assert sorted(job.stdout.tail(5)) == ["[rank 0] 0", "[rank 1] 1"]

    def test_stream_disabled_backend_batches(self):
        dist = JobDistributor(Grid(ClusterSpec.small()), SubprocessBackend(stream=False))
        job = dist.submit(JobRequest(name="b", argv=["python3", "-c", "print('batch')"]))
        assert dist.wait_all(30)
        assert job.stdout.tail() == ["batch"]
