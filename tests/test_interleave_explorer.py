"""Systematic schedule exploration."""

from repro.interleave import (
    Nop,
    Scheduler,
    SharedVar,
    VMutex,
    explore,
)


def ab_ba_factory(policy):
    """The classic two-lock deadlock program."""
    sched = Scheduler(policy=policy, detect_races=False)
    a, b = VMutex("A"), VMutex("B")

    def t1():
        yield a.acquire()
        yield Nop()
        yield b.acquire()
        yield b.release()
        yield a.release()

    def t2():
        yield b.acquire()
        yield Nop()
        yield a.acquire()
        yield a.release()
        yield b.release()

    sched.spawn(t1(), name="p")
    sched.spawn(t2(), name="q")
    return sched, None


def ordered_factory(policy):
    """Both threads acquire in the same order: no deadlock possible."""
    sched = Scheduler(policy=policy, detect_races=False)
    a, b = VMutex("A"), VMutex("B")

    def t():
        yield a.acquire()
        yield Nop()
        yield b.acquire()
        yield b.release()
        yield a.release()

    sched.spawn(t(), name="p")
    sched.spawn(t(), name="q")
    return sched, None


def racy_counter_factory(policy):
    """Counter race with a final-state check."""
    sched = Scheduler(policy=policy)
    var = SharedVar("c", 0)

    def body(var):
        for _ in range(2):
            v = yield var.read()
            yield var.write(v + 1)

    sched.spawn(body(var), name="a")
    sched.spawn(body(var), name="b")

    def check(run):
        return None if var.value == 4 else f"lost update: {var.value} != 4"

    return sched, check


class TestExplore:
    def test_finds_ab_ba_deadlock(self):
        result = explore(ab_ba_factory, max_schedules=200)
        assert result.deadlocks, "exploration must find the AB/BA deadlock"
        assert result.exhausted

    def test_proves_ordered_program_deadlock_free(self):
        result = explore(ordered_factory, max_schedules=500)
        assert result.exhausted and result.clean

    def test_finds_lost_update_violation(self):
        result = explore(racy_counter_factory, max_schedules=500)
        assert result.violations, "some schedule must lose an update"
        assert result.races, "the lockset detector should also fire"

    def test_stop_on_first_halts_early(self):
        full = explore(ab_ba_factory, max_schedules=500)
        early = explore(ab_ba_factory, max_schedules=500, stop_on_first=True)
        assert early.schedules_run <= full.schedules_run
        assert len(early.deadlocks) == 1

    def test_budget_exhaustion_flagged(self):
        result = explore(ab_ba_factory, max_schedules=3)
        assert result.schedules_run == 3
        assert not result.exhausted

    def test_deadlock_prefix_replays(self):
        """A reported prefix actually reproduces the deadlock."""
        from repro.interleave import FixedPolicy

        result = explore(ab_ba_factory, max_schedules=200, stop_on_first=True)
        prefix, _ = result.deadlocks[0]
        sched, _ = ab_ba_factory(FixedPolicy(list(prefix)))
        run = sched.run()
        assert run.deadlocked

    def test_summary_mentions_counts(self):
        result = explore(ab_ba_factory, max_schedules=100)
        text = result.summary()
        assert "deadlock" in text and "schedule" in text


class TestStrategies:
    def test_bfs_finds_ab_ba_deadlock(self):
        result = explore(ab_ba_factory, max_schedules=200, strategy="bfs")
        assert result.deadlocks

    def test_bfs_finds_shallow_bug_faster_than_dfs(self):
        """The AB/BA deadlock needs two *early* choices: BFS hits it first."""
        dfs = explore(ab_ba_factory, max_schedules=500, stop_on_first=True, strategy="dfs")
        bfs = explore(ab_ba_factory, max_schedules=500, stop_on_first=True, strategy="bfs")
        assert bfs.deadlocks and dfs.deadlocks
        assert bfs.schedules_run <= dfs.schedules_run

    def test_bfs_exhaustive_agrees_with_dfs(self):
        dfs = explore(ab_ba_factory, max_schedules=500, strategy="dfs")
        bfs = explore(ab_ba_factory, max_schedules=500, strategy="bfs")
        assert dfs.exhausted and bfs.exhausted
        assert len(dfs.deadlocks) == len(bfs.deadlocks)
        assert dfs.schedules_run == bfs.schedules_run

    def test_unknown_strategy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            explore(ab_ba_factory, strategy="random")
