"""HTML page rendering: templates directly and through the app."""

import io

import pytest

from repro.portal import templates
from repro.portal.client import PortalClient


def get_page(app, path, token="", method="GET", body=b""):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": "",
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": "application/x-www-form-urlencoded" if method == "POST" else "",
        "wsgi.input": io.BytesIO(body),
    }
    if token:
        environ["HTTP_COOKIE"] = f"portal_session={token}"
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    payload = b"".join(app(environ, start_response))
    return captured, payload


class TestTemplates:
    def test_layout_escapes_title(self):
        page = templates.render_page("<script>", "safe body")
        assert "<script>" not in page.split("<body>")[0].replace("&lt;script&gt;", "")
        assert "&lt;script&gt;" in page

    def test_login_page_error_escaped(self):
        page = templates.login_page(error='<img src=x onerror=alert(1)>')
        assert "<img" not in page
        assert "&lt;img" in page

    def test_dashboard_renders_entries(self):
        page = templates.dashboard_page(
            "alice",
            files=[{"name": "a.c", "size": 10, "path": "a.c", "is_dir": False, "mtime": 0}],
            jobs=[{"id": "job-1", "name": "a.c", "state": "completed", "kind": "sequential",
                   "exit_code": 0}],
            cluster={"load": 0.25, "cores_free": 6, "cores_total": 8,
                     "segments": {"s0": {"cores_free": 6, "cores_total": 8, "load": 0.25,
                                         "nodes_up": 4}}},
        )
        assert "a.c" in page and "completed" in page and "25%" in page

    def test_job_page_with_output(self):
        page = templates.job_page(
            {"id": "job-9", "name": "x.c", "owner": "alice", "kind": "sequential",
             "state": "completed", "exit_code": 0, "placement": {"n0": 2},
             "wait_s": 0.1, "runtime_s": 1.5},
            stdout_lines=["hello", "<b>not markup</b>"],
            stderr_lines=["warn"],
        )
        assert "hello" in page
        assert "&lt;b&gt;not markup&lt;/b&gt;" in page  # output is escaped
        assert "stderr" in page and "warn" in page

    def test_job_page_input_form_only_for_running_interactive(self):
        base = {"id": "j", "name": "n", "owner": "o", "exit_code": None,
                "placement": {}, "wait_s": None, "runtime_s": None}
        running = templates.job_page({**base, "state": "running", "kind": "interactive"}, [], [])
        done = templates.job_page({**base, "state": "completed", "kind": "interactive"}, [], [])
        sequential = templates.job_page({**base, "state": "running", "kind": "sequential"}, [], [])
        assert "Send input" in running
        assert "Send input" not in done
        assert "Send input" not in sequential


class TestHtmlJobPages:
    @pytest.fixture
    def logged_in(self, portal_app, admin_client, student_client):
        token = PortalClient(app=portal_app)
        data = token.login("alice", "alice-pass")
        return portal_app, data["token"]

    def test_job_detail_page_renders(self, logged_in, student_client):
        app, token = logged_in
        student_client.write_file(
            "page.c", '#include <stdio.h>\nint main(void){ printf("page output\\n"); return 0; }\n'
        )
        resp = student_client.submit_job("page.c")
        job_id = resp["job"]["id"]
        student_client.wait_for_job(job_id, timeout=60)
        cap, body = get_page(app, f"/jobs/{job_id}", token=token)
        assert cap["status"].startswith("200")
        assert b"page output" in body
        assert job_id.encode() in body

    def test_job_page_requires_login(self, portal_app):
        cap, _ = get_page(portal_app, "/jobs/job-000001")
        assert cap["status"].startswith("302")

    def test_foreign_job_page_forbidden(self, logged_in, admin_client, portal_app):
        app, token = logged_in
        admin_client.create_user("rival", "password1")
        rival = PortalClient(app=portal_app)
        rival.login("rival", "password1")
        rival.write_file("r.c", '#include <stdio.h>\nint main(void){ return 0; }\n')
        job_id = rival.submit_job("r.c")["job"]["id"]
        cap, _ = get_page(app, f"/jobs/{job_id}", token=token)
        assert cap["status"].startswith("403")

    def test_input_form_post_feeds_job(self, logged_in, student_client):
        import time

        app, token = logged_in
        student_client.write_file(
            "ask.c",
            "#include <stdio.h>\n"
            "int main(void){ char b[64]; if (fgets(b,64,stdin)) printf(\"form: %s\", b); return 0; }\n",
        )
        resp = student_client.submit_job("ask.c", kind="interactive", timeout_s=30)
        job_id = resp["job"]["id"]
        # POST the HTML form while the job waits on stdin.
        deadline = time.monotonic() + 10
        posted = False
        while time.monotonic() < deadline and not posted:
            cap, _ = get_page(app, f"/jobs/{job_id}/input", token=token,
                              method="POST", body=b"text=html-form")
            posted = cap["status"].startswith("302")
        desc = student_client.wait_for_job(job_id, timeout=30)
        out = student_client.job_output(job_id)
        assert desc["state"] == "completed"
        assert out["stdout"] == ["form: html-form"]
