"""User store and session store units."""

import pytest

from repro._errors import AuthenticationError, AuthorizationError
from repro.portal import SessionStore, UserStore


class TestUserStore:
    @pytest.fixture
    def store(self):
        s = UserStore()
        s.add_user("alice", "password1", full_name="Alice")
        return s

    def test_authenticate_roundtrip(self, store):
        user = store.authenticate("alice", "password1")
        assert user.username == "alice" and user.role == "student"

    def test_wrong_password_rejected(self, store):
        with pytest.raises(AuthenticationError):
            store.authenticate("alice", "wrong")

    def test_unknown_user_same_error_message(self, store):
        try:
            store.authenticate("alice", "wrong")
        except AuthenticationError as e1:
            msg1 = str(e1)
        try:
            store.authenticate("nobody", "wrong")
        except AuthenticationError as e2:
            msg2 = str(e2)
        assert msg1 == msg2  # no username-probing oracle

    def test_duplicate_username_rejected(self, store):
        with pytest.raises(AuthenticationError):
            store.add_user("alice", "other-pass")

    @pytest.mark.parametrize("bad", ["", "1abc", "a", "has space", "x" * 40, "../etc"])
    def test_invalid_usernames_rejected(self, bad):
        with pytest.raises(AuthenticationError):
            UserStore().add_user(bad, "password1")

    def test_short_password_rejected(self):
        with pytest.raises(AuthenticationError):
            UserStore().add_user("bob", "12345")

    def test_unknown_role_rejected(self):
        with pytest.raises(AuthenticationError):
            UserStore().add_user("bob", "password1", role="superuser")

    def test_password_change(self, store):
        store.change_password("alice", "password1", "newpass99")
        with pytest.raises(AuthenticationError):
            store.authenticate("alice", "password1")
        assert store.authenticate("alice", "newpass99")

    def test_password_change_requires_old(self, store):
        with pytest.raises(AuthenticationError):
            store.change_password("alice", "wrong", "newpass99")

    def test_disabled_user_cannot_login(self, store):
        store.disable("alice")
        with pytest.raises(AuthenticationError):
            store.authenticate("alice", "password1")

    def test_distinct_salts_per_user(self):
        s = UserStore()
        a = s.add_user("u1", "samepass")
        b = s.add_user("u2", "samepass")
        assert a.salt != b.salt and a.password_hash != b.password_hash


class TestPermissions:
    def test_role_matrix(self):
        s = UserStore()
        student = s.add_user("stu", "password1", role="student")
        instructor = s.add_user("prof", "password1", role="instructor")
        admin = s.add_user("root1", "password1", role="admin")
        assert student.can("submit_job") and not student.can("view_all_jobs")
        assert instructor.can("view_all_jobs") and not instructor.can("manage_users")
        assert admin.can("manage_users") and admin.can("grade")

    def test_require_raises(self):
        s = UserStore()
        student = s.add_user("stu", "password1")
        with pytest.raises(AuthorizationError):
            student.require("manage_users")
        student.require("submit_job")  # no raise

    def test_unknown_action_rejected(self):
        s = UserStore()
        u = s.add_user("stu", "password1")
        with pytest.raises(AuthorizationError):
            u.can("launch_missiles")


class TestSessionStore:
    def test_create_get_roundtrip(self):
        store = SessionStore()
        token = store.create({"username": "alice"})
        assert store.get(token) == {"username": "alice"}

    def test_forged_token_rejected(self):
        store = SessionStore()
        token = store.create({"username": "alice"})
        sid, _, sig = token.partition(".")
        forged = sid + "." + ("0" * len(sig))
        with pytest.raises(AuthenticationError):
            store.get(forged)

    def test_token_from_other_store_rejected(self):
        token = SessionStore().create({"u": "x"})
        with pytest.raises(AuthenticationError):
            SessionStore().get(token)  # different secret

    def test_destroy_logs_out(self):
        store = SessionStore()
        token = store.create({"u": "x"})
        assert store.destroy(token)
        assert store.peek(token) is None
        assert not store.destroy(token)  # idempotent

    def test_expiry_with_fake_clock(self):
        clock = {"t": 0.0}
        store = SessionStore(ttl_s=100.0, now_fn=lambda: clock["t"])
        token = store.create({"u": "x"})
        clock["t"] = 99.0
        assert store.get(token)  # refreshes expiry (sliding window)
        clock["t"] = 198.0
        assert store.get(token)  # still alive thanks to the refresh
        clock["t"] = 400.0
        with pytest.raises(AuthenticationError, match="expired"):
            store.get(token)

    def test_sweep_removes_expired(self):
        clock = {"t": 0.0}
        store = SessionStore(ttl_s=10.0, now_fn=lambda: clock["t"])
        store.create({"u": "a"})
        store.create({"u": "b"})
        clock["t"] = 50.0
        assert store.sweep() == 2
        assert len(store) == 0

    def test_sessions_isolated(self):
        store = SessionStore()
        t1 = store.create({"username": "a"})
        t2 = store.create({"username": "b"})
        assert store.get(t1)["username"] == "a"
        assert store.get(t2)["username"] == "b"


class TestUserStorePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = UserStore()
        store.add_user("alice", "password1", role="instructor", full_name="Alice A")
        store.add_user("bob", "hunter22")
        store.disable("bob")
        path = tmp_path / "users.json"
        store.save(path)

        restored = UserStore.load(path)
        user = restored.authenticate("alice", "password1")
        assert user.role == "instructor" and user.full_name == "Alice A"
        with pytest.raises(AuthenticationError):
            restored.authenticate("bob", "hunter22")  # still disabled
        assert restored.usernames() == ["alice", "bob"]

    def test_saved_file_not_world_readable(self, tmp_path):
        import stat

        store = UserStore()
        store.add_user("alice", "password1")
        path = tmp_path / "users.json"
        store.save(path)
        mode = stat.S_IMODE(path.stat().st_mode)
        assert mode & 0o077 == 0

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "users.json"
        path.write_text('{"version": 99, "users": []}')
        with pytest.raises(AuthenticationError):
            UserStore.load(path)

    def test_passwords_not_stored_in_clear(self, tmp_path):
        store = UserStore()
        store.add_user("alice", "supersecretpw")
        path = tmp_path / "users.json"
        store.save(path)
        assert "supersecretpw" not in path.read_text()


class TestSessionStorePersistence:
    """Portal restart: live sessions survive, dead ones stay dead."""

    def test_snapshot_restore_keeps_tokens_valid(self):
        store = SessionStore()
        t_alice = store.create({"username": "alice"})
        t_bob = store.create({"username": "bob"})
        restored = SessionStore.restore(store.snapshot())
        # the *same cookies* authenticate on the restarted portal —
        # secret and sids both survived the round trip.
        assert restored.get(t_alice)["username"] == "alice"
        assert restored.get(t_bob)["username"] == "bob"
        assert len(restored) == 2

    def test_restore_accepts_caller_overrides(self):
        # an explicit ttl_s/secret kwarg must override the snapshot's
        # values, not collide with them (regression: duplicate-kwarg
        # TypeError on SessionStore.load(path, ttl_s=...))
        store = SessionStore(ttl_s=100.0)
        token = store.create({"username": "alice"})
        restored = SessionStore.restore(store.snapshot(), ttl_s=2000.0)
        assert restored.ttl_s == 2000.0
        assert restored.get(token)["username"] == "alice"

    def test_expired_sessions_not_resurrected(self):
        clock = {"t": 0.0}
        store = SessionStore(ttl_s=100.0, now_fn=lambda: clock["t"])
        dead = store.create({"u": "dead"})
        clock["t"] = 60.0
        alive = store.create({"u": "alive"})
        clock["t"] = 150.0  # 'dead' expired at 100; 'alive' runs to 160
        snap = store.snapshot()
        assert len(snap["sessions"]) == 1  # expired one never serialized
        restored = SessionStore.restore(snap, now_fn=lambda: clock["t"])
        assert restored.peek(alive)["u"] == "alive"
        with pytest.raises(AuthenticationError):
            restored.get(dead)

    def test_remaining_ttl_reanchors_to_new_clock(self):
        old_clock = {"t": 1000.0}
        store = SessionStore(ttl_s=100.0, now_fn=lambda: old_clock["t"])
        token = store.create({"u": "x"})
        old_clock["t"] = 1070.0  # 30s of lease left
        snap = store.snapshot()
        # restarted process: monotonic clock starts over near zero
        new_clock = {"t": 5.0}
        restored = SessionStore.restore(snap, now_fn=lambda: new_clock["t"])
        new_clock["t"] = 20.0
        assert restored.peek(token) is not None   # refreshed: sliding TTL
        restored2 = SessionStore.restore(snap, now_fn=lambda: new_clock["t"])
        new_clock["t"] = 55.0  # re-anchored at 20 with 30s left: dead at 50
        assert restored2.peek(token) is None

    def test_save_load_roundtrip_with_tight_permissions(self, tmp_path):
        import stat

        store = SessionStore()
        token = store.create({"username": "alice", "role": "student"})
        path = tmp_path / "sessions.json"
        assert store.save(path) == 1
        mode = stat.S_IMODE(path.stat().st_mode)
        assert mode & 0o077 == 0  # holds the HMAC secret
        restored = SessionStore.load(path)
        assert restored.get(token)["role"] == "student"

    def test_wrong_snapshot_version_rejected(self):
        with pytest.raises(AuthenticationError):
            SessionStore.restore({"version": 99, "secret": "00", "sessions": []})

    def test_restored_store_keeps_minting_verifiable_tokens(self):
        store = SessionStore()
        old = store.create({"u": "old"})
        restored = SessionStore.restore(store.snapshot())
        fresh = restored.create({"u": "fresh"})
        # both directions: old cookie works on new store, and a token the
        # restarted portal mints verifies against the persisted secret.
        assert restored.get(old)["u"] == "old"
        assert SessionStore.restore(store.snapshot()).ttl_s == store.ttl_s
        assert restored.get(fresh)["u"] == "fresh"
