"""minimpi point-to-point semantics."""

import numpy as np
import pytest

from repro._errors import MPIError, TruncationError
from repro.minimpi import ANY_SOURCE, ANY_TAG, MPIFailure, Status, run_mpi


class TestBasics:
    def test_rank_and_size(self):
        def program(comm):
            return (comm.Get_rank(), comm.Get_size(), comm.rank, comm.size)

        vals = run_mpi(program, 3)
        assert vals == [(0, 3, 0, 3), (1, 3, 1, 3), (2, 3, 2, 3)]

    def test_single_rank_world(self):
        def program(comm):
            comm.send("self", 0, tag=1)
            return comm.recv(0, tag=1)

        assert run_mpi(program, 1) == ["self"]

    def test_send_recv_roundtrip(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": [1, 2, 3]}, 1)
                return comm.recv(1)
            data = comm.recv(0)
            comm.send(data["x"], 0)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] == [1, 2, 3]

    def test_objects_are_copied_not_shared(self):
        """pickle semantics: mutations at the receiver don't leak back."""
        def program(comm):
            payload = [1, 2, 3]
            if comm.rank == 0:
                comm.send(payload, 1)
                comm.recv(1)  # wait for the peer to mutate its copy
                return payload
            data = comm.recv(0)
            data.append(99)
            comm.send("done", 0)
            return data

        vals = run_mpi(program, 2)
        assert vals[0] == [1, 2, 3]
        assert vals[1] == [1, 2, 3, 99]


class TestMatching:
    def test_tag_selectivity(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("low", 1, tag=1)
                comm.send("high", 1, tag=2)
                return None
            high = comm.recv(0, tag=2)
            low = comm.recv(0, tag=1)
            return (high, low)

        vals = run_mpi(program, 2)
        assert vals[1] == ("high", "low")

    def test_any_source_any_tag(self):
        def program(comm):
            if comm.rank == 0:
                got = [comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(2)]
                return sorted(got)
            comm.send(f"from{comm.rank}", 0, tag=comm.rank)
            return None

        vals = run_mpi(program, 3)
        assert vals[0] == ["from1", "from2"]

    def test_fifo_per_source_and_tag(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1, tag=5)
                return None
            return [comm.recv(0, tag=5) for i in range(10)]

        vals = run_mpi(program, 2)
        assert vals[1] == list(range(10))

    def test_status_filled(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(b"x" * 100, 1, tag=9)
                return None
            st = Status()
            comm.recv(ANY_SOURCE, ANY_TAG, status=st)
            return (st.source, st.tag, st.nbytes > 50)

        vals = run_mpi(program, 2)
        assert vals[1] == (0, 9, True)

    def test_rank_out_of_range(self):
        def program(comm):
            comm.send("x", 5)

        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=10)


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def program(comm):
            if comm.rank == 0:
                req = comm.isend("payload", 1)
                req.wait()
                return None
            req = comm.irecv(0)
            return req.wait(timeout=10)

        vals = run_mpi(program, 2)
        assert vals[1] == "payload"

    def test_irecv_test_polls(self):
        def program(comm):
            if comm.rank == 0:
                comm.recv(1, tag=0)  # handshake first
                comm.send("late", 1, tag=1)
                return None
            req = comm.irecv(0, tag=1)
            done, _ = req.test()
            assert not done  # nothing sent yet
            comm.send("go", 0, tag=0)
            return req.wait(timeout=10)

        vals = run_mpi(program, 2)
        assert vals[1] == "late"

    def test_waitall(self):
        from repro.minimpi import Request

        def program(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=i) for i in range(4)]
                return Request.waitall(reqs, timeout=10)
            for i in range(4):
                comm.send(i * i, 0, tag=i)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] == [0, 1, 4, 9]


class TestProbeAndBuffers:
    def test_iprobe_and_probe(self):
        def program(comm):
            if comm.rank == 0:
                assert not comm.iprobe(1)
                comm.send("sync", 1, tag=0)
                st = comm.probe(1, tag=3)
                assert st.source == 1
                return comm.recv(1, tag=3)
            comm.recv(0, tag=0)
            comm.send("probed", 0, tag=3)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] == "probed"

    def test_uppercase_send_recv_arrays(self):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8, dtype=np.int64), 1)
                return None
            buf = np.empty(8, dtype=np.int64)
            comm.Recv(buf, 0)
            return int(buf.sum())

        vals = run_mpi(program, 2)
        assert vals[1] == 28

    def test_recv_shape_mismatch_truncation_error(self):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8), 1)
                return None
            buf = np.empty(4)
            comm.Recv(buf, 0)

        with pytest.raises(MPIFailure) as e:
            run_mpi(program, 2, timeout=10)
        assert "TruncationError" in str(e.value.outcomes[1].error)


class TestFailures:
    def test_rank_exception_propagates_with_traceback(self):
        def program(comm):
            if comm.rank == 1:
                raise ZeroDivisionError("rank 1 exploded")
            comm.recv(1, timeout=10)

        with pytest.raises(MPIFailure) as e:
            run_mpi(program, 2, timeout=15)
        errors = [o.error for o in e.value.outcomes if o.error]
        assert any("ZeroDivisionError" in err for err in errors)

    def test_peer_death_unblocks_receivers(self):
        """A blocked recv fails fast when another rank dies (no timeout wait)."""
        import time

        def program(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.recv(0, timeout=60)

        start = time.monotonic()
        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=60)
        assert time.monotonic() - start < 10

    def test_recv_timeout_is_mpierror(self):
        def program(comm):
            if comm.rank == 1:
                comm.recv(0, timeout=0.2)  # nobody sends

        with pytest.raises(MPIFailure) as e:
            run_mpi(program, 2, timeout=15)
        assert "timed out" in str(e.value.outcomes[1].error)

    def test_zero_ranks_rejected(self):
        with pytest.raises(MPIError):
            run_mpi(lambda comm: None, 0)


class TestVirtualTime:
    def test_clock_advances_with_messages(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(b"x" * 10_000, 1)
            elif comm.rank == 1:
                comm.recv(0)
            return comm.virtual_time_us()

        vals = run_mpi(program, 2)
        assert vals[1] > vals[0] > 0  # receiver waited for the transfer

    def test_larger_messages_cost_more(self):
        def program(comm, nbytes):
            if comm.rank == 0:
                comm.send(b"x" * nbytes, 1)
            else:
                comm.recv(0)
            return comm.virtual_time_us()

        small = run_mpi(program, 2, args=(100,))[1]
        large = run_mpi(program, 2, args=(1_000_000,))[1]
        assert large > small * 5

    def test_charge_compute_us(self):
        def program(comm):
            comm.charge_compute_us(123.0)
            return comm.virtual_time_us()

        assert run_mpi(program, 1)[0] >= 123.0

    def test_negative_compute_rejected(self):
        def program(comm):
            comm.charge_compute_us(-1)

        with pytest.raises(MPIFailure):
            run_mpi(program, 1, timeout=10)


class TestSynchronousSend:
    def test_ssend_completes_when_receiver_ready(self):
        def program(comm):
            if comm.rank == 0:
                comm.ssend("rendezvous", 1, timeout=10)
                return "sender done"
            return comm.recv(0)

        assert run_mpi(program, 2) == ["sender done", "rendezvous"]

    def test_ssend_blocks_until_matched(self):
        """The sender must not return before the receiver posts."""
        import time

        def program(comm):
            if comm.rank == 0:
                t0 = time.monotonic()
                comm.ssend("x", 1, timeout=10)
                return time.monotonic() - t0
            time.sleep(0.5)  # delay the matching receive
            comm.recv(0)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] >= 0.4  # sender waited for the rendezvous

    def test_head_to_head_ssend_deadlocks(self):
        """The classroom pitfall: both ranks ssend first -> deadlock."""
        def program(comm):
            peer = 1 - comm.rank
            comm.ssend(f"from {comm.rank}", peer, timeout=0.5)
            comm.recv(peer)

        with pytest.raises(MPIFailure) as e:
            run_mpi(program, 2, timeout=20)
        # Both ranks time out near-simultaneously; whichever raised first
        # carries the rendezvous message, the other the abort notice.
        errors = " | ".join(o.error for o in e.value.outcomes if o.error)
        assert "rendezvous deadlock" in errors

    def test_sendrecv_resolves_the_exchange(self):
        def program(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(f"from {comm.rank}", peer)

        assert run_mpi(program, 2) == ["from 1", "from 0"]

    def test_ssend_matched_by_irecv(self):
        def program(comm):
            if comm.rank == 0:
                req = comm.irecv(1)
                comm.barrier()
                return req.wait(timeout=10)
            comm.barrier()
            comm.ssend("to irecv", 0, timeout=10)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] == "to irecv"

    def test_ssend_fails_fast_when_peer_dies(self):
        import time

        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("receiver died")
            comm.ssend("x", 1, timeout=30)

        t0 = time.monotonic()
        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=60)
        assert time.monotonic() - t0 < 10


class TestCollectiveIsolation:
    def test_any_tag_recv_cannot_steal_collective_traffic(self):
        """A wildcard receive posted before a barrier must not consume
        the barrier's internal tokens (regression: rendezvous + barrier)."""
        def program(comm):
            if comm.rank == 0:
                req = comm.irecv(1)          # ANY_TAG wildcard
                comm.barrier()               # generates internal messages
                comm.barrier()
                done, _ = req.test()
                assert not done              # wildcard saw none of them
                return req.wait(timeout=10)  # ...but does get user traffic
            comm.barrier()
            comm.barrier()
            comm.send("user payload", 0, tag=9)
            return None

        vals = run_mpi(program, 2)
        assert vals[0] == "user payload"
