"""Static concurrency analyzer: rules, corpus goldens, CLI, portal wiring."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CORPUS,
    RULES,
    Severity,
    analyze_file,
    analyze_source,
    check_corpus,
    fixture_path,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.model import AnalysisReport, Diagnostic
from repro.interleave.detector import RaceReport

_PRELUDE = (
    "from repro.interleave import ("
    "Join, Nop, RandomPolicy, Scheduler, SharedArray, SharedVar, "
    "VCondition, VMutex, VSemaphore)\n"
)


def rules_of(source: str) -> list[str]:
    return analyze_source(_PRELUDE + source).rule_ids()


class TestStructuralRules:
    def test_unbalanced_acquire_flagged(self):
        src = """
def worker(m):
    yield m.acquire()
    yield Nop("forgot to release")

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    sched.spawn(worker(m), name="w")
    return sched.run()
"""
        assert "ANL-LK001" in rules_of(src)

    def test_release_without_acquire_flagged(self):
        src = """
def worker(m):
    yield m.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    sched.spawn(worker(m), name="w")
    return sched.run()
"""
        assert "ANL-LK002" in rules_of(src)

    def test_sem_wait_while_holding_lock_flagged(self):
        src = """
def worker(m, s):
    yield m.acquire()
    yield s.p()
    yield m.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    s = VSemaphore("s", 0)
    sched.spawn(worker(m, s), name="w")
    return sched.run()
"""
        assert "ANL-LK003" in rules_of(src)

    def test_wait_without_bound_mutex_flagged(self):
        src = """
def worker(m, cv):
    while True:
        yield cv.wait()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    cv = VCondition(m, "cv")
    sched.spawn(worker(m, cv), name="w")
    return sched.run()
"""
        assert "ANL-CV002" in rules_of(src)

    def test_balanced_critical_section_clean(self):
        src = """
def worker(m, counter):
    for _ in range(5):
        yield m.acquire()
        v = yield counter.read()
        yield counter.write(v + 1)
        yield m.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    counter = SharedVar("counter", 0)
    a = sched.spawn(worker(m, counter), name="a")
    b = sched.spawn(worker(m, counter), name="b")
    return sched.run()
"""
        assert rules_of(src) == []

    def test_early_return_after_release_not_flagged(self):
        src = """
def worker(m, counter):
    yield m.acquire()
    v = yield counter.read()
    if v > 10:
        yield m.release()
        return
    yield counter.write(v + 1)
    yield m.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    counter = SharedVar("counter", 0)
    a = sched.spawn(worker(m, counter), name="a")
    b = sched.spawn(worker(m, counter), name="b")
    return sched.run()
"""
        assert rules_of(src) == []


class TestDeadlockRules:
    def test_opposed_scalar_lock_order_is_cycle(self):
        src = """
def forward(a, b):
    yield a.acquire()
    yield b.acquire()
    yield b.release()
    yield a.release()

def backward(a, b):
    yield b.acquire()
    yield a.acquire()
    yield a.release()
    yield b.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    a = VMutex("a")
    b = VMutex("b")
    sched.spawn(forward(a, b), name="f")
    sched.spawn(backward(a, b), name="b")
    return sched.run()
"""
        report = analyze_source(_PRELUDE + src)
        assert "ANL-DL001" in report.rule_ids()
        assert not report.ok

    def test_consistent_scalar_order_clean(self):
        src = """
def worker(a, b):
    yield a.acquire()
    yield b.acquire()
    yield b.release()
    yield a.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    a = VMutex("a")
    b = VMutex("b")
    sched.spawn(worker(a, b), name="x")
    sched.spawn(worker(a, b), name="y")
    return sched.run()
"""
        assert rules_of(src) == []


class TestCorpusGolden:
    @pytest.mark.parametrize(
        "case", CORPUS, ids=[f"{c.lab_id}-{c.variant}" for c in CORPUS]
    )
    def test_fixture_matches_expectation(self, case):
        report = analyze_file(fixture_path(case))
        assert report.parse_error is None
        assert frozenset(report.rule_ids()) == case.expected_rules
        if case.expected_symbols:
            assert case.expected_symbols & {d.symbol for d in report.diagnostics}

    def test_every_fixed_variant_is_clean(self):
        for case in CORPUS:
            if case.variant == "fixed":
                report = analyze_file(fixture_path(case))
                assert report.ok and not report.diagnostics, (
                    f"{case.lab_id}/fixed: {[str(d) for d in report.diagnostics]}"
                )

    def test_check_corpus_all_green(self):
        assert all(not problems for _, _, problems in check_corpus())

    def test_philosophers_deadlock_is_error_with_fix_hint(self):
        case = next(c for c in CORPUS if c.lab_id == "lab6" and c.variant == "broken")
        report = analyze_file(fixture_path(case))
        (diag,) = [d for d in report.diagnostics if d.rule_id == "ANL-DL002"]
        assert diag.severity is Severity.ERROR
        assert "sorted" in diag.message

    def test_real_lab_modules_analyzed(self):
        """The shipped lab modules (broken + fixed variants in one file)
        are themselves analyzable, and the analyzer independently
        rediscovers their intentional races."""
        import os

        import repro.labs as labs_pkg

        labs_dir = os.path.dirname(os.path.abspath(labs_pkg.__file__))
        expect = {
            "lab1_sync.py": "ANL-RC001",      # unprotected counter increment
            "lab4_prodcons.py": "ANL-RC001",  # semaphore-free producer/consumer
            "lab5_bank.py": "ANL-RC001",      # concurrent withdraw/deposit
            "lab7_bounded.py": "ANL-RC001",   # if-guarded bounded buffer
        }
        for fname in sorted(os.listdir(labs_dir)):
            if not fname.endswith(".py"):
                continue
            report = analyze_file(os.path.join(labs_dir, fname))
            assert report.parse_error is None, f"{fname}: {report.parse_error}"
            if fname in expect:
                assert expect[fname] in report.rule_ids(), (
                    f"{fname}: expected {expect[fname]}, got {report.rule_ids()}"
                )

    def test_diagnostics_deterministically_ordered(self):
        case = next(c for c in CORPUS if c.lab_id == "lab4" and c.variant == "broken")
        a = analyze_file(fixture_path(case))
        b = analyze_file(fixture_path(case))
        assert [str(d) for d in a.diagnostics] == [str(d) for d in b.diagnostics]
        assert a.diagnostics == sorted(a.diagnostics)


class TestReportModel:
    def test_rule_catalogue_concepts_and_severities(self):
        assert RULES["ANL-RC001"].severity is Severity.ERROR
        assert RULES["ANL-RC002"].severity is Severity.WARNING
        for rule in RULES.values():
            assert rule.rule_id.startswith("ANL-")
            assert rule.concept

    def test_parse_error_report(self):
        report = analyze_source("def broken(:\n", "bad.py")
        assert report.parse_error is not None
        assert not report.ok
        assert report.as_dict()["parse_error"]

    def test_cross_check_verdicts(self):
        report = AnalysisReport(
            path="p.py",
            diagnostics=[
                Diagnostic("p.py", 3, "ANL-RC001", "unprotected write", symbol="counter"),
                Diagnostic("p.py", 9, "ANL-RC001", "unprotected write", symbol="ghost"),
            ],
        )
        races = [
            RaceReport("counter", ("a", "b"), "a"),
            RaceReport("numbers[3]", ("p", "c"), "p"),
        ]
        verdicts = {c.symbol: c.verdict for c in report.cross_check(races)}
        assert verdicts == {
            "counter": "confirmed",
            "ghost": "static_only",
            "numbers": "dynamic_only",
        }


class TestCli:
    def test_lint_broken_fixture_fails(self, capsys):
        case = next(c for c in CORPUS if c.lab_id == "lab1" and c.variant == "broken")
        assert analysis_main([fixture_path(case)]) == 1
        out = capsys.readouterr().out
        assert "ANL-RC001" in out

    def test_lint_fixed_fixture_passes_with_json(self, capsys):
        case = next(c for c in CORPUS if c.lab_id == "lab1" and c.variant == "fixed")
        assert analysis_main(["--json", fixture_path(case)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["diagnostics"] == []

    def test_corpus_mode_green(self, capsys):
        assert analysis_main(["--corpus"]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_self_check_gate_green_on_package(self, capsys):
        import repro
        import os

        root = os.path.dirname(os.path.abspath(repro.__file__))
        assert analysis_main(["--self-check", root]) == 0
        out = capsys.readouterr().out
        assert "0 unexpected finding(s), 0 crash(es)" in out

    def test_self_check_rejects_finding_outside_labs(self, tmp_path, capsys):
        bad = tmp_path / "notalab.py"
        bad.write_text(
            _PRELUDE
            + """
def worker(m):
    yield m.release()

def run(seed=0):
    sched = Scheduler(policy=RandomPolicy(seed))
    m = VMutex("m")
    sched.spawn(worker(m), name="w")
    return sched.run()
"""
        )
        assert analysis_main(["--self-check", str(tmp_path)]) == 1
        assert "UNEXPECTED" in capsys.readouterr().out

    def test_fail_on_never(self):
        case = next(c for c in CORPUS if c.lab_id == "lab1" and c.variant == "broken")
        assert analysis_main(["--fail-on", "never", fixture_path(case)]) == 0


class TestPortalWiring:
    @pytest.fixture
    def client(self, portal_app):
        from repro.portal.client import PortalClient
        from repro.toolchain import PythonToolchain

        portal_app.jobsvc.registry.register(PythonToolchain(), extensions=(".py",))
        c = PortalClient(app=portal_app)
        c.login("admin", "admin-pass")
        return c

    def _fixture_source(self, lab_id: str, variant: str) -> str:
        case = next(c for c in CORPUS if c.lab_id == lab_id and c.variant == variant)
        with open(fixture_path(case), encoding="utf-8") as fh:
            return fh.read()

    def test_lint_endpoint_with_source(self, client):
        report = client.lint(source=self._fixture_source("lab1", "broken"))
        assert not report["ok"]
        assert {d["rule"] for d in report["diagnostics"]} == {"ANL-RC001"}
        assert report["diagnostics"][0]["concept"].startswith("mutual exclusion")

    def test_lint_endpoint_with_path(self, client):
        client.write_file("sub.py", self._fixture_source("lab6", "broken"))
        report = client.lint(path="sub.py")
        assert {d["rule"] for d in report["diagnostics"]} == {"ANL-DL002"}

    def test_lint_endpoint_rejects_non_python(self, client):
        from repro._errors import PortalError

        client.write_file("prog.c", "int main(void){return 0;}")
        with pytest.raises(PortalError, match="400"):
            client.lint(path="prog.c")

    def test_submit_attaches_lint_report(self, client, portal_app):
        client.write_file("race.py", self._fixture_source("lab1", "broken"))
        result = client.submit_job("race.py")
        assert result["lint"] is not None
        assert {d["rule"] for d in result["lint"]["diagnostics"]} == {"ANL-RC001"}
        # ...and the diagnostics never block the submission itself
        assert result["job"] is not None
        stored = portal_app.jobsvc.lint_report(result["job"]["id"])
        assert stored == result["lint"]

    def test_clean_submission_lint_is_ok(self, client):
        client.write_file("ok.py", self._fixture_source("lab1", "fixed"))
        result = client.submit_job("ok.py")
        assert result["lint"]["ok"] and result["lint"]["diagnostics"] == []

    def test_job_page_shows_diagnostics(self, client, portal_app):
        client.write_file("race.py", self._fixture_source("lab5", "broken"))
        job_id = client.submit_job("race.py")["job"]["id"]
        status, page = client._call(f"GET", f"/jobs/{job_id}", expect_json=False)
        html = page.decode("utf-8")
        assert "Concurrency lint" in html
        assert "ANL-RC001" in html

    def test_analysis_metrics_counted(self, client, portal_app):
        client.lint(source=self._fixture_source("lab1", "broken"))
        snap = portal_app.registry.snapshot()
        runs = dict(snap["repro_analysis_runs_total"]["series"])
        assert runs[("lint",)] >= 1
        findings = dict(snap["repro_analysis_findings_total"]["series"])
        assert findings[("error",)] >= 1


class TestGradingFeedback:
    def test_broken_submission_gets_concept_tagged_feedback(self):
        from repro.education.grading import LabGrader

        grader = LabGrader(seed=5)
        feedback = grader.static_feedback("lab6", correct_submission=False)
        assert feedback and "ANL-DL002" in feedback[0]
        assert "deadlock" in feedback[0]

    def test_correct_submission_gets_no_feedback(self):
        from repro.education.grading import LabGrader

        grader = LabGrader(seed=5)
        for lab_id in ("lab1", "lab5", "lab6", "lab7"):
            assert grader.static_feedback(lab_id, correct_submission=True) == ()

    def test_gradebook_carries_feedback(self):
        from repro.education.grading import LabGrader
        from repro.education.students import Cohort

        cohort = Cohort.generate(4, seed=11)
        grader = LabGrader(seed=11, lab_rates={"lab1": 0.5})
        book = grader.grade_cohort(cohort)
        assert set(book.feedback["lab1"]) == {s.student_id for s in cohort}
        for student in cohort:
            lines = book.feedback_for("lab1", student.student_id)
            passed = book.scores["lab1"][student.student_id] >= 70.0
            if passed:
                assert lines == ()
            else:
                assert any("ANL-RC001" in line for line in lines)
