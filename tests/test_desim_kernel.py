"""Unit tests for the DES kernel: events, clock, processes."""

import pytest

from repro._errors import SimulationError
from repro.desim import ProcessKilled


class TestEventBasics:
    def test_event_starts_pending(self, sim):
        ev = sim.event("e")
        assert not ev.triggered and not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event().succeed(42)
        sim.run()
        assert ev.value == 42 and ev.processed

    def test_fail_reraises_on_value(self, sim):
        ev = sim.event().fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_double_trigger_rejected(self, sim):
        ev = sim.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value


class TestClock:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_same_time_events_fire_in_trigger_order(self, sim):
        order = []
        for i in range(5):
            ev = sim.timeout(1.0)
            sim._subscribe(ev, lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_time_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_run_until_past_time_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestProcesses:
    def test_process_returns_value_through_run(self, sim):
        def body(sim):
            yield sim.timeout(2)
            return "done"

        p = sim.process(body(sim))
        assert sim.run(p) == "done"
        assert sim.now == 2.0

    def test_process_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_non_event_fails_process(self, sim):
        def body():
            yield 42

        p = sim.process(body())
        sim.run()
        assert not p.ok

    def test_exception_propagates_to_joiner(self, sim):
        def failing(sim):
            yield sim.timeout(1)
            raise RuntimeError("inner")

        def joiner(sim, target):
            try:
                yield target
            except RuntimeError as exc:
                return f"caught {exc}"

        target = sim.process(failing(sim))
        j = sim.process(joiner(sim, target))
        assert sim.run(j) == "caught inner"

    def test_kill_delivers_processkilled(self, sim):
        cleanup = []

        def body(sim):
            try:
                yield sim.timeout(100)
            except ProcessKilled:
                cleanup.append("cleaned")
                return "killed-gracefully"

        p = sim.process(body(sim))
        sim.run(until=1.0)
        p.kill("test")
        sim.run()
        assert cleanup == ["cleaned"]
        assert p.value == "killed-gracefully"

    def test_kill_uncaught_fails_process(self, sim):
        def body(sim):
            yield sim.timeout(100)

        p = sim.process(body(sim))
        sim.run(until=1.0)
        p.kill()
        sim.run()
        assert not p.ok and not p.alive

    def test_processes_interleave_by_time(self, sim):
        log = []

        def ticker(sim, name, period, n):
            for _ in range(n):
                yield sim.timeout(period)
                log.append((sim.now, name))

        sim.process(ticker(sim, "a", 2, 3))
        sim.process(ticker(sim, "b", 3, 2))
        sim.run()
        # At t=6 both fire; "b" scheduled its timeout earlier (at t=3 vs
        # t=4), so FIFO tie-breaking runs it first.
        assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]


class TestCompositeEvents:
    def test_all_of_collects_values_in_order(self, sim):
        evs = [sim.timeout(d, value=d) for d in (3, 1, 2)]
        combined = sim.all_of(evs)
        assert sim.run(combined) == [3, 1, 2]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self, sim):
        ev = sim.all_of([])
        assert ev.triggered

    def test_any_of_returns_first_with_index(self, sim):
        evs = [sim.timeout(5, "slow"), sim.timeout(1, "fast")]
        idx, value = sim.run(sim.any_of(evs))
        assert (idx, value) == (1, "fast")
        assert sim.now == 1.0

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event().fail(KeyError("x"))
        combined = sim.all_of([sim.timeout(1), bad])
        with pytest.raises(KeyError):
            sim.run(combined)

    def test_run_until_event_detects_starvation(self, sim):
        never = sim.event("never")
        sim.timeout(1)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(never)

    def test_max_events_guard(self, sim):
        def endless(sim):
            while True:
                yield sim.timeout(1)

        sim.process(endless(sim))
        never = sim.event()
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(never, max_events=50)
