"""Node failure injection and recovery."""

import pytest

from repro._errors import ResourceError
from repro.cluster import (
    ClusterSpec,
    FaultInjector,
    Grid,
    JobDistributor,
    JobRequest,
    JobState,
    NodeState,
    SimulatedBackend,
)
from repro.desim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=1, slaves=3, cores=2))
    dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
    return sim, grid, dist


class TestKill:
    def test_running_job_fails_when_node_dies(self, setup):
        sim, grid, dist = setup
        job = dist.submit(JobRequest(name="victim", sim_duration=100.0))
        node_name = next(iter(job.placement))
        injector = FaultInjector(dist)
        affected = injector.kill_node(node_name)
        assert affected == [job.id]
        assert job.state is JobState.FAILED
        assert "failed" in job.error
        assert grid.node(node_name).state is NodeState.DOWN

    def test_resubmit_reroutes_to_surviving_node(self, setup):
        sim, grid, dist = setup
        job = dist.submit(JobRequest(name="victim", sim_duration=5.0))
        node_name = next(iter(job.placement))
        injector = FaultInjector(dist)
        injector.kill_node(node_name, resubmit=True)
        sim.run()
        # Original failed; the resubmitted copy completed elsewhere.
        states = sorted(j.state.value for j in dist.jobs.values())
        assert states == ["completed", "failed"]
        replacement = [j for j in dist.jobs.values() if j.state is JobState.COMPLETED][0]
        assert node_name not in replacement.placement

    def test_idle_node_kill_affects_nothing(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        affected = injector.kill_node("seg-0-n02")
        assert affected == []

    def test_double_kill_rejected(self, setup):
        _, _, dist = setup
        injector = FaultInjector(dist)
        injector.kill_node("seg-0-n00")
        with pytest.raises(ResourceError):
            injector.kill_node("seg-0-n00")

    def test_kill_random_node_deterministic_by_seed(self, setup):
        _, _, dist = setup
        name1, _ = FaultInjector(dist, seed=5).kill_random_node()
        assert name1 in {"seg-0-n00", "seg-0-n01", "seg-0-n02"}

    def test_capacity_shrinks_while_down(self, setup):
        sim, grid, dist = setup
        assert grid.cores_total == 6
        FaultInjector(dist).kill_node("seg-0-n00")
        assert grid.cores_free == 4  # only up nodes expose capacity


class TestRecovery:
    def test_revive_restores_capacity(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        injector.kill_node("seg-0-n00")
        injector.revive_node("seg-0-n00")
        assert grid.node("seg-0-n00").state is NodeState.UP
        assert grid.cores_free == 6

    def test_revive_unkilled_rejected(self, setup):
        _, _, dist = setup
        with pytest.raises(ResourceError):
            FaultInjector(dist).revive_node("seg-0-n01")

    def test_revive_all(self, setup):
        _, grid, dist = setup
        injector = FaultInjector(dist)
        injector.kill_node("seg-0-n00")
        injector.kill_node("seg-0-n01")
        injector.revive_all()
        assert all(n.state is NodeState.UP for n in grid.compute_nodes())

    def test_queued_work_flows_after_revival(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        # Kill two of three nodes, fill the last, queue one more job.
        injector.kill_node("seg-0-n00")
        injector.kill_node("seg-0-n01")
        j1 = dist.submit(JobRequest(name="runs", sim_duration=50.0, cores_per_task=2))
        j2 = dist.submit(JobRequest(name="stuck", sim_duration=5.0, cores_per_task=2))
        assert j2.state is JobState.QUEUED
        injector.revive_node("seg-0-n00")  # dispatch retriggers
        assert j2.state is JobState.RUNNING
        sim.run()
        assert j1.state is JobState.COMPLETED and j2.state is JobState.COMPLETED

    def test_no_up_nodes_left(self, setup):
        _, _, dist = setup
        injector = FaultInjector(dist)
        for name in ("seg-0-n00", "seg-0-n01", "seg-0-n02"):
            injector.kill_node(name)
        with pytest.raises(ResourceError):
            injector.kill_random_node()


class TestDrain:
    def test_drain_lets_running_job_finish(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        job = dist.submit(JobRequest(name="running", sim_duration=10.0))
        node_name = next(iter(job.placement))
        victims = injector.drain_node(node_name)
        assert victims == (job.id,)
        assert grid.node(node_name).state is NodeState.DRAINING
        sim.run()
        assert job.state is JobState.COMPLETED  # drain never kills work

    def test_draining_node_gets_no_new_work(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        injector.drain_node("seg-0-n00")
        for i in range(4):
            dist.submit(JobRequest(name=f"j{i}", sim_duration=1.0, cores_per_task=2))
        sim.run()
        placed_nodes = {n for j in dist.jobs.values() for n in j.placement}
        assert "seg-0-n00" not in placed_nodes

    def test_maintenance_done_requires_idle(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        job = dist.submit(JobRequest(name="busy", sim_duration=10.0))
        node_name = next(iter(job.placement))
        injector.drain_node(node_name)
        with pytest.raises(ResourceError, match="still runs"):
            injector.maintenance_done(node_name)
        sim.run()
        injector.maintenance_done(node_name)
        assert grid.node(node_name).state is NodeState.UP

    def test_maintenance_cycle_restores_capacity(self, setup):
        sim, grid, dist = setup
        injector = FaultInjector(dist)
        before = grid.cores_free
        injector.drain_node("seg-0-n01")
        assert grid.cores_free == before - 2  # draining hides capacity
        injector.maintenance_done("seg-0-n01")
        assert grid.cores_free == before
