"""Tests for the extension features: new languages, job dependencies,
job arrays, MSI ablation, RW lock, quotas, accounting, password change."""

import subprocess

import numpy as np
import pytest

from repro._errors import FileManagerError, JobError, PortalError, SimulationError
from repro.cluster import (
    CallableBackend,
    ClusterSpec,
    Grid,
    JobDistributor,
    JobRequest,
    JobState,
    SimulatedBackend,
)
from repro.interleave import Nop, RandomPolicy, Scheduler, SharedVar, VRWLock
from repro.memsim import CoherentSystem, LineState
from repro.portal import FileManager, PortalClient, make_default_app
from repro.toolchain import PythonToolchain, ToolchainRegistry


class TestPythonToolchain:
    def test_compile_and_run(self, tmp_path):
        src = tmp_path / "prog.py"
        src.write_text('print("py artifact")\n')
        result = PythonToolchain().compile(src, tmp_path / "build")
        assert result.ok
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout == "py artifact\n"

    def test_syntax_error_reported_with_line(self, tmp_path):
        src = tmp_path / "bad.py"
        src.write_text("def broken(:\n    pass\n")
        result = PythonToolchain().compile(src, tmp_path / "build")
        assert not result.ok and "line 1" in result.diagnostics

    def test_artifact_immutable_after_edit(self, tmp_path):
        src = tmp_path / "prog.py"
        src.write_text('print("v1")\n')
        result = PythonToolchain().compile(src, tmp_path / "build")
        src.write_text('print("v2")\n')  # edit after compile
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout == "v1\n"  # staged copy, not the live file

    def test_runtime_registration_with_extension(self):
        reg = ToolchainRegistry()
        assert reg.infer("x.py") is None
        reg.register(PythonToolchain(), extensions=(".py",))
        assert reg.infer("x.py") == "python"
        assert reg.resolve_for("x.py").name == "cpython"

    def test_portal_gains_language_at_runtime(self, tmp_path):
        app = make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small())
        admin = PortalClient(app=app)
        admin.login("admin", "admin-pass")
        admin.create_user("py", "password1")
        dev = PortalClient(app=app)
        dev.login("py", "password1")
        dev.write_file("hello.py", 'print("runtime language")\n')
        with pytest.raises(PortalError):
            dev.compile("hello.py")
        app.jobsvc.registry.register(PythonToolchain(), extensions=(".py",))
        resp = dev.submit_job("hello.py")
        desc = dev.wait_for_job(resp["job"]["id"], timeout=30)
        assert desc["state"] == "completed"
        assert dev.job_output(resp["job"]["id"])["stdout"] == ["runtime language"]


class TestJobDependencies:
    def test_dependent_job_waits(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        a = dist.submit(JobRequest(name="a", sim_duration=5.0))
        b = dist.submit(JobRequest(name="b", sim_duration=1.0, after=(a.id,)))
        assert b.state is JobState.QUEUED
        sim.run()
        assert b.state is JobState.COMPLETED
        assert b.started_at >= a.finished_at

    def test_chain_runs_in_order(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        prev = None
        jobs = []
        for i in range(5):
            after = (prev.id,) if prev else ()
            prev = dist.submit(JobRequest(name=f"c{i}", sim_duration=2.0, after=after))
            jobs.append(prev)
        sim.run()
        starts = [j.started_at for j in jobs]
        assert starts == sorted(starts)
        assert sim.now == pytest.approx(10.0)  # fully serialised

    def test_after_ok_cancels_on_failed_dep(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend())

        def boom(job):
            raise RuntimeError("x")

        bad = dist.submit(JobRequest(name="bad", callable=boom))
        assert dist.wait_all(10)
        dependent = dist.submit(
            JobRequest(name="dep", callable=lambda j: 1, after=(bad.id,), after_ok=True)
        )
        dist.dispatch()
        assert dependent.state is JobState.CANCELLED
        assert dependent.error == "dependency failed"

    def test_plain_after_runs_even_on_failed_dep(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend())

        def boom(job):
            raise RuntimeError("x")

        bad = dist.submit(JobRequest(name="bad", callable=boom))
        assert dist.wait_all(10)
        dependent = dist.submit(
            JobRequest(name="dep", callable=lambda j: 7, after=(bad.id,))
        )
        assert dist.wait_all(10)
        assert dependent.state is JobState.COMPLETED and dependent.result == 7

    def test_unknown_dependency_rejected(self, sim_distributor):
        with pytest.raises(JobError):
            sim_distributor.submit(
                JobRequest(name="x", sim_duration=1.0, after=("job-999999",))
            )

    def test_held_job_does_not_block_fifo(self, sim):
        # Two cores: "a" takes one for 10s; "held" depends on it and sits
        # ahead of "free" in the queue.  FIFO must skip the held job and
        # start "free" on the second core immediately.
        grid = Grid(ClusterSpec.small(segments=1, slaves=1, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        a = dist.submit(JobRequest(name="a", sim_duration=10.0))
        held = dist.submit(JobRequest(name="held", sim_duration=1.0, after=(a.id,)))
        free = dist.submit(JobRequest(name="free", sim_duration=1.0))
        sim.run()
        assert free.started_at == 0.0
        assert held.started_at >= a.finished_at


class TestJobArrays:
    def test_array_elements_named_and_independent(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        jobs = dist.submit_array(JobRequest(name="sweep", sim_duration=1.0), count=6)
        assert [j.request.name for j in jobs] == [f"sweep[{k}]" for k in range(6)]
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_zero_count_rejected(self, sim_distributor):
        with pytest.raises(JobError):
            sim_distributor.submit_array(JobRequest(name="x", sim_duration=1.0), count=0)


class TestMsiAblation:
    def test_msi_never_installs_exclusive(self):
        system = CoherentSystem(2, protocol="MSI")
        system.read(0, 0)
        assert system.line_states(0)[0] is LineState.SHARED

    def test_msi_first_write_needs_upgrade(self):
        """The traffic MESI's E state removes."""
        mesi = CoherentSystem(2, protocol="MESI")
        msi = CoherentSystem(2, protocol="MSI")
        for system in (mesi, msi):
            system.read(0, 0)   # private data read...
            system.write(0, 0)  # ...then written by the same core
        assert mesi.stats.bus_upgr == 0
        assert msi.stats.bus_upgr == 1

    def test_msi_more_traffic_on_private_data(self):
        def traffic(protocol):
            system = CoherentSystem(4, protocol=protocol)
            for core in range(4):
                for line in range(8):
                    system.read(core, (core * 8 + line) * 64)
                    system.write(core, (core * 8 + line) * 64)
            return system.stats.total_transactions

        assert traffic("MSI") > traffic("MESI")

    def test_msi_swmr_still_holds(self):
        rng = np.random.default_rng(3)
        system = CoherentSystem(4, protocol="MSI")
        for _ in range(300):
            core, line = int(rng.integers(0, 4)), int(rng.integers(0, 8))
            if rng.random() < 0.5:
                system.read(core, line * 64)
            else:
                system.write(core, line * 64)
            system.check_invariants()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            CoherentSystem(2, protocol="MOESI")


class TestRWLock:
    @staticmethod
    def _run(seed, readers=4, writers=2):
        sched = Scheduler(policy=RandomPolicy(seed))
        rw = VRWLock()
        data = SharedVar("d", 0)
        snapshot = []

        def reader(rw, data):
            yield from rw.acquire_read()
            v = yield data.read()
            snapshot.append(v)
            yield Nop()
            yield from rw.release_read()

        def writer(rw, data, value):
            yield from rw.acquire_write()
            yield Nop()
            yield data.write(value)
            yield from rw.release_write()

        for i in range(readers):
            sched.spawn(reader(rw, data), name=f"r{i}")
        for i in range(writers):
            sched.spawn(writer(rw, data, 100 + i), name=f"w{i}")
        return sched.run(), rw, snapshot

    @pytest.mark.parametrize("seed", range(8))
    def test_no_deadlock_no_race(self, seed):
        run, rw, _ = self._run(seed)
        assert run.ok, (run.failures, run.deadlock)
        assert run.races == []

    def test_readers_overlap(self):
        overlapped = any(self._run(seed)[1].max_concurrent_readers >= 2 for seed in range(12))
        assert overlapped, "readers should sometimes share the lock"

    def test_readers_see_consistent_values(self):
        for seed in range(8):
            _, _, snapshot = self._run(seed)
            assert all(v in (0, 100, 101) for v in snapshot)

    def test_writer_exclusion_verified_by_explorer(self):
        from repro.interleave import explore

        def factory(policy):
            sched = Scheduler(policy=policy, detect_races=False)
            rw = VRWLock()
            inside = SharedVar("inside", 0)
            bad = []

            def writer(rw, inside):
                yield from rw.acquire_write()
                before = yield inside.fetch_add(1)
                if before != 0:
                    bad.append(before)
                yield inside.fetch_add(-1)
                yield from rw.release_write()

            for i in range(2):
                sched.spawn(writer(rw, inside), name=f"w{i}")

            def check(run):
                return f"two writers inside: {bad}" if bad else None

            return sched, check

        result = explore(factory, max_schedules=400)
        assert result.clean, result.summary()


class TestQuota:
    def test_quota_blocks_oversized_write(self, tmp_path):
        fm = FileManager(tmp_path / "h", quota_bytes=100)
        fm.write("u", "a.bin", b"x" * 60)
        with pytest.raises(FileManagerError, match="quota"):
            fm.write("u", "b.bin", b"x" * 60)
        fm.write("u", "b.bin", b"x" * 30)  # still room for this

    def test_quota_blocks_copy(self, tmp_path):
        fm = FileManager(tmp_path / "h", quota_bytes=100)
        fm.write("u", "a.bin", b"x" * 60)
        with pytest.raises(FileManagerError, match="quota"):
            fm.copy("u", "a.bin", "b.bin")

    def test_quota_is_per_user(self, tmp_path):
        fm = FileManager(tmp_path / "h", quota_bytes=100)
        fm.write("u1", "a.bin", b"x" * 90)
        fm.write("u2", "a.bin", b"x" * 90)  # independent allowance

    def test_invalid_quota_rejected(self, tmp_path):
        with pytest.raises(FileManagerError):
            FileManager(tmp_path / "h", quota_bytes=0)

    def test_quota_endpoint(self, tmp_path):
        app = make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small(),
                               quota_bytes=1000)
        c = PortalClient(app=app)
        c.login("admin", "admin-pass")
        c.write_file("f.txt", "x" * 100)
        info = c.quota()
        assert info["used_bytes"] >= 100 and info["quota_bytes"] == 1000


class TestAccountingAndPassword:
    def test_accounting_requires_privilege(self, student_client):
        with pytest.raises(PortalError, match="403"):
            student_client.cluster_accounting()

    def test_accounting_lists_finished_jobs(self, portal_app, admin_client, student_client):
        student_client.write_file("j.c", '#include <stdio.h>\nint main(void){ printf("x\\n"); return 0; }\n')
        resp = student_client.submit_job("j.c")
        student_client.wait_for_job(resp["job"]["id"], timeout=60)
        acct = admin_client.cluster_accounting()
        assert acct["summary"]["jobs_finished"] >= 1
        assert any(r["owner"] == "alice" for r in acct["records"])

    def test_password_change_endpoint(self, portal_app, admin_client):
        admin_client.create_user("rotator", "oldpass1")
        c = PortalClient(app=portal_app)
        c.login("rotator", "oldpass1")
        c.change_password("oldpass1", "newpass2")
        c2 = PortalClient(app=portal_app)
        with pytest.raises(PortalError, match="401"):
            c2.login("rotator", "oldpass1")
        c2.login("rotator", "newpass2")

    def test_password_change_requires_old(self, portal_app, admin_client):
        admin_client.create_user("victim", "goodpass1")
        c = PortalClient(app=portal_app)
        c.login("victim", "goodpass1")
        with pytest.raises(PortalError, match="401"):
            c.change_password("wrong", "hacked99")
