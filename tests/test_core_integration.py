"""End-to-end integration: workflows, classroom, live HTTP."""

import pytest

from repro.core import Classroom, PortalWorkflow
from repro.portal import PortalClient
from repro.portal.server import start_background


class TestPortalWorkflow:
    def test_develop_and_run_success(self, student_client):
        flow = PortalWorkflow(student_client)
        outcome = flow.develop_and_run(
            "greet.c",
            '#include <stdio.h>\nint main(void){ printf("workflow ok\\n"); return 0; }\n',
        )
        assert outcome.ok
        assert outcome.stdout == ["workflow ok"]

    def test_develop_and_run_compile_failure(self, student_client):
        flow = PortalWorkflow(student_client)
        outcome = flow.develop_and_run("broken.c", "int main( {\n")
        assert not outcome.compiled and not outcome.ok

    def test_edit_compile_loop(self, student_client):
        flow = PortalWorkflow(student_client)
        versions = [
            "int main( { broken\n",
            '#include <stdio.h>\nint main(void){ printf("fixed!\\n"); return 0; }\n',
        ]
        outcomes = flow.edit_compile_loop("iter.c", versions)
        assert [o.compiled for o in outcomes] == [False, True]
        assert outcomes[1].stdout == ["fixed!"]

    def test_runtime_failure_reported(self, student_client):
        flow = PortalWorkflow(student_client)
        outcome = flow.develop_and_run(
            "crash.c",
            "#include <stdlib.h>\nint main(void){ exit(7); }\n",
        )
        assert outcome.compiled and not outcome.ok
        assert outcome.state == "failed" and outcome.exit_code == 7


class TestLiveHttpServer:
    def test_full_workflow_over_tcp(self, portal_app):
        httpd, url = start_background(portal_app)
        try:
            client = PortalClient(base_url=url)
            client.login("admin", "admin-pass")
            client.create_user("nethacker", "password1")
            client.logout()

            client = PortalClient(base_url=url)
            client.login("nethacker", "password1")
            outcome = PortalWorkflow(client).develop_and_run(
                "net.c",
                '#include <stdio.h>\nint main(void){ printf("over tcp\\n"); return 0; }\n',
            )
            assert outcome.ok and outcome.stdout == ["over tcp"]
            files = client.list_files()
            assert any(f["name"] == "net.c" for f in files)
        finally:
            httpd.shutdown()

    def test_login_failure_over_tcp(self, portal_app):
        httpd, url = start_background(portal_app)
        try:
            client = PortalClient(base_url=url)
            with pytest.raises(Exception):
                client.login("nobody", "nothing")
        finally:
            httpd.shutdown()


class TestClassroom:
    @pytest.fixture(scope="class")
    def classroom(self, tmp_path_factory):
        return Classroom(n_students=4, root_dir=str(tmp_path_factory.mktemp("class")))

    def test_roster_created(self, classroom):
        client = PortalClient(app=classroom.app)
        client.login("student00", "student00-pass")
        assert client.whoami()["username"] == "student00"

    def test_instructor_account(self, classroom):
        client = PortalClient(app=classroom.app)
        assert client.login("instructor", "teach-pass")["role"] == "instructor"

    def test_lab_session_portal_runs_and_demos(self, classroom):
        report = classroom.run_lab_session("lab1", sample_students=2)
        assert report.portal_runs_ok == 2
        assert report.fixed_demo_passed
        assert not report.broken_demo_passed  # the race bit at seed 2

    def test_integration_plan_lists_added_topics(self, classroom):
        plan = classroom.integration_plan()
        assert "ADDED" in plan and "UMA" in plan and "lab3" in plan

    def test_semester_report_tables(self, tmp_path_factory):
        room = Classroom(n_students=19, root_dir=str(tmp_path_factory.mktemp("c2")))
        report = room.semester_report()
        assert report.cohort_size == 19
        assert "Table 1" in report.table1()
        # memoised
        assert room.semester_report() is report


class TestRunAllLabs:
    def test_every_lab_session_reports(self, tmp_path_factory):
        room = Classroom(n_students=2, root_dir=str(tmp_path_factory.mktemp("all")))
        reports = room.run_all_labs(sample_students=1)
        assert [r.lab_id for r in reports] == [f"lab{i}" for i in range(1, 8)]
        assert all(r.fixed_demo_passed for r in reports)
        assert all(r.portal_runs_ok == 1 for r in reports)
