"""Semaphores, conditions, barriers, spin locks."""

import pytest

from repro.interleave import (
    Nop,
    RoundRobinPolicy,
    Scheduler,
    SharedVar,
    TASLock,
    TTASLock,
    VBarrier,
    VCondition,
    VMutex,
    VSemaphore,
)


class TestSemaphore:
    def test_counting_limits_concurrency(self):
        sched = Scheduler(seed=4, detect_races=False)
        sem = VSemaphore("s", 2)
        inside = SharedVar("inside", 0)
        peaks = []

        def body(sem, inside):
            yield sem.p()
            v = yield inside.read()
            yield inside.write(v + 1)
            peaks.append(v + 1)
            yield Nop()
            v = yield inside.read()
            yield inside.write(v - 1)
            yield sem.v()

        for i in range(6):
            sched.spawn(body(sem, inside), name=f"t{i}")
        run = sched.run()
        assert run.ok and max(peaks) <= 2

    def test_fifo_wakeup(self):
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        sem = VSemaphore("s", 0)
        order = []

        def waiter(name, sem):
            yield sem.p()
            order.append(name)

        def signaller(sem, n):
            for _ in range(n):
                yield Nop()
                yield sem.v()

        for n in ("a", "b", "c"):
            sched.spawn(waiter(n, sem), name=n)
        sched.spawn(signaller(sem, 3), name="sig")
        run = sched.run()
        assert run.ok and order == ["a", "b", "c"]

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            VSemaphore("s", -1)

    def test_posix_aliases(self):
        sem = VSemaphore("s", 1)
        assert sem.wait().sem is sem
        assert sem.post().sem is sem


class TestCondition:
    def test_wait_requires_held_mutex(self):
        sched = Scheduler(seed=0)
        m = VMutex("m")
        c = VCondition(m, "c")

        def bad(c):
            yield c.wait()

        sched.spawn(bad(c), name="bad")
        run = sched.run()
        assert "bad" in run.failures

    def test_notify_one_wakes_single_waiter(self):
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        m = VMutex("m")
        c = VCondition(m, "c")
        flag = SharedVar("flag", False)
        woken = []

        def waiter(name):
            yield m.acquire()
            while True:
                f = yield flag.read()
                if f:
                    break
                yield c.wait()
            woken.append(name)
            yield m.release()

        def notifier():
            yield Nop()
            yield m.acquire()
            yield flag.write(True)
            yield c.notify_all()
            yield m.release()

        for n in ("w1", "w2"):
            sched.spawn(waiter(n), name=n)
        sched.spawn(notifier(), name="n")
        run = sched.run()
        assert run.ok and sorted(woken) == ["w1", "w2"]

    def test_lost_wakeup_without_predicate_recheck(self):
        """Classic bug: notify before wait -> waiter sleeps forever."""
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        m = VMutex("m")
        c = VCondition(m, "c")

        def notifier_first():
            yield m.acquire()
            yield c.notify_one()  # nobody waiting yet: signal lost
            yield m.release()

        def late_waiter():
            yield Nop()
            yield Nop()
            yield m.acquire()
            yield c.wait()  # no predicate recheck -> sleeps forever
            yield m.release()

        sched.spawn(notifier_first(), name="notifier")
        sched.spawn(late_waiter(), name="waiter")
        run = sched.run()
        assert run.deadlocked  # the canonical lost-wakeup stall


class TestBarrier:
    def test_all_arrive_before_any_leaves(self):
        sched = Scheduler(seed=7, detect_races=False)
        bar = VBarrier(4)
        arrived = []
        departed = []

        def body(i, bar):
            arrived.append(i)
            yield from bar.wait()
            departed.append((i, len(arrived)))

        for i in range(4):
            sched.spawn(body(i, bar), name=f"t{i}")
        run = sched.run()
        assert run.ok
        # by the time anyone departs, all four have arrived
        assert all(n == 4 for _, n in departed)

    def test_barrier_reusable_across_generations(self):
        sched = Scheduler(seed=1, detect_races=False)
        bar = VBarrier(2)
        log = []

        def body(i, bar):
            for round_ in range(3):
                yield from bar.wait()
                log.append((round_, i))

        for i in range(2):
            sched.spawn(body(i, bar), name=f"t{i}")
        run = sched.run()
        assert run.ok
        rounds = [r for r, _ in log]
        assert rounds == sorted(rounds)  # generations strictly ordered

    def test_invalid_parties_rejected(self):
        with pytest.raises(ValueError):
            VBarrier(0)


class TestSpinLocks:
    @pytest.mark.parametrize("lock_cls", [TASLock, TTASLock])
    def test_spinlock_provides_mutual_exclusion(self, lock_cls):
        sched = Scheduler(seed=11)
        lock = lock_cls()
        var = SharedVar("c", 0)

        def body(var, lock):
            for _ in range(10):
                yield from lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield from lock.release()

        for i in range(3):
            sched.spawn(body(var, lock), name=f"t{i}")
        run = sched.run()
        assert run.ok and var.value == 30
        assert not run.races  # LockAnnounce keeps the detector quiet
        assert lock.acquisitions == 30

    def test_ttas_reads_dominate_tas_attempts(self):
        sched = Scheduler(seed=11)
        lock = TTASLock()
        var = SharedVar("c", 0)

        def body(var, lock):
            for _ in range(10):
                yield from lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield from lock.release()

        for i in range(4):
            sched.spawn(body(var, lock), name=f"t{i}")
        sched.run()
        # TTAS only issues a TAS after observing the lock free.
        assert lock.tas_attempts < lock.tas_attempts + lock.total_spins
        assert lock.acquisitions == 40

    def test_reset_restores_initial_state(self):
        lock = TASLock("x")
        lock.total_spins = 5
        lock.acquisitions = 2
        lock.flag._value = True
        lock.reset()
        assert lock.total_spins == 0 and lock.acquisitions == 0 and lock.flag.value is False
