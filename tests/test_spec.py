"""The declarative cluster spec: validate, build, diff, reconfigure.

Five layers under test:

* **collect-all validation** — a document with N independent violations
  yields all N SPC-* findings (with document paths) from one
  ``validate()`` call, and the seeded fixture corpus pins the exact
  rule-id set per fixture;
* **materialisation** — ``build_cluster_spec`` on the checked-in UHD
  example reproduces ``ClusterSpec.uhd_default()`` exactly, and
  ``describe()`` round-trips a live distributor back into a document
  that validates clean and plans empty against itself;
* **diff planning** — every change class lands in the right strategy
  bucket (in-place / rolling-drain / destroy-recreate);
* **apply** — destroy-recreate is refused while jobs are live; a
  rolling-drain shrink of a busy pool completes with zero acked-job
  loss under the accounting monitor;
* **surfaces** — the portal endpoints (including the student 403), the
  ``cluster.spec.*`` bus RPCs, and the ``python -m repro.spec`` CLI.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro._errors import SpecError
from repro.bus import ClusterBackendService, ClusterProxy, MessageBus
from repro.cluster import (
    ClusterSpec,
    JobRequest,
    JobState,
    NodeSpec,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.portal import PortalClient
from repro.portal.client import PortalError
from repro.spec import (
    SPEC_CORPUS,
    SPEC_RULES,
    Reconfigurer,
    build_cluster_spec,
    build_distributor,
    build_fleet,
    check_spec_corpus,
    describe,
    ensure_valid,
    plan_reconfigure,
    spec_diff,
    valid_spec,
    validate,
)
from repro.spec.__main__ import main as spec_main
from repro.spec.fixtures import _kitchen_sink

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")
UHD_EXAMPLE = os.path.join(EXAMPLES, "uhd_cluster.json")
ELASTIC_EXAMPLE = os.path.join(EXAMPLES, "semester_elastic.json")


def load_example(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def des_world(doc: dict):
    """A distributor (+fleet when declared) over the DES backend."""
    sim = Simulator()
    dist = build_distributor(doc, SimulatedBackend(sim), now_fn=lambda: sim.now)
    fleet = build_fleet(doc, dist, check=False)
    return sim, dist, fleet


class TestCollectAllValidation:
    def test_kitchen_sink_reports_every_violation_at_once(self):
        """Twelve independent violations, one validate() call."""
        report = validate(_kitchen_sink())
        assert report.rule_ids() == sorted(SPEC_CORPUS["kitchen-sink"][1])
        assert not report.ok
        # every finding is anchored to a document path
        assert all(f.path for f in report.findings)
        paths = {f.rule_id: f.path for f in report.findings}
        assert paths["SPC-S002"] == "cluster.name"
        assert paths["SPC-C001"].startswith("fleet.pools[")
        assert paths["SPC-C004"] == "admission.queue_limit"

    def test_validation_never_raises(self):
        for doc in (None, [], "nope", 7, {"cluster": "not-a-dict"}):
            report = validate(doc)
            assert not report.ok

    def test_corpus_exact_rule_id_sets(self):
        assert check_spec_corpus() == []

    def test_baseline_is_clean(self):
        assert validate(valid_spec()).findings == []

    def test_warnings_do_not_block(self):
        doc = valid_spec()
        doc["admission"] = {"burst": 50.0, "queue_limit": 10}  # SPC-C004
        report = validate(doc)
        assert report.ok and report.rule_ids() == ["SPC-C004"]
        ensure_valid(doc)  # must not raise

    def test_ensure_valid_carries_findings(self):
        doc = valid_spec()
        doc["cluster"]["segments"][0]["slave_type"] = "ghost"
        with pytest.raises(SpecError) as exc_info:
            ensure_valid(doc)
        assert [f.rule_id for f in exc_info.value.findings] == ["SPC-R001"]

    def test_every_rule_id_is_catalogued(self):
        for _, expected in SPEC_CORPUS.values():
            assert expected <= set(SPEC_RULES)


class TestMaterialisation:
    def test_uhd_example_reproduces_uhd_default(self):
        doc = load_example(UHD_EXAMPLE)
        assert validate(doc).findings == []
        assert build_cluster_spec(doc) == ClusterSpec.uhd_default()

    def test_elastic_example_is_clean_and_builds(self):
        doc = load_example(ELASTIC_EXAMPLE)
        assert validate(doc).findings == []
        sim, dist, fleet = des_world(doc)
        assert fleet is not None and dist.fleet is fleet
        assert {p.name for p in fleet.pools} == {"base", "burst-spot"}
        assert dist.scheduler.name == "backfill"
        assert "node_lost" in dist.retry.retry_on

    def test_describe_round_trip(self):
        doc = load_example(ELASTIC_EXAMPLE)
        sim, dist, fleet = des_world(doc)
        live = describe(dist)
        assert validate(live).findings == []
        assert build_cluster_spec(live) == dist.grid.spec
        # a replan of the described state against itself is empty
        assert plan_reconfigure(live, copy.deepcopy(live)).actions == []

    def test_spec_diff_lists_changed_paths(self):
        cur = load_example(UHD_EXAMPLE)
        des = copy.deepcopy(cur)
        assert spec_diff(cur, des) == []
        des["scheduler"]["policy"] = "backfill"
        des["cluster"]["segments"][0]["slaves"] = 20
        changed = spec_diff(cur, des)
        assert "scheduler" in changed
        assert any(p.startswith("cluster.segments[seg-a]") for p in changed)


class TestDiffPlanner:
    def test_grow_segment_is_in_place(self):
        cur = valid_spec()
        des = copy.deepcopy(cur)
        des["cluster"]["segments"][0]["slaves"] = 8
        plan = plan_reconfigure(cur, des)
        assert [a.op for a in plan.actions] == ["grow_segment"]
        assert plan.actions[0].strategy == "in-place"

    def test_shrink_segment_is_rolling(self):
        cur = valid_spec()
        des = copy.deepcopy(cur)
        des["cluster"]["segments"][0]["slaves"] = 2
        plan = plan_reconfigure(cur, des)
        assert [a.strategy for a in plan.actions] == ["rolling-drain"]

    def test_retype_segment_is_rolling(self):
        cur = valid_spec()
        des = copy.deepcopy(cur)
        des["cluster"]["node_types"]["standard"]["cores"] = 8
        plan = plan_reconfigure(cur, des)
        assert {a.op for a in plan.actions} == {"retype_segment"}
        assert plan.disruption == "rolling-drain"

    def test_remove_segment_is_destructive(self):
        cur = load_example(UHD_EXAMPLE)
        des = copy.deepcopy(cur)
        del des["cluster"]["segments"][3]
        plan = plan_reconfigure(cur, des)
        assert [a.op for a in plan.actions] == ["remove_segment"]
        assert plan.destructive and plan.disruption == "destroy-recreate"

    def test_master_replacement_is_destructive(self):
        cur = valid_spec()
        des = copy.deepcopy(cur)
        des["cluster"]["master_server"] = {"cores": 16, "memory_mb": 32768}
        plan = plan_reconfigure(cur, des)
        assert [a.op for a in plan.actions] == ["replace_grid_master"]
        assert plan.destructive

    def test_knob_changes_are_in_place(self):
        cur = load_example(ELASTIC_EXAMPLE)
        des = copy.deepcopy(cur)
        des["scheduler"]["policy"] = "priority"
        des["admission"]["max_inflight"] = 32
        des["fleet"]["scaling"]["out_wait_s"] = 20.0
        plan = plan_reconfigure(cur, des)
        assert {a.op for a in plan.actions} == {
            "set_scheduler", "set_admission", "set_scaling",
        }
        assert plan.disruption == "in-place"

    def test_pool_bound_changes(self):
        cur = load_example(ELASTIC_EXAMPLE)
        des = copy.deepcopy(cur)
        des["fleet"]["pools"][0]["max_nodes"] = 4      # lowered -> shrink
        des["fleet"]["pools"][1]["max_nodes"] = 32     # raised  -> update
        plan = plan_reconfigure(cur, des)
        ops = {a.op: a.strategy for a in plan.actions}
        assert ops == {"shrink_pool": "rolling-drain", "update_pool": "in-place"}

    def test_invalid_desired_refused(self):
        cur = valid_spec()
        des = copy.deepcopy(cur)
        des["cluster"]["segments"][0]["slave_type"] = "ghost"
        with pytest.raises(SpecError):
            plan_reconfigure(cur, des)


class TestReconfigurer:
    def test_destroy_refused_while_jobs_live(self):
        doc = valid_spec()
        sim, dist, _ = des_world(doc)
        jobs = [dist.submit(JobRequest(name=f"j{i}", sim_duration=50.0))
                for i in range(4)]
        rc = Reconfigurer(dist)
        desired = rc.describe()
        desired["cluster"]["master_server"] = {"cores": 16, "memory_mb": 32768}
        with pytest.raises(SpecError, match="destroy-recreate"):
            rc.apply(desired)
        # nothing was touched
        assert dist.grid.spec.master_server_spec.cores == 8
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # idle cluster: the same apply goes through
        result = rc.apply(desired)
        assert result["complete"]
        assert dist.grid.spec.master_server_spec.cores == 16

    def test_in_place_knobs_apply_immediately(self):
        doc = valid_spec()
        sim, dist, _ = des_world(doc)
        rc = Reconfigurer(dist)
        desired = rc.describe()
        desired["scheduler"] = {"policy": "backfill"}
        desired["retry"] = {"max_attempts": 5, "retry_on": ["failed", "node_lost"]}
        result = rc.apply(desired)
        assert result["complete"]
        assert dist.scheduler.name == "backfill"
        assert dist.retry.max_attempts == 5

    def test_grow_segment_in_place(self):
        doc = valid_spec()
        sim, dist, _ = des_world(doc)
        rc = Reconfigurer(dist)
        desired = rc.describe()
        desired["cluster"]["segments"][0]["slaves"] = 7
        result = rc.apply(desired)
        assert result["complete"]
        assert len(dist.grid.segment("seg-0").slaves) == 7
        # level-triggered: re-applying the same document is a no-op
        assert rc.plan(desired).actions == []

    def test_add_segment_in_place(self):
        doc = valid_spec()
        sim, dist, _ = des_world(doc)
        rc = Reconfigurer(dist)
        desired = rc.describe()
        desired["cluster"]["segments"].append(
            {"name": "seg-1", "slaves": 3, "slave_type": "standard"}
        )
        result = rc.apply(desired)
        assert result["complete"]
        assert len(dist.grid.segment("seg-1").slaves) == 3
        assert rc.plan(desired).actions == []

    def test_busy_pool_shrink_rolls_with_zero_acked_loss(self):
        """The acceptance scenario: shrink a busy pool, lose nothing."""
        doc = valid_spec()
        doc["fleet"] = {
            "pools": [{"name": "burst", "segment": "seg-0",
                       "node_type": "standard", "min_nodes": 4,
                       "max_nodes": 8}],
            "scaling": {"policy": "target-queue-depth", "step": 2,
                        "scale_out_cooldown_s": 0.0,
                        "scale_in_cooldown_s": 1e9, "idle_s": 1e9},
        }
        sim, dist, fleet = des_world(doc)
        fleet.tick()  # min_nodes floor joins 4 managed nodes
        assert fleet.pool_sizes() == {"burst": 4}
        # saturate every node (static + managed) with long jobs
        jobs = [dist.submit(JobRequest(name=f"j{i}", sim_duration=30.0,
                                       cores_per_task=4))
                for i in range(16)]
        sim.run(until=1.0)
        running = sum(1 for j in jobs if j.state is JobState.RUNNING)
        assert running >= 8  # the pool is genuinely busy

        rc = Reconfigurer(dist)
        desired = rc.describe()
        pool = desired["fleet"]["pools"][0]
        pool["min_nodes"], pool["max_nodes"] = 0, 1
        result = rc.apply(desired)
        plan_ops = {a["op"] for a in result["plan"]["actions"]}
        assert "shrink_pool" in plan_ops
        assert not result["complete"]          # drains outstanding
        assert len(result["pending"]) == 3     # 4 managed - new max 1

        # pump virtual time; drains complete only as nodes go idle
        for _ in range(200):
            sim.run(until=sim.now + 1.0)
            if rc.tick() == 0 and all(
                j.state is JobState.COMPLETED for j in jobs
            ):
                break
        assert rc.done
        assert fleet.pool_sizes() == {"burst": 1}
        # zero acked-job loss, confirmed by the accounting monitor
        assert all(j.state is JobState.COMPLETED for j in jobs)
        summary = dist.monitor.summary()
        assert summary["by_state"] == {"completed": len(jobs)}

    def test_retype_drains_and_replaces(self):
        doc = valid_spec()
        sim, dist, _ = des_world(doc)
        rc = Reconfigurer(dist)
        desired = rc.describe()
        desired["cluster"]["node_types"]["standard"]["cores"] = 8
        result = rc.apply(desired)
        # idle cluster: every slave drained and replaced within the apply
        for _ in range(8):
            if rc.tick() == 0:
                break
        assert rc.done
        assert all(n.spec.cores == 8 for n in dist.grid.segment("seg-0").slaves)
        assert rc.plan(desired).actions == []


class TestPortalSurface:
    def test_get_spec_describes_live_cluster(self, admin_client):
        doc = admin_client.cluster_spec()
        assert validate(doc).findings == []
        assert "cluster" in doc and "scheduler" in doc

    def test_validate_endpoint_always_200(self, student_client):
        report = student_client.validate_spec(_kitchen_sink())
        assert not report["ok"]
        assert report["rule_ids"] == sorted(SPEC_CORPUS["kitchen-sink"][1])
        clean = student_client.validate_spec(valid_spec())
        assert clean["ok"] and clean["findings"] == []

    def test_student_cannot_reconfigure(self, student_client):
        with pytest.raises(PortalError, match="403"):
            student_client.reconfigure(valid_spec())

    def test_unauthenticated_spec_rejected(self, portal_app):
        c = PortalClient(app=portal_app)
        with pytest.raises(PortalError, match="401"):
            c.cluster_spec()

    def test_plan_then_apply(self, portal_app, admin_client):
        live = admin_client.cluster_spec()
        desired = copy.deepcopy(live)
        desired["scheduler"] = {"policy": "priority", "aging_rate": 0.5}
        planned = admin_client.reconfigure(desired)
        assert planned["applied"] is False
        assert [a["op"] for a in planned["plan"]["actions"]] == ["set_scheduler"]
        applied = admin_client.reconfigure(desired, apply=True)
        assert applied["applied"] and applied["complete"]
        assert portal_app.jobsvc.distributor.scheduler.name == "priority"

    def test_invalid_spec_is_400_with_findings(self, admin_client):
        bad = valid_spec()
        bad["cluster"]["segments"][0]["slave_type"] = "ghost"
        with pytest.raises(PortalError, match="400"):
            admin_client.reconfigure(bad)


class TestBusSurface:
    def test_spec_rpcs_round_trip(self):
        sim, dist, _ = des_world(valid_spec())
        bus = MessageBus()
        service = ClusterBackendService(bus, dist)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            live = proxy.spec_describe()
            assert validate(live).findings == []
            report = proxy.spec_validate(_kitchen_sink())
            assert not report["ok"]
            planned = proxy.spec_reconfigure(live, manage=True)
            assert planned == {"applied": False,
                               "plan": {"actions": [],
                                        "summary": "no changes",
                                        "disruption": "none"}}
        finally:
            service.stop()

    def test_reconfigure_requires_manage_capability(self):
        sim, dist, _ = des_world(valid_spec())
        bus = MessageBus()
        service = ClusterBackendService(bus, dist)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            with pytest.raises(Exception, match="manage_cluster"):
                proxy.spec_reconfigure(valid_spec())
        finally:
            service.stop()

    def test_apply_over_the_bus(self):
        sim, dist, _ = des_world(valid_spec())
        bus = MessageBus()
        service = ClusterBackendService(bus, dist)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            desired = proxy.spec_describe()
            desired["scheduler"] = {"policy": "backfill"}
            result = proxy.spec_reconfigure(desired, apply=True, manage=True)
            assert result["applied"] and result["complete"]
            assert dist.scheduler.name == "backfill"
        finally:
            service.stop()


class TestCli:
    def test_validate_clean_examples(self, capsys):
        assert spec_main(["validate", UHD_EXAMPLE, ELASTIC_EXAMPLE]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_validate_invalid_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_kitchen_sink()))
        assert spec_main(["validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SPC-S001" in out and "SPC-C006" in out

    def test_validate_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_kitchen_sink()))
        spec_main(["validate", str(bad), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert report["rule_ids"] == sorted(SPEC_CORPUS["kitchen-sink"][1])

    def test_diff_and_plan(self, tmp_path, capsys):
        cur = tmp_path / "cur.json"
        des = tmp_path / "des.json"
        cur.write_text(json.dumps(valid_spec()))
        doc = valid_spec()
        doc["scheduler"]["policy"] = "backfill"
        des.write_text(json.dumps(doc))
        assert spec_main(["diff", str(cur), str(des)]) == 1
        assert "scheduler" in capsys.readouterr().out
        assert spec_main(["diff", str(cur), str(cur)]) == 0
        capsys.readouterr()
        assert spec_main(["plan", str(cur), str(des)]) == 0
        assert "set_scheduler" in capsys.readouterr().out

    def test_corpus_subcommand(self, capsys):
        assert spec_main(["corpus"]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_list_rules_subcommand(self, capsys):
        assert spec_main(["list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in SPEC_RULES:
            assert rule_id in out
