"""Network cost model and Cartesian topologies."""

import math

import pytest

from repro._errors import MPIError, RankError
from repro.minimpi import NetworkModel, Topology, dims_create, run_mpi


class TestHops:
    def test_flat_is_single_hop(self):
        net = NetworkModel(topology=Topology.FLAT)
        assert net.hops(0, 7, 8) == 1
        assert net.hops(3, 3, 8) == 0

    def test_ring_wraps(self):
        net = NetworkModel(topology=Topology.RING)
        assert net.hops(0, 1, 8) == 1
        assert net.hops(0, 7, 8) == 1
        assert net.hops(0, 4, 8) == 4

    def test_grid2d_manhattan(self):
        net = NetworkModel(topology=Topology.GRID2D)
        # 3x3 grid: rank = row*3+col
        assert net.hops(0, 8, 9) == 4  # (0,0)->(2,2)
        assert net.hops(0, 1, 9) == 1

    def test_hypercube_hamming(self):
        net = NetworkModel(topology=Topology.HYPERCUBE)
        assert net.hops(0b000, 0b111, 8) == 3
        assert net.hops(0b010, 0b011, 8) == 1

    def test_segmented_intra_vs_inter(self):
        net = NetworkModel(topology=Topology.SEGMENTED, segment_size=16)
        assert net.hops(0, 15, 64) == 1   # same segment
        assert net.hops(0, 16, 64) == 3   # across the grid master

    def test_rank_out_of_range(self):
        net = NetworkModel()
        with pytest.raises(MPIError):
            net.hops(0, 9, 4)


class TestCost:
    def test_cost_formula(self):
        net = NetworkModel(latency_us=2.0, bandwidth_bytes_per_us=100.0, overhead_us=0.5)
        # 1 hop * 2us + 1000/100 us + 0.5 overhead
        assert net.cost_us(0, 1, 1000, 4) == pytest.approx(0.5 + 2.0 + 10.0)

    def test_self_send_only_overhead(self):
        net = NetworkModel(overhead_us=0.5)
        assert net.cost_us(2, 2, 10_000, 4) == 0.5

    def test_diameter(self):
        assert NetworkModel(topology=Topology.RING).diameter(8) == 4
        assert NetworkModel(topology=Topology.FLAT).diameter(8) == 1
        assert NetworkModel().diameter(1) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MPIError):
            NetworkModel(latency_us=-1)
        with pytest.raises(MPIError):
            NetworkModel(bandwidth_bytes_per_us=0)

    def test_segmented_timing_visible_in_virtual_clock(self):
        net = NetworkModel(topology=Topology.SEGMENTED, segment_size=4)

        def program(comm):
            if comm.rank == 0:
                comm.send(b"x" * 100, 1)   # intra-segment
                comm.send(b"x" * 100, 5)   # inter-segment
            elif comm.rank in (1, 5):
                comm.recv(0)
            return comm.virtual_time_us()

        vals = run_mpi(program, 8, network=net)
        assert vals[5] > vals[1]


class TestDimsCreate:
    @pytest.mark.parametrize("n,ndims", [(4, 2), (12, 2), (8, 3), (7, 2), (64, 3), (1, 1)])
    def test_product_covers_nodes(self, n, ndims):
        dims = dims_create(n, ndims)
        assert math.prod(dims) == n
        assert len(dims) == ndims
        assert dims == sorted(dims, reverse=True)

    def test_balanced_square(self):
        assert dims_create(16, 2) == [4, 4]
        assert dims_create(12, 2) in ([4, 3], [6, 2])  # 4x3 is the balanced one
        assert dims_create(12, 2) == [4, 3]

    def test_invalid_args(self):
        with pytest.raises(MPIError):
            dims_create(0, 2)


class TestCartComm:
    def test_coords_roundtrip(self):
        def program(comm):
            cart = comm.create_cart([2, 3])
            coords = cart.coords
            assert cart.rank_of(coords) == comm.rank
            return coords

        vals = run_mpi(program, 6)
        assert vals[0] == (0, 0) and vals[5] == (1, 2)

    def test_dims_must_cover_comm(self):
        def program(comm):
            comm.create_cart([2, 2])  # size is 6

        with pytest.raises(Exception):
            run_mpi(program, 6, timeout=10)

    def test_shift_non_periodic_edges(self):
        def program(comm):
            cart = comm.create_cart([1, comm.size], periods=[False, False])
            return cart.shift(1, 1)

        vals = run_mpi(program, 4)
        assert vals[0] == (None, 1)       # left edge has no source
        assert vals[3] == (2, None)       # right edge has no dest

    def test_shift_periodic_wraps(self):
        def program(comm):
            cart = comm.create_cart([1, comm.size], periods=[False, True])
            return cart.shift(1, 1)

        vals = run_mpi(program, 4)
        assert vals[0] == (3, 1)
        assert vals[3] == (2, 0)

    def test_halo_exchange(self):
        def program(comm):
            cart = comm.create_cart([comm.size], periods=[True])
            received = cart.exchange_with_neighbors(comm.rank, tag=7)
            return sorted(received.values())

        vals = run_mpi(program, 5)
        assert vals[0] == [1, 4]  # neighbours of rank 0 on the periodic ring

    def test_rank_of_off_grid_raises(self):
        def program(comm):
            cart = comm.create_cart([comm.size], periods=[False])
            try:
                cart.rank_of([comm.size + 1])
            except RankError:
                return "raised"

        assert run_mpi(program, 3) == ["raised"] * 3
