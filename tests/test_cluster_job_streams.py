"""Job lifecycle, requests, and stream capture."""

import threading

import pytest

from repro._errors import JobError
from repro.cluster import (
    InteractiveChannel,
    Job,
    JobKind,
    JobRequest,
    JobState,
    StreamCapture,
)


class TestJobRequestValidation:
    def test_exactly_one_payload_required(self):
        with pytest.raises(JobError):
            JobRequest(name="none")  # no payload at all
        with pytest.raises(JobError):
            JobRequest(name="two", argv=["x"], sim_duration=1.0)

    def test_sequential_must_be_single_task(self):
        with pytest.raises(JobError):
            JobRequest(name="bad", argv=["x"], kind=JobKind.SEQUENTIAL, n_tasks=2)

    def test_interactive_must_be_single_task(self):
        with pytest.raises(JobError):
            JobRequest(name="bad", argv=["x"], kind=JobKind.INTERACTIVE, n_tasks=2)

    def test_invalid_shape_rejected(self):
        with pytest.raises(JobError):
            JobRequest(name="bad", argv=["x"], n_tasks=0)
        with pytest.raises(JobError):
            JobRequest(name="bad", argv=["x"], cores_per_task=0)
        with pytest.raises(JobError):
            JobRequest(name="bad", argv=["x"], memory_mb_per_task=-1)

    def test_total_cores(self):
        req = JobRequest(name="p", sim_duration=1.0, kind=JobKind.PARALLEL,
                         n_tasks=4, cores_per_task=2)
        assert req.total_cores == 8


class TestJobLifecycle:
    def make(self):
        return Job(JobRequest(name="j", sim_duration=1.0))

    def test_happy_path(self):
        job = self.make()
        assert job.state is JobState.PENDING
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        assert job.terminal

    def test_illegal_transitions_raise(self):
        job = self.make()
        with pytest.raises(JobError):
            job.transition(JobState.RUNNING)  # must queue first
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.FAILED)
        with pytest.raises(JobError):
            job.transition(JobState.RUNNING)  # terminal is terminal

    def test_cancel_from_every_live_state(self):
        for path in ([], [JobState.QUEUED], [JobState.QUEUED, JobState.RUNNING]):
            job = self.make()
            for st in path:
                job.transition(st)
            job.transition(JobState.CANCELLED)
            assert job.terminal

    def test_try_transition_returns_bool(self):
        job = self.make()
        assert job.try_transition(JobState.QUEUED)
        assert not job.try_transition(JobState.COMPLETED)

    def test_unique_ids(self):
        ids = {Job(JobRequest(name="x", sim_duration=1.0)).id for _ in range(100)}
        assert len(ids) == 100

    def test_interactive_keeps_stdin_open(self):
        seq = Job(JobRequest(name="s", sim_duration=1.0))
        inter = Job(JobRequest(name="i", sim_duration=1.0, kind=JobKind.INTERACTIVE))
        assert seq.stdin.closed
        assert not inter.stdin.closed

    def test_describe_is_json_ready(self):
        import json

        job = self.make()
        json.dumps(job.describe())

    def test_runtime_and_wait(self):
        job = self.make()
        assert job.runtime_s is None and job.wait_s is None
        job.submitted_at, job.started_at, job.finished_at = 1.0, 3.0, 10.0
        assert job.wait_s == 2.0 and job.runtime_s == 7.0


class TestStreamCapture:
    def test_offset_polling(self):
        s = StreamCapture()
        for i in range(5):
            s.write_line(f"line{i}")
        lines, nxt, truncated = s.read_since(0)
        assert lines == [f"line{i}" for i in range(5)] and nxt == 5 and not truncated
        s.write_line("line5")
        lines, nxt, _ = s.read_since(nxt)
        assert lines == ["line5"] and nxt == 6

    def test_eviction_reports_truncation(self):
        s = StreamCapture(max_lines=3)
        for i in range(10):
            s.write_line(str(i))
        lines, nxt, truncated = s.read_since(0)
        assert truncated and lines == ["7", "8", "9"] and nxt == 10

    def test_read_since_eviction_boundary(self):
        """since exactly at the eviction edge is complete, one before is not."""
        s = StreamCapture(max_lines=3)
        for i in range(10):
            s.write_line(str(i))
        # lines 0..6 evicted; the buffer holds indices 7, 8, 9
        lines, nxt, truncated = s.read_since(7)
        assert lines == ["7", "8", "9"] and nxt == 10 and not truncated
        lines, nxt, truncated = s.read_since(6)
        assert lines == ["7", "8", "9"] and nxt == 10 and truncated
        # caught-up poller: empty read, cursor unchanged, nothing "lost"
        lines, nxt, truncated = s.read_since(10)
        assert lines == [] and nxt == 10 and not truncated
        # mid-buffer cursor copies only the tail it asks for
        lines, nxt, truncated = s.read_since(9)
        assert lines == ["9"] and nxt == 10 and not truncated

    def test_text_since_matches_read_since(self):
        s = StreamCapture(max_lines=4)
        for i in range(6):
            s.write_line(f"l{i}")
        text, nxt, truncated = s.text_since(0)
        assert text == "l2\nl3\nl4\nl5" and nxt == 6 and truncated
        text, nxt, truncated = s.text_since(nxt)
        assert text == "" and nxt == 6 and not truncated

    def test_tail_copies_only_requested_lines(self):
        s = StreamCapture()
        for i in range(100):
            s.write_line(str(i))
        assert s.tail(3) == ["97", "98", "99"]
        assert s.tail(200) == [str(i) for i in range(100)]

    def test_closed_stream_drops_late_writes(self):
        s = StreamCapture()
        s.write_line("kept")
        s.close()
        s.write_line("dropped")
        assert s.tail() == ["kept"]

    def test_multiline_text(self):
        s = StreamCapture()
        s.write_text("a\nb\nc")
        assert s.text() == "a\nb\nc"

    def test_concurrent_writers_lose_nothing(self):
        s = StreamCapture(max_lines=100_000)

        def writer(tag):
            for i in range(500):
                s.write_line(f"{tag}-{i}")

        threads = [threading.Thread(target=writer, args=(t,)) for t in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.next_index == 2000


class TestInteractiveChannel:
    def test_write_then_read(self):
        ch = InteractiveChannel()
        ch.write("one\ntwo\n")
        assert ch.read_line() == "one"
        assert ch.read_line() == "two"

    def test_eof_after_close(self):
        ch = InteractiveChannel()
        ch.write("last")
        ch.close()
        assert ch.read_line() == "last"
        assert ch.read_line() is None

    def test_write_after_close_rejected(self):
        ch = InteractiveChannel()
        ch.close()
        with pytest.raises(ValueError):
            ch.write("x")

    def test_read_timeout(self):
        ch = InteractiveChannel()
        with pytest.raises(TimeoutError):
            ch.read_line(timeout=0.05)

    def test_blocking_read_woken_by_writer(self):
        ch = InteractiveChannel()
        got = []

        def reader():
            got.append(ch.read_line(timeout=5))

        t = threading.Thread(target=reader)
        t.start()
        ch.write("hello")
        t.join(5)
        assert got == ["hello"]

    def test_drain(self):
        ch = InteractiveChannel()
        ch.write("a\nb")
        assert ch.drain() == "a\nb"
        assert ch.drain() == ""
