"""Crash-point battery for the durability layer (WAL + recovery).

The headline harness: for every instrumented crash point in the
distributor's journal path, run a workload, kill the process model at
that exact instruction (``SimulatedCrash`` unwinds like ``kill -9`` —
it is a ``BaseException``, so no error guard absorbs it), reboot from
the journal directory, and assert the durability contract:

* **no acknowledged job is lost** — every id ``submit`` returned exists
  after recovery and reaches a terminal state;
* **no attempt double-completes** — at most one ``completed`` lineage
  entry per job, even when the crash landed between the journal write
  and the in-memory callback;
* **attempt epochs stay monotone** across the crash/reboot boundary.

Alongside the battery: frame-codec and store-level units (torn tails,
overlap dedup after an interrupted compaction, mid-journal corruption),
recovery-reconciliation paths (resume on surviving nodes, retry-budget
exhaustion, unrecoverable callables), a crash *during recovery*, the
hypothesis prefix-replay property, and the injector/RPC/CLI surfaces.
"""

from __future__ import annotations

import io
import itertools
import json
import struct
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._errors import JobError, ResourceError
from repro.cluster import (
    CallableBackend,
    ClusterSpec,
    FaultInjector,
    Grid,
    JobDistributor,
    JobRequest,
    JobState,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.durability import (
    CRASH_POINTS,
    CrashPoints,
    DurabilityStore,
    JobJournal,
    JournalCorruption,
    SimulatedCrash,
    decode_frames,
    encode_frame,
    recover_distributor,
    replay,
)
from repro.durability.__main__ import main as journal_cli
from repro.durability.journal import FrameStats

settings.register_profile(
    "repro-durability",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro-durability")

RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base_s=0.01,
    jitter=0.0,
    retry_on=("failed", "timeout", "node_lost"),
)


def des_env(journal_dir, **dist_kwargs):
    """Fresh DES world journaling into ``journal_dir``."""
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=1, slaves=3, cores=2))
    store = DurabilityStore(journal_dir, fsync="never")
    dist = JobDistributor(
        grid,
        SimulatedBackend(sim),
        now_fn=lambda: sim.now,
        journal=JobJournal(store, snapshot_every=dist_kwargs.pop("snapshot_every", 7)),
        retry=dist_kwargs.pop("retry", RETRY),
        **dist_kwargs,
    )
    return sim, grid, dist


def reboot(journal_dir, live_nodes=None, **dist_kwargs):
    """Boot a new world from the journal directory alone."""
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=1, slaves=3, cores=2))
    store = DurabilityStore(journal_dir, fsync="never")
    dist, report = recover_distributor(
        store,
        grid,
        SimulatedBackend(sim),
        live_nodes=live_nodes,
        now_fn=lambda: sim.now,
        retry=dist_kwargs.pop("retry", RETRY),
        **dist_kwargs,
    )
    return sim, grid, dist, report


def drain(sim, dist, rounds=200):
    """Drive dispatch + DES until every job is terminal."""
    for _ in range(rounds):
        dist.dispatch()
        sim.run()
        if all(j.terminal for j in dist.jobs.values()):
            return
    raise AssertionError(
        f"jobs stuck: {[(j.id, j.state.value) for j in dist.jobs.values() if not j.terminal]}"
    )


def assert_durability_contract(dist, acked):
    """The battery's three invariants, post-recovery."""
    for job_id in acked:
        job = dist.jobs.get(job_id)
        assert job is not None, f"acknowledged job {job_id} lost in crash"
        assert job.terminal, (job_id, job.state)
        completed = [a for a in job.attempts if a.outcome == "completed"]
        assert len(completed) <= 1, f"{job_id} double-completed: {job.attempts}"
        if job.state is JobState.COMPLETED:
            assert len(completed) == 1
        nos = [a.no for a in job.attempts]
        assert nos == sorted(nos), f"{job_id} attempt epochs not monotone: {nos}"
        assert job.attempt_epoch >= (nos[-1] if nos else 0)


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------
class TestFrames:
    def test_roundtrip(self):
        recs = [{"kind": "submit", "lsn": i, "job": f"j{i}"} for i in range(1, 6)]
        blob = b"".join(encode_frame(r) for r in recs)
        assert list(decode_frames(io.BytesIO(blob))) == recs

    def test_torn_tail_is_dropped_not_raised(self):
        good = encode_frame({"lsn": 1, "kind": "submit"})
        torn = encode_frame({"lsn": 2, "kind": "seal"})[:-3]
        stats = FrameStats()
        out = list(decode_frames(io.BytesIO(good + torn), stats))
        assert [r["lsn"] for r in out] == [1]
        assert stats.torn and stats.tail_bytes == len(torn)

    def test_bit_flip_stops_decode(self):
        good = encode_frame({"lsn": 1, "kind": "submit"})
        bad = bytearray(encode_frame({"lsn": 2, "kind": "seal"}))
        bad[-1] ^= 0xFF  # payload corrupt -> crc mismatch
        stats = FrameStats()
        out = list(decode_frames(io.BytesIO(good + bytes(bad)), stats))
        assert [r["lsn"] for r in out] == [1]
        assert stats.torn

    def test_garbage_header_is_torn(self):
        stats = FrameStats()
        assert list(decode_frames(io.BytesIO(b"\xff" * 40), stats)) == []
        assert stats.torn

    def test_crc_is_real(self):
        frame = encode_frame({"lsn": 9, "kind": "seal"})
        length, crc = struct.unpack(">II", frame[:8])
        assert length == len(frame) - 8
        assert crc == zlib.crc32(frame[8:]) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# store: segments, snapshots, compaction, corruption
# ---------------------------------------------------------------------------
class TestStore:
    def test_append_assigns_monotone_lsns_and_recovers_in_order(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        lsns = [store.append({"kind": "submit", "job": f"j{i}"}) for i in range(10)]
        assert lsns == list(range(1, 11))
        store.close()
        state, records, info = DurabilityStore(tmp_path, fsync="never").recover()
        assert state is None
        assert [r["lsn"] for r in records] == lsns
        assert not info["torn_tail"]

    def test_snapshot_compacts_and_records_resume_above_lsn(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        for i in range(5):
            store.append({"kind": "submit", "job": f"j{i}"})
        out = store.snapshot({"jobs": [{"id": "j0"}]})
        assert out == {"lsn": 5, "segments_deleted": 1}
        store.append({"kind": "seal", "job": "j0"})
        store.close()
        state, records, info = DurabilityStore(tmp_path, fsync="never").recover()
        assert state == {"jobs": [{"id": "j0"}]}
        assert [r["lsn"] for r in records] == [6]
        assert info["snapshot_lsn"] == 5

    def test_interrupted_compaction_leaves_dedupable_overlap(self, tmp_path):
        crash = CrashPoints()
        store = DurabilityStore(tmp_path, fsync="never", crashpoints=crash)
        for i in range(4):
            store.append({"kind": "submit", "job": f"j{i}"})
        crash.arm("compaction.mid")
        with pytest.raises(SimulatedCrash):
            store.snapshot({"jobs": []})
        # snapshot is live, stale segment survived -> overlap on disk
        assert (tmp_path / "snapshot.json").exists()
        assert len(list(tmp_path.glob("wal-*.log"))) >= 1
        state, records, info = DurabilityStore(tmp_path, fsync="never").recover()
        assert state == {"jobs": []}
        assert records == []  # everything <= snapshot lsn deduped away
        assert info["snapshot_lsn"] == 4

    def test_crash_before_snapshot_rename_keeps_old_truth(self, tmp_path):
        crash = CrashPoints()
        store = DurabilityStore(tmp_path, fsync="never", crashpoints=crash)
        store.append({"kind": "submit", "job": "j0"})
        store.snapshot({"jobs": ["old"]})
        store.append({"kind": "seal", "job": "j0"})
        crash.arm("snapshot.mid-write")
        with pytest.raises(SimulatedCrash):
            store.snapshot({"jobs": ["new"]})
        state, records, _ = DurabilityStore(tmp_path, fsync="never").recover()
        assert state == {"jobs": ["old"]}  # rename never happened
        assert [r["kind"] for r in records] == ["seal"]

    def test_mid_journal_corruption_raises(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        store.append({"kind": "submit", "job": "j0"})
        store.snapshot({"jobs": []})  # rotates; old segment deleted
        store.append({"kind": "seal", "job": "j0"})
        store.close()
        first = sorted(tmp_path.glob("wal-*.log"))[0]
        first.write_bytes(first.read_bytes()[:-2])  # tear it
        # make it non-last by adding a later segment
        (tmp_path / "wal-99999999.log").write_bytes(
            encode_frame({"lsn": 99999999, "kind": "seal", "job": "jx"})
        )
        with pytest.raises(JournalCorruption, match="mid-journal"):
            DurabilityStore(tmp_path, fsync="never").recover()

    def test_torn_tail_on_last_segment_tolerated_and_counted(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        for i in range(3):
            store.append({"kind": "submit", "job": f"j{i}"})
        store.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        store2 = DurabilityStore(tmp_path, fsync="never")
        _, records, info = store2.recover()
        assert [r["job"] for r in records] == ["j0", "j1"]
        assert info["torn_tail"]
        assert store2.stats["torn_tail_dropped_bytes"] > 0
        # new appends land in a fresh segment, never extend the torn file
        store2.append({"kind": "submit", "job": "j3"})
        store2.close()
        assert len(list(tmp_path.glob("wal-*.log"))) == 2

    def test_recover_twice_is_idempotent(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        for i in range(6):
            store.append({"kind": "submit", "job": f"j{i}"})
        store.close()
        a = DurabilityStore(tmp_path, fsync="never").recover()
        b = DurabilityStore(tmp_path, fsync="never").recover()
        assert a[0] == b[0] and a[1] == b[1]

    def test_fresh_lsns_never_collide_after_reopen(self, tmp_path):
        store = DurabilityStore(tmp_path, fsync="never")
        store.append({"kind": "submit", "job": "a"})
        store.close()
        store2 = DurabilityStore(tmp_path, fsync="never")
        assert store2.append({"kind": "submit", "job": "b"}) == 2

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(Exception, match="fsync"):
            DurabilityStore(tmp_path, fsync="sometimes")

    def test_fsync_always_counts_and_observes(self, tmp_path):
        seen = []
        store = DurabilityStore(tmp_path, fsync="always", observe_fsync=seen.append)
        store.append({"kind": "submit", "job": "a"})
        store.append({"kind": "seal", "job": "a"})
        assert store.stats["fsyncs"] == 2
        assert len(seen) == 2 and all(dt >= 0 for dt in seen)


# ---------------------------------------------------------------------------
# the crash battery
# ---------------------------------------------------------------------------
class TestCrashBattery:
    """Kill at every instrumented point; reboot; hold the contract."""

    def _run_workload(self, journal_dir, point, at):
        sim, grid, dist = des_env(journal_dir)
        inj = FaultInjector(dist)
        inj.arm_crash(point, at=at)
        acked = []
        crashed = False
        try:
            for i in range(12):
                acked.append(dist.submit(JobRequest(name=f"w{i}", sim_duration=2.0)).id)
            dist.dispatch()
            sim.run()
        except SimulatedCrash as exc:
            assert exc.point == point
            crashed = True
        return acked, crashed

    @pytest.mark.parametrize("point", CRASH_POINTS)
    @pytest.mark.parametrize("at", [1, 3])
    def test_kill_and_reboot_at_every_point(self, tmp_path, point, at):
        acked, crashed = self._run_workload(tmp_path, point, at)
        assert crashed, f"{point} never fired at occurrence {at}"
        sim2, _, dist2, report = reboot(tmp_path)
        drain(sim2, dist2)
        assert_durability_contract(dist2, acked)
        # everything this workload acked should actually finish COMPLETED:
        # simulated jobs are relaunchable and the retry budget covers the
        # single synthetic node_lost a crash can cost each one.
        for job_id in acked:
            assert dist2.job(job_id).state is JobState.COMPLETED
        assert report.jobs_restored >= len(acked)

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_state_survives_a_second_reboot_unchanged(self, tmp_path, point):
        acked, crashed = self._run_workload(tmp_path, point, 2)
        assert crashed
        sim2, _, dist2, _ = reboot(tmp_path)
        drain(sim2, dist2)
        final = {j: dist2.job(j).state for j in acked}
        lineage = {j: [a.no for a in dist2.job(j).attempts] for j in acked}
        # third boot: all work is sealed; recovery must change nothing
        _, _, dist3, report3 = reboot(tmp_path)
        assert {j: dist3.job(j).state for j in acked} == final
        assert {j: [a.no for a in dist3.job(j).attempts] for j in acked} == lineage
        assert report3.terminal_restored == report3.jobs_restored

    def test_crash_during_recovery_replays_to_same_state(self, tmp_path):
        acked, crashed = self._run_workload(tmp_path, "attempt.post-journal", 3)
        assert crashed
        # second boot crashes *inside* recovery: retiring the lost attempts
        # journals them, and that append trips the armed point again.
        sim2 = Simulator()
        grid2 = Grid(ClusterSpec.small(segments=1, slaves=3, cores=2))
        crash = CrashPoints()
        crash.arm("attempt.post-journal", at=1)
        store2 = DurabilityStore(tmp_path, fsync="never", crashpoints=crash)
        with pytest.raises(SimulatedCrash):
            recover_distributor(
                store2, grid2, SimulatedBackend(sim2),
                now_fn=lambda: sim2.now, retry=RETRY,
            )
        # third boot is clean and still honours the contract
        sim3, _, dist3, _ = reboot(tmp_path)
        drain(sim3, dist3)
        assert_durability_contract(dist3, acked)

    def test_submit_pre_journal_crash_loses_only_the_unacked_job(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        FaultInjector(dist).arm_crash("submit.pre-journal", at=4)
        acked = []
        with pytest.raises(SimulatedCrash):
            for i in range(6):
                acked.append(dist.submit(JobRequest(name=f"s{i}", sim_duration=1.0)).id)
        assert len(acked) == 3  # fourth submit crashed before acking
        _, _, dist2, report = reboot(tmp_path)
        assert set(dist2.jobs) == set(acked)
        assert report.jobs_restored == 3


# ---------------------------------------------------------------------------
# recovery reconciliation paths
# ---------------------------------------------------------------------------
class TestRecoveryPaths:
    def _crash_mid_flight(self, journal_dir, n=6, duration=10.0):
        sim, grid, dist = des_env(journal_dir)
        acked = [
            dist.submit(JobRequest(name=f"m{i}", sim_duration=duration)).id
            for i in range(n)
        ]
        dist.dispatch()
        sim.run(until=1.0)  # jobs running, none finished
        running = [j for j in acked if dist.job(j).state is JobState.RUNNING]
        assert running
        return acked, running, grid

    def test_in_flight_on_dead_nodes_requeues_via_retry_path(self, tmp_path):
        acked, running, _ = self._crash_mid_flight(tmp_path)
        sim2, _, dist2, report = reboot(tmp_path)  # live_nodes=None: all dead
        assert report.requeued_in_flight == len(running)
        drain(sim2, dist2)
        for job_id in running:
            job = dist2.job(job_id)
            assert job.state is JobState.COMPLETED
            assert [a.outcome for a in job.attempts] == ["node_lost", "completed"]
            assert "crash" in job.attempts[0].error

    def test_in_flight_on_surviving_nodes_resumes_same_epoch(self, tmp_path):
        acked, running, grid = self._crash_mid_flight(tmp_path)
        live = [n.name for n in grid.up_compute_nodes()]
        sim2, _, dist2, report = reboot(tmp_path, live_nodes=live)
        assert report.resumed_in_flight == len(running)
        assert report.requeued_in_flight == 0
        drain(sim2, dist2)
        for job_id in running:
            job = dist2.job(job_id)
            assert job.state is JobState.COMPLETED
            # same attempt restarted: exactly one lineage entry, epoch 1
            assert [a.outcome for a in job.attempts] == ["completed"]
            assert job.attempt_epoch == 1

    def test_no_retry_budget_seals_failed_on_reboot(self, tmp_path):
        sim, grid, dist = des_env(
            tmp_path, retry=RetryPolicy(max_attempts=1, retry_on=("node_lost",))
        )
        job = dist.submit(JobRequest(name="one-shot", sim_duration=10.0))
        dist.dispatch()
        sim.run(until=1.0)
        sim2, _, dist2, report = reboot(
            tmp_path, retry=RetryPolicy(max_attempts=1, retry_on=("node_lost",))
        )
        assert report.sealed_no_budget == 1
        got = dist2.job(job.id)
        assert got.state is JobState.FAILED
        assert got.attempts[-1].outcome == "node_lost"

    def test_journaled_completion_seals_without_rerun(self, tmp_path):
        # crash exactly between the attempt record and the in-memory seal:
        # reboot must mark the job COMPLETED from the journal, not run it again.
        sim, grid, dist = des_env(tmp_path)
        inj = FaultInjector(dist)
        job = dist.submit(JobRequest(name="done-but-unsealed", sim_duration=1.0))
        inj.arm_crash("attempt.post-journal")
        with pytest.raises(SimulatedCrash):
            dist.dispatch()
            sim.run()
        _, _, dist2, report = reboot(tmp_path)
        assert report.sealed_completed == 1
        got = dist2.job(job.id)
        assert got.state is JobState.COMPLETED
        assert [a.outcome for a in got.attempts] == ["completed"]

    def test_queued_jobs_keep_submission_order(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        # 10 jobs on 6 cores: several must still be QUEUED when we "crash"
        acked = [
            dist.submit(JobRequest(name=f"q{i}", sim_duration=5.0)).id
            for i in range(10)
        ]
        dist.dispatch()
        queued = [j for j in acked if dist.job(j).state is JobState.QUEUED]
        assert queued
        sim2, _, dist2, report = reboot(tmp_path)
        assert report.requeued_queued >= len(queued)
        drain(sim2, dist2)
        # the never-started cohort (no crash-lost attempt, no backoff) must
        # drain in submission (seq) order
        starts = {}
        for job_id in acked:
            job = dist2.job(job_id)
            assert job.state is JobState.COMPLETED
            if job_id in queued:
                starts[job.seq] = job.attempts[-1].started_at
        seqs = sorted(starts)
        assert all(starts[a] <= starts[b] for a, b in zip(seqs, seqs[1:]))

    def test_unrecoverable_callable_sealed_failed_with_lineage(self, tmp_path):
        import threading

        store = DurabilityStore(tmp_path, fsync="never")
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        dist = JobDistributor(
            grid, CallableBackend(), journal=JobJournal(store), retry=RETRY
        )
        job = dist.submit(JobRequest(name="py", callable=lambda j: "ok"))
        dist.wait_all(timeout=10.0)
        assert job.state is JobState.COMPLETED
        gate = threading.Event()
        hung = dist.submit(
            JobRequest(name="never-finished", callable=lambda j: gate.wait(10))
        )
        # crash model: abandon the old process mid-run and boot from disk
        try:
            store2 = DurabilityStore(tmp_path, fsync="never")
            grid2 = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
            dist2, report = recover_distributor(
                store2, grid2, CallableBackend(), retry=RETRY
            )
        finally:
            gate.set()
        done = dist2.job(job.id)
        assert done.state is JobState.COMPLETED  # terminal lineage survives
        assert done.request.argv == ["<callable lost in restart>"]
        lost = dist2.job(hung.id)
        assert lost.state is JobState.FAILED
        assert "callable lost" in lost.error
        assert report.sealed_unrecoverable >= 1

    def test_new_submissions_never_collide_with_restored_ids(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        old = [dist.submit(JobRequest(name=f"o{i}", sim_duration=1.0)).id for i in range(4)]
        dist.dispatch()
        sim.run()
        sim2, _, dist2, _ = reboot(tmp_path)
        fresh = dist2.submit(JobRequest(name="new", sim_duration=1.0))
        assert fresh.id not in old
        drain(sim2, dist2)
        assert dist2.job(fresh.id).state is JobState.COMPLETED


# ---------------------------------------------------------------------------
# hypothesis: prefix replay == replay of prefix
# ---------------------------------------------------------------------------
def _lifecycle_records(draw):
    """A plausible multi-job journal: interleaved lifecycles, monotone epochs."""
    n_jobs = draw(st.integers(1, 5))
    scripts = []
    for j in range(n_jobs):
        n_attempts = draw(st.integers(0, 3))
        events = [("submit", j)]
        for a in range(1, n_attempts + 1):
            events.append(("start", j, a))
            outcome = draw(st.sampled_from(["completed", "failed", "timeout", "node_lost"]))
            events.append(("attempt", j, a, outcome))
            if outcome == "completed":
                events.append(("seal", j, "completed"))
                break
            if a < n_attempts:
                events.append(("requeue", j, a))
            else:
                events.append(("seal", j, "failed"))
        scripts.append(events)
    # deterministic interleave driven by draws
    records, cursors = [], [0] * n_jobs
    while any(c < len(s) for c, s in zip(cursors, scripts)):
        ready = [j for j in range(n_jobs) if cursors[j] < len(scripts[j])]
        j = ready[draw(st.integers(0, len(ready) - 1))]
        ev = scripts[j][cursors[j]]
        cursors[j] += 1
        kind = ev[0]
        if kind == "submit":
            records.append({"kind": "submit", "job": f"j{j}", "seq": j + 1, "t": 0.0,
                            "request": {"name": f"j{j}", "argv": ["true"]}})
        elif kind == "start":
            records.append({"kind": "start", "job": f"j{j}", "epoch": ev[2], "t": 1.0,
                            "placement": {"n0": 1}})
        elif kind == "attempt":
            records.append({"kind": "attempt", "job": f"j{j}",
                            "attempt": {"no": ev[2], "outcome": ev[3], "placement": {},
                                        "started_at": 1.0, "finished_at": 2.0,
                                        "error": None, "exit_code": 0, "backoff_s": 0.0}})
        elif kind == "requeue":
            records.append({"kind": "requeue", "job": f"j{j}", "not_before": 2.5,
                            "epoch": ev[2]})
        else:
            records.append({"kind": "seal", "job": f"j{j}", "state": ev[2], "t": 3.0,
                            "error": None, "exit_code": 0})
    return records


class TestPrefixReplayProperty:
    @given(data=st.data())
    @settings(max_examples=60)
    def test_byte_truncation_recovers_a_record_prefix_with_identical_fold(
        self, data, tmp_path
    ):
        records = _lifecycle_records(data.draw)
        blob = b""
        for i, rec in enumerate(records):
            rec["lsn"] = i + 1
            blob += encode_frame(rec)
        cut = data.draw(st.integers(0, len(blob)))
        stats = FrameStats()
        recovered = list(decode_frames(io.BytesIO(blob[:cut]), stats))
        # 1. byte truncation yields a clean *record* prefix (torn tail dropped)
        n = len(recovered)
        assert recovered == records[:n]
        if cut == len(blob):
            assert n == len(records) and not stats.torn
        # 2. folding the recovered prefix == folding the full log cut at n
        assert replay(None, recovered) == replay(None, records[:n])
        # 3. no effect duplication / epoch regression along the fold
        epochs: dict[str, int] = {}
        for k in range(n + 1):
            state = replay(None, records[:k])
            for job_id, wire in state.items():
                nos = [a["no"] for a in wire["attempts"]]
                assert nos == sorted(nos)
                assert len([a for a in wire["attempts"] if a["outcome"] == "completed"]) <= 1
                assert wire["attempt_epoch"] >= epochs.get(job_id, 0)
                epochs[job_id] = wire["attempt_epoch"]

    _case = itertools.count()

    @given(data=st.data())
    @settings(max_examples=30)
    def test_prefix_replay_matches_through_the_store(self, data, tmp_path):
        # hypothesis re-enters the test body with the same tmp_path; a
        # shared journal dir would leak segments between examples.
        tmp_path = tmp_path / f"case-{next(self._case)}"
        records = _lifecycle_records(data.draw)
        store = DurabilityStore(tmp_path, fsync="never")
        for rec in records:
            store.append(rec)
        store.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        blob = seg.read_bytes()
        cut = data.draw(st.integers(0, len(blob)))
        seg.write_bytes(blob[:cut])
        _, recovered, info = DurabilityStore(tmp_path, fsync="never").recover()
        n = len(recovered)
        assert recovered == records[:n]  # append stamped lsn into both
        assert replay(None, recovered) == replay(None, records[:n])


# ---------------------------------------------------------------------------
# injector / RPC / telemetry / CLI surfaces
# ---------------------------------------------------------------------------
class TestSurfaces:
    def test_arm_crash_requires_a_journal(self):
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        dist = JobDistributor(grid, CallableBackend())
        inj = FaultInjector(dist)
        with pytest.raises(ResourceError, match="journal"):
            inj.arm_crash("seal.post-journal")
        assert inj.crash_points() == CRASH_POINTS

    def test_arm_crash_rejects_unknown_points(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        with pytest.raises(Exception, match="crash point"):
            FaultInjector(dist).arm_crash("no.such.point")

    def test_checkpoint_requires_a_journal(self):
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        dist = JobDistributor(grid, CallableBackend())
        with pytest.raises(JobError, match="journal"):
            dist.checkpoint()
        assert dist.durability_stats() == {"enabled": False}
        assert dist.stats()["durability"] == {"enabled": False}

    def test_checkpoint_and_durability_over_the_bus(self, tmp_path):
        from repro.bus.core import MessageBus
        from repro.bus.rpc import RpcClient
        from repro.bus.service import ClusterBackendService

        sim, grid, dist = des_env(tmp_path)
        for i in range(3):
            dist.submit(JobRequest(name=f"b{i}", sim_duration=1.0))
        dist.dispatch()
        sim.run()
        bus = MessageBus()
        service = ClusterBackendService(bus, dist).start()
        try:
            client = RpcClient(bus, "cluster.backend")
            out = client.call("cluster.checkpoint", {})
            assert out["lsn"] >= 1
            stats = client.call("cluster.durability", {})
            assert stats["enabled"] and stats["records"] >= 9
        finally:
            service.stop()

    def test_durability_telemetry_exported(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        dist.submit(JobRequest(name="t", sim_duration=1.0))
        dist.dispatch()
        sim.run()
        dist.checkpoint()
        from repro.telemetry import render_prometheus

        text = render_prometheus(dist.telemetry.registry.snapshot())
        assert "repro_durability_journal_total" in text
        assert 'kind="records"' in text
        assert "repro_durability_snapshot_lsn" in text

    def test_recovery_telemetry_counts_boots(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        dist.submit(JobRequest(name="t", sim_duration=1.0))
        dist.dispatch()
        sim.run()
        _, _, dist2, report = reboot(tmp_path)
        from repro.telemetry import render_prometheus

        text = render_prometheus(dist2.telemetry.registry.snapshot())
        assert "repro_durability_recoveries_total 1" in text
        assert dist2.last_recovery is report
        assert dist2.durability_stats()["last_recovery"]["jobs_restored"] == 1

    def test_cli_inspects_a_journal(self, tmp_path, capsys):
        sim, grid, dist = des_env(tmp_path)
        for i in range(4):
            dist.submit(JobRequest(name=f"c{i}", sim_duration=1.0))
        dist.dispatch()
        sim.run()
        dist.journal.store.close()
        assert journal_cli([str(tmp_path), "--jobs"]) == 0
        out = capsys.readouterr().out
        assert "jobs restored   : 4" in out
        assert "needing recovery: 0" in out

    def test_cli_flags_corruption(self, tmp_path, capsys):
        store = DurabilityStore(tmp_path, fsync="never")
        store.append({"kind": "submit", "job": "j0"})
        store.close()
        seg = sorted(tmp_path.glob("wal-*.log"))[0]
        seg.write_bytes(seg.read_bytes()[:-1])
        (tmp_path / "wal-00009999.log").write_bytes(
            encode_frame({"lsn": 9999, "kind": "seal", "job": "j0"})
        )
        assert journal_cli([str(tmp_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_snapshot_file_is_valid_json_with_version(self, tmp_path):
        sim, grid, dist = des_env(tmp_path)
        dist.submit(JobRequest(name="s", sim_duration=1.0))
        dist.dispatch()
        sim.run()
        dist.checkpoint()
        payload = json.loads((tmp_path / "snapshot.json").read_text())
        assert payload["version"] == 1
        assert payload["lsn"] >= 1
        assert len(payload["state"]["jobs"]) == 1
