"""Unit tests for desim queuing resources."""

import pytest

from repro._errors import ResourceError
from repro.desim import Container, Resource, Store


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)

        def producer(sim, store):
            for i in range(5):
                yield store.put(i)

        got = []

        def consumer(sim, store):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks_until_get(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer(sim, store):
            yield store.put("a")
            yield store.put("b")  # blocks until consumer takes "a"
            times.append(sim.now)

        def consumer(sim, store):
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert times == [5.0]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim, store):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim, store):
            yield sim.timeout(3)
            yield store.put("x")

        sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert got == [(3.0, "x")]

    def test_try_get_nonblocking(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("y")
        sim.run()
        ok, item = store.try_get()
        assert ok and item == "y"

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ResourceError):
            Store(sim, capacity=0)

    def test_items_snapshot(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        sim.run()
        assert store.items == (0, 1, 2)
        assert len(store) == 3


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker(sim, res, i):
            yield res.request()
            active.append(i)
            peak.append(len(active))
            yield sim.timeout(10)
            active.remove(i)
            res.release()

        for i in range(5):
            sim.process(worker(sim, res, i))
        sim.run()
        assert max(peak) <= 2

    def test_fifo_no_starvation_of_wide_request(self, sim):
        res = Resource(sim, capacity=4)
        order = []

        def narrow(sim, res, i):
            yield res.request(1)
            order.append(f"narrow{i}")
            yield sim.timeout(5)
            res.release(1)

        def wide(sim, res):
            yield sim.timeout(1)  # arrives second
            yield res.request(4)
            order.append("wide")
            res.release(4)

        def late_narrow(sim, res):
            yield sim.timeout(2)  # arrives after wide
            yield res.request(1)
            order.append("late")
            res.release(1)

        for i in range(4):
            sim.process(narrow(sim, res, i))
        sim.process(wide(sim, res))
        sim.process(late_narrow(sim, res))
        sim.run()
        # FIFO head blocking: the wide request is served before the late narrow one.
        assert order.index("wide") < order.index("late")

    def test_over_release_rejected(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(ResourceError):
            res.release()

    def test_request_more_than_capacity_rejected(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(ResourceError):
            res.request(3)

    def test_accounting_properties(self, sim):
        res = Resource(sim, capacity=3)
        res.request(2)
        sim.run()
        assert res.in_use == 2 and res.available == 1 and res.queue_length == 0


class TestContainer:
    def test_put_get_levels(self, sim):
        tank = Container(sim, capacity=100, init=50)

        def refill(sim, tank):
            yield tank.put(30)

        def drain(sim, tank):
            yield tank.get(70)

        sim.process(refill(sim, tank))
        sim.process(drain(sim, tank))
        sim.run()
        assert tank.level == 10

    def test_get_blocks_until_enough(self, sim):
        tank = Container(sim, capacity=10, init=0)
        done = []

        def taker(sim, tank):
            yield tank.get(6)
            done.append(sim.now)

        def filler(sim, tank):
            for _ in range(3):
                yield sim.timeout(1)
                yield tank.put(2)

        sim.process(taker(sim, tank))
        sim.process(filler(sim, tank))
        sim.run()
        assert done == [3.0]

    def test_overflow_put_blocks(self, sim):
        tank = Container(sim, capacity=10, init=9)
        done = []

        def putter(sim, tank):
            yield tank.put(5)
            done.append(sim.now)

        def taker(sim, tank):
            yield sim.timeout(4)
            yield tank.get(5)

        sim.process(putter(sim, tank))
        sim.process(taker(sim, tank))
        sim.run()
        assert done == [4.0]

    def test_invalid_amounts_rejected(self, sim):
        tank = Container(sim, capacity=10)
        for bad in (0, -1, 11):
            with pytest.raises(ResourceError):
                tank.get(bad)
            with pytest.raises(ResourceError):
                tank.put(bad)

    def test_invalid_init_rejected(self, sim):
        with pytest.raises(ResourceError):
            Container(sim, capacity=5, init=6)
