"""The million-student load harness: workload model + DES replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen import DEFAULT_MIX, LoadHarness, SemesterWorkload, run_load
from repro.loadgen.model import EndpointProfile


class TestSemesterWorkload:
    def test_deterministic_per_seed(self):
        a = list(SemesterWorkload(100, seed=7, duration_s=50.0).arrivals())
        b = list(SemesterWorkload(100, seed=7, duration_s=50.0).arrivals())
        assert a == b
        c = list(SemesterWorkload(100, seed=8, duration_s=50.0).arrivals())
        assert a != c

    def test_arrivals_ordered_and_in_window(self):
        wl = SemesterWorkload(200, seed=3, duration_s=80.0)
        arrivals = list(wl.arrivals())
        assert arrivals, "expected some traffic"
        times = [a.t for a in arrivals]
        assert times == sorted(times)
        assert 0.0 < times[0] and times[-1] < 80.0
        names = {p.name for p in DEFAULT_MIX}
        for a in arrivals:
            assert 0 <= a.student < 200
            assert a.endpoint in names
            assert a.service_s >= 0.0

    def test_max_arrivals_caps_the_stream(self):
        wl = SemesterWorkload(1000, seed=1, duration_s=600.0, max_arrivals=50)
        assert len(list(wl.arrivals())) == 50

    def test_intensity_profile_peaks_at_deadlines(self):
        wl = SemesterWorkload(10, duration_s=100.0, spike_factor=4.0)
        assert wl.intensity(0.0) == 1.0
        assert wl.intensity(10.0) == 1.0  # quiet week
        assert wl.intensity(45.0) == pytest.approx(4.0)  # lab 1 due
        assert wl.intensity(90.0) == pytest.approx(4.0)  # lab 2 due
        # half-way up the ramp to deadline 1 (ramp spans t in [30, 45])
        assert 1.0 < wl.intensity(37.5) < 4.0

    def test_deadline_weeks_are_busier(self):
        wl = SemesterWorkload(500, seed=5, duration_s=200.0, spike_factor=6.0)
        quiet = crunch = 0
        for a in wl.arrivals():
            if 10.0 <= a.t < 50.0:
                quiet += 1
            elif 150.0 <= a.t < 190.0:  # ramp into the 90% deadline
                crunch += 1
        assert crunch > quiet * 1.5, (quiet, crunch)

    def test_engaged_students_poll_more(self):
        wl = SemesterWorkload(50, seed=11, duration_s=400.0,
                              base_rate_per_student=0.05)
        counts = np.zeros(50)
        for a in wl.arrivals():
            counts[a.student] += 1
        keen = wl._engagement > np.median(wl._engagement)
        assert counts[keen].mean() > counts[~keen].mean()

    def test_expected_arrivals_matches_the_stream(self):
        wl = SemesterWorkload(2000, seed=9, duration_s=300.0)
        n = sum(1 for _ in wl.arrivals())
        assert n == pytest.approx(wl.expected_arrivals(), rel=0.15)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SemesterWorkload(0)
        with pytest.raises(ValueError):
            SemesterWorkload(10, duration_s=0.0)
        with pytest.raises(ValueError):
            SemesterWorkload(10, base_rate_per_student=-1.0)

    def test_custom_mix(self):
        mix = (EndpointProfile("only", 1.0, 0.001),)
        wl = SemesterWorkload(20, seed=2, duration_s=60.0, mix=mix)
        assert {a.endpoint for a in wl.arrivals()} == {"only"}


class TestLoadHarness:
    def test_counters_are_conserved(self):
        report = run_load(2000, n_workers=4, duration_s=60.0, seed=4)
        assert report.arrivals > 0
        assert report.arrivals == report.admitted + report.shed
        # DES drains every completion event before run() returns
        assert report.completed == report.admitted
        assert report.throughput_rps > 0

    def test_latency_percentiles_are_ordered(self):
        report = run_load(2000, n_workers=2, duration_s=60.0, seed=4)
        assert 0.0 < report.latency_p50_s <= report.latency_p95_s
        assert report.latency_p95_s <= report.latency_p99_s

    def test_overload_sheds_503_within_bounds(self):
        report = run_load(
            5000, n_workers=1, duration_s=30.0, seed=6,
            base_rate_per_student=0.2,
            max_inflight=2, queue_limit=4, drain_rate_per_s=50.0,
        )
        assert report.rejected_503 > 0, "overload never tripped"
        assert report.max_retry_after_s > 0.0
        # the whole point: outstanding work is bounded by the admission
        # tier even when offered load is not
        assert report.peak_outstanding <= 1 * (2 + 4)
        assert report.completed == report.admitted

    def test_bucket_table_stays_bounded(self):
        report = run_load(
            5000, n_workers=2, duration_s=60.0, seed=8, max_users=100
        )
        assert report.tracked_users_peak <= 100
        assert sum(w["evicted_users"] for w in report.per_worker) > 0

    def test_hundred_thousand_students_replay(self):
        """The acceptance-scale run: 100k virtual students, flat memory."""
        report = run_load(
            100_000, n_workers=4, duration_s=30.0, seed=2012,
            max_arrivals=40_000,
        )
        assert report.n_students == 100_000
        assert report.arrivals == 40_000
        assert report.tracked_users_peak <= 100_000
        assert report.peak_outstanding <= 4 * (64 + 128)
        assert report.completed == report.admitted

    def test_deterministic_per_seed(self):
        a = run_load(3000, duration_s=40.0, seed=13).as_dict()
        b = run_load(3000, duration_s=40.0, seed=13).as_dict()
        assert a == b

    def test_sticky_routing_partitions_students(self):
        wl = SemesterWorkload(100, seed=1, duration_s=40.0)
        harness = LoadHarness(wl, n_workers=4)
        report = harness.run()
        assert report.admitted > 0
        per_worker_admitted = [w["admitted"] for w in report.per_worker]
        assert sum(per_worker_admitted) == report.admitted
        assert sum(1 for n in per_worker_admitted if n > 0) >= 2

    def test_as_dict_is_json_ready(self):
        import json

        report = run_load(500, duration_s=20.0, seed=3)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["arrivals"] == report.arrivals
        assert payload["shed"] == report.shed

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            LoadHarness(SemesterWorkload(10), n_workers=0)


class TestLoadgenCli:
    def test_cli_runs_and_writes_json(self, capsys, tmp_path):
        from repro.loadgen.__main__ import main

        out = tmp_path / "report.json"
        rc = main([
            "--students", "500", "--workers", "2", "--duration", "30",
            "--seed", "5", "--json", str(out),
        ])
        assert rc == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["n_students"] == 500
        assert payload["arrivals"] > 0
        assert "admitted" in capsys.readouterr().out

    def test_cli_table_output(self, capsys):
        from repro.loadgen.__main__ import main

        rc = main(["--students", "200", "--duration", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "students" in out and "admitted" in out
