"""Seeded substream determinism tests."""

import numpy as np

from repro.desim import SeedSequenceSplitter, substream


class TestSubstream:
    def test_same_name_same_draws(self):
        a = substream(42, "arrivals").random(10)
        b = substream(42, "arrivals").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        a = substream(42, "arrivals").random(10)
        b = substream(42, "service").random(10)
        assert not np.array_equal(a, b)

    def test_different_master_seed_changes_draws(self):
        a = substream(1, "x").random(5)
        b = substream(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_insensitive_to_creation_order(self):
        first = substream(7, "alpha").random(4)
        _ = substream(7, "beta").random(4)
        again = substream(7, "alpha").random(4)
        assert np.array_equal(first, again)


class TestSplitter:
    def test_stream_memoised(self):
        split = SeedSequenceSplitter(9)
        assert split.stream("a") is split.stream("a")

    def test_memoised_stream_continues_fresh_restarts(self):
        split = SeedSequenceSplitter(9)
        first = split.stream("a").random(3)
        continued = split.stream("a").random(3)
        assert not np.array_equal(first, continued)  # same generator advances
        restarted = split.fresh("a").random(3)
        assert np.array_equal(first, restarted)

    def test_spawn_int_stable(self):
        split = SeedSequenceSplitter(13)
        assert split.spawn_int("x") == SeedSequenceSplitter(13).spawn_int("x")
        assert split.spawn_int("x") != split.spawn_int("y")
