"""Races the scale-out tier leans on: ResponseCache generations and
SessionStore sharding/sweeping under concurrent access."""

from __future__ import annotations

import threading

import pytest

from repro.portal.respcache import CachedResponse, ResponseCache
from repro.portal.sessions import SessionStore


def _entry(body: bytes = b"x") -> CachedResponse:
    return CachedResponse(body, '"etag"', "application/json")


class TestResponseCacheGenerations:
    """Regression: a render that raced an invalidation must never land."""

    def test_store_dropped_when_invalidation_raced_the_render(self):
        cache = ResponseCache()
        entry, gen = cache.lookup_versioned("cluster", "status")
        assert entry is None
        # the mutation lands while the body is being rendered
        cache.invalidate("cluster")
        assert cache.store("cluster", "status", _entry(b"stale"), generation=gen) is False
        assert cache.stats()["stale_drops"] == 1
        # and the stale body is not visible under the new generation
        assert cache.lookup("cluster", "status") is None

    def test_store_lands_when_no_invalidation_raced(self):
        cache = ResponseCache()
        _, gen = cache.lookup_versioned("cluster", "status")
        assert cache.store("cluster", "status", _entry(b"fresh"), generation=gen)
        hit = cache.lookup("cluster", "status")
        assert hit is not None and hit.body == b"fresh"

    def test_legacy_store_without_generation_still_lands(self):
        cache = ResponseCache()
        cache.invalidate("ns")
        assert cache.store("ns", "k", _entry()) is True
        assert cache.lookup("ns", "k") is not None

    def test_conditional_get_drops_render_that_observed_pre_mutation_state(self):
        """The portal path: build() reads state, a writer mutates + invalidates
        mid-render — the response must be served but never cached."""
        from repro.portal.http import Request
        from repro.portal.respcache import conditional_get

        cache = ResponseCache()
        counters = {
            "cache_hits": _Counter(),
            "cache_misses": _Counter(),
            "not_modified": _Counter(),
        }
        state = {"v": 1}
        req = Request({"REQUEST_METHOD": "GET", "PATH_INFO": "/s", "QUERY_STRING": ""})

        def build():
            from repro.portal.http import Response

            body = {"v": state["v"]}  # read BEFORE the racing mutation
            state["v"] = 2
            cache.invalidate("cluster")  # the writer's hook fires mid-render
            return Response.json(body)

        resp = conditional_get(cache, counters, req, "cluster", "s", build)
        assert resp.status == 200 and b'"v": 1' in resp.body
        # the stale render must not have been cached: next probe re-renders
        assert cache.lookup("cluster", "s") is None
        assert cache.stats()["stale_drops"] == 1

    def test_concurrent_writers_never_publish_stale_bytes(self):
        """Hammer lookup/render/store against an invalidating writer.

        Invariant: whenever an entry is readable, its body was rendered
        from state at least as new as the generation it is stored under —
        i.e. a reader can never observe bytes older than the last
        invalidation it could have observed.
        """
        cache = ResponseCache()
        state = [0]
        stop = threading.Event()
        violations: list = []

        def writer():
            for _ in range(400):
                state[0] += 1
                cache.invalidate("ns")
            stop.set()

        def renderer():
            while not stop.is_set():
                entry, gen = cache.lookup_versioned("ns", "k")
                if entry is None:
                    body = state[0]  # render from current state
                    cache.store(
                        "ns", "k", _entry(str(body).encode()), generation=gen
                    )

        def reader():
            while not stop.is_set():
                floor = state[0]  # any entry seen next must not predate this...
                entry, gen2 = cache.lookup_versioned("ns", "k")
                _, gen3 = cache.lookup_versioned("ns", "__probe__")
                if entry is not None and gen3 == gen2:
                    # ...unless an invalidation slipped in between reads;
                    # same-generation probe proves none did after the hit
                    seen = int(entry.body)
                    if seen < floor - 1:
                        violations.append((seen, floor))

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=renderer),
            threading.Thread(target=renderer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not violations, violations[:5]
        assert cache.stats()["invalidations"] == 400


class _Counter:
    def __init__(self):
        self.n = 0

    def inc(self, amount: int = 1):
        self.n += amount


class TestSessionStoreConcurrency:
    def test_concurrent_creates_lose_nothing(self):
        store = SessionStore()
        tokens: list = []
        lock = threading.Lock()

        def create_many(i):
            mine = [store.create({"u": f"{i}-{j}"}) for j in range(50)]
            with lock:
                tokens.extend(mine)

        threads = [threading.Thread(target=create_many, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert len(store) == 400
        assert len({t.split(".")[0] for t in tokens}) == 400
        for token in tokens:
            assert store.get(token)  # every token still resolves

    def test_concurrent_gets_refresh_without_losing_sessions(self):
        store = SessionStore()
        tokens = [store.create({"i": i}) for i in range(32)]
        errors: list = []

        def hammer():
            try:
                for _ in range(100):
                    for token in tokens:
                        store.get(token)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        assert len(store) == 32

    def test_concurrent_sweeps_never_double_count(self):
        clock = {"t": 0.0}
        store = SessionStore(ttl_s=10.0, now_fn=lambda: clock["t"])
        for i in range(200):
            store.create({"i": i})
        clock["t"] = 11.0  # everything expired
        removed: list = []
        barrier = threading.Barrier(8)

        def sweep():
            barrier.wait()
            removed.append(store.sweep())

        threads = [threading.Thread(target=sweep) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert sum(removed) == 200, removed
        assert store.swept_total == 200
        assert len(store) == 0

    def test_maybe_sweep_fires_once_per_pacing_window(self):
        clock = {"t": 0.0}
        store = SessionStore(
            ttl_s=1.0, now_fn=lambda: clock["t"],
            sweep_every=100, sweep_interval_s=1e9,
        )
        for i in range(40):
            store.create({"i": i})
        clock["t"] = 2.0
        removed: list = []
        barrier = threading.Barrier(10)

        def call_many():
            barrier.wait()
            removed.append(sum(store.maybe_sweep() for _ in range(10)))

        threads = [threading.Thread(target=call_many) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        # exactly one of the 100 paced calls was due: 40 dead sessions
        # reclaimed once, not 10 times
        assert sum(removed) == 40
        assert store.swept_total == 40

    def test_concurrent_destroys_remove_exactly_once(self):
        store = SessionStore()
        fired: list = []
        store.on_destroy = fired.append
        token = store.create({"u": "x"})
        results: list = []
        barrier = threading.Barrier(8)

        def destroy():
            barrier.wait()
            results.append(store.destroy(token))

        threads = [threading.Thread(target=destroy) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert results.count(True) == 1, results
        assert len(fired) == 1  # replication hook fires exactly once
        assert len(store) == 0

    def test_sweep_races_concurrent_refreshes_without_killing_live_sessions(self):
        clock = {"t": 0.0}
        lock = threading.Lock()

        def now():
            with lock:
                return clock["t"]

        def advance(dt):
            with lock:
                clock["t"] += dt

        store = SessionStore(ttl_s=5.0, now_fn=now)
        live = store.create({"u": "live"})
        dead = store.create({"u": "dead"})
        stop = threading.Event()
        errors: list = []
        refreshes = [0]

        def refresher():
            # keeps the live session's sliding expiry ahead of the clock
            while not stop.is_set():
                try:
                    store.get(live)
                    refreshes[0] += 1
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        t = threading.Thread(target=refresher)
        t.start()
        try:
            for _ in range(40):
                advance(0.5)
                # wait for at least one refresh after the clock moved, so
                # the race being tested is sweep-vs-refresh, not starvation
                seen = refreshes[0]
                while refreshes[0] == seen and not errors:
                    pass
                store.sweep()
        finally:
            stop.set()
            t.join(10.0)
        assert not errors, "a refreshed session was swept mid-get"
        assert store.get(live)["u"] == "live"
        with pytest.raises(Exception, match="session"):
            store.get(dead)  # the idle one aged out
        assert store.swept_total >= 1
