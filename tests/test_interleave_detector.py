"""Lockset and happens-before race detector behaviour."""

from repro.interleave import (
    Join,
    LockAnnounce,
    Nop,
    Scheduler,
    SharedVar,
    VMutex,
    VSemaphore,
)
from repro.interleave.detector import (
    HappensBeforeDetector,
    LocksetDetector,
    RaceReport,
    VectorClock,
)


def run_threads(*bodies, seed=0, detect=True):
    sched = Scheduler(seed=seed, detect_races=detect)
    for i, b in enumerate(bodies):
        sched.spawn(b, name=f"t{i}")
    return sched.run()


class TestRaceDetection:
    def test_unprotected_shared_write_reported(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3)
        assert any("v" in r.var_name for r in run.races)

    def test_consistent_lock_suppresses_report(self):
        var = SharedVar("v", 0)
        lock = VMutex("m")

        def writer(var, lock):
            for _ in range(5):
                yield lock.acquire()
                x = yield var.read()
                yield var.write(x + 1)
                yield lock.release()

        run = run_threads(writer(var, lock), writer(var, lock), seed=3)
        assert run.races == []

    def test_single_thread_never_races(self):
        var = SharedVar("v", 0)

        def solo(var):
            for _ in range(10):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(solo(var), seed=0)
        assert run.races == []

    def test_read_only_sharing_not_reported(self):
        var = SharedVar("v", 42)

        def reader(var):
            total = 0
            for _ in range(5):
                total += yield var.read()
            return total

        run = run_threads(reader(var), reader(var), seed=1)
        assert run.races == []
        assert set(run.returns.values()) == {210}

    def test_atomic_rmw_not_reported(self):
        var = SharedVar("v", 0)

        def adder(var):
            for _ in range(10):
                yield var.fetch_add(1)

        run = run_threads(adder(var), adder(var), seed=2)
        assert run.races == []
        assert var.value == 20  # fetch_add is atomic: no lost updates

    def test_sync_flagged_var_exempt(self):
        flag = SharedVar("flag", False, sync=True)

        def toggler(flag):
            for _ in range(5):
                v = yield flag.read()
                yield flag.write(not v)

        run = run_threads(toggler(flag), toggler(flag), seed=4)
        assert run.races == []

    def test_lock_announce_counts_as_lock(self):
        var = SharedVar("v", 0)

        class FakeLock:
            name = "homegrown"

        lk = FakeLock()

        def writer(var):
            for _ in range(5):
                yield LockAnnounce(lk, True)
                x = yield var.read()
                yield var.write(x + 1)
                yield LockAnnounce(lk, False)

        run = run_threads(writer(var), writer(var), seed=3)
        assert run.races == []

    def test_each_var_reported_once(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(20):
                x = yield var.read()
                yield Nop()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=5)
        assert len([r for r in run.races if r.var_name == "v"]) <= 1

    def test_report_lists_both_threads(self):
        var = SharedVar("shared", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3)
        assert run.races, "expected a race report"
        assert set(run.races[0].threads) == {"t0", "t1"}
        assert "shared" in str(run.races[0])

    def test_detection_can_be_disabled(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3, detect=False)
        assert run.races == []


def run_hb(*bodies, seed=0):
    sched = Scheduler(seed=seed, detect_races=True, happens_before=True)
    for i, b in enumerate(bodies):
        sched.spawn(b, name=f"t{i}")
    return sched.run()


class TestHappensBeforeDetector:
    def test_unordered_lost_update_reported(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield Nop()
                yield var.write(x + 1)

        run = run_hb(writer(var), writer(var), seed=3)
        assert any(r.var_name == "v" for r in run.races)

    def test_mutex_ordering_suppresses_report(self):
        var = SharedVar("v", 0)
        lock = VMutex("m")

        def writer(var, lock):
            for _ in range(5):
                yield lock.acquire()
                x = yield var.read()
                yield var.write(x + 1)
                yield lock.release()

        run = run_hb(writer(var, lock), writer(var, lock), seed=3)
        assert run.races == []

    def test_join_ordering_suppresses_report(self):
        """Write → join → write is ordered; lockset would cry wolf here."""
        var = SharedVar("v", 0)

        def phase(var, delta, steps):
            for _ in range(steps):
                x = yield var.read()
                yield var.write(x + delta)

        def main(sched, var):
            w = sched.spawn(phase(var, -1, 5), name="withdraw")
            yield Join(w)
            d = sched.spawn(phase(var, +1, 5), name="deposit")
            yield Join(d)

        sched = Scheduler(seed=7, detect_races=True, happens_before=True)
        sched.spawn(main(sched, var), name="main")
        run = sched.run()
        assert run.completed
        assert run.races == []

    def test_lockset_keeps_its_predictive_report_under_join_free_overlap(self):
        """The same join-ordered program through the lockset detector.

        PR 5's ordered-after exemption means the *fixed* fork/join
        pattern is clean under both detectors; this pins that contract.
        """
        var = SharedVar("v", 0)

        def phase(var, delta, steps):
            for _ in range(steps):
                x = yield var.read()
                yield var.write(x + delta)

        def main(sched, var):
            w = sched.spawn(phase(var, -1, 5), name="withdraw")
            yield Join(w)
            d = sched.spawn(phase(var, +1, 5), name="deposit")
            yield Join(d)

        sched = Scheduler(seed=7, detect_races=True, happens_before=False)
        sched.spawn(main(sched, var), name="main")
        run = sched.run()
        assert run.races == []

    def test_semaphore_handoff_suppresses_report(self):
        var = SharedVar("cell", 0)
        ready = VSemaphore("ready", 0)

        def producer(var, ready):
            yield var.write(41)
            yield ready.v()

        def consumer(var, ready):
            yield ready.p()
            x = yield var.read()
            yield var.write(x + 1)

        run = run_hb(producer(var, ready), consumer(var, ready), seed=2)
        assert run.races == []
        assert var.value == 42

    def test_semaphore_free_producer_consumer_reported(self):
        var = SharedVar("cell", 0)

        def producer(var):
            yield var.write(41)

        def consumer(var):
            x = yield var.read()
            yield var.write(x + 1)

        races = set()
        for seed in range(8):
            v = SharedVar("cell", 0)
            run = run_hb(producer(v), consumer(v), seed=seed)
            races.update(r.var_name for r in run.races)
        assert "cell" in races

    def test_sync_var_handoff_orders_accesses(self):
        """A homegrown flag (sync=True) publishes like a TAS lock."""
        data = SharedVar("data", 0)
        flag = SharedVar("flag", 0, sync=True)

        def producer(data, flag):
            yield data.write(99)
            yield flag.write(1)

        def consumer(data, flag):
            while True:
                f = yield flag.read()
                if f:
                    break
            yield data.read()

        run = run_hb(producer(data, flag), consumer(data, flag), seed=5)
        assert run.races == []

    def test_reports_sorted_deterministically(self):
        a = SharedVar("alpha", 0)
        b = SharedVar("beta", 0)

        def writer(x, y):
            for _ in range(3):
                vy = yield y.read()
                yield y.write(vy + 1)
                vx = yield x.read()
                yield x.write(vx + 1)

        run = run_hb(writer(a, b), writer(a, b), seed=9)
        assert [r.var_name for r in run.races] == sorted(r.var_name for r in run.races)
        assert run.races == sorted(run.races, key=lambda r: r.sort_key)


class TestVectorClock:
    def test_merge_is_elementwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({2: 5, 3: 2})
        a.merge(b)
        assert a.clocks == {1: 3, 2: 5, 3: 2}

    def test_covers_epoch(self):
        vc = VectorClock({1: 4})
        assert vc.covers(1, 4)
        assert not vc.covers(1, 5)
        assert not vc.covers(9, 1)

    def test_tick_advances_own_component(self):
        vc = VectorClock()
        vc.tick(7)
        vc.tick(7)
        assert vc.get(7) == 2

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1 and b.get(1) == 2


class TestDetectorSelection:
    def test_happens_before_flag_picks_fasttrack(self):
        sched = Scheduler(seed=0, detect_races=True, happens_before=True)
        assert isinstance(sched._detector, HappensBeforeDetector)

    def test_default_is_lockset(self):
        sched = Scheduler(seed=0, detect_races=True)
        assert isinstance(sched._detector, LocksetDetector)

    def test_explicit_detector_wins(self):
        mine = LocksetDetector()
        sched = Scheduler(seed=0, detect_races=True, happens_before=True, detector=mine)
        assert sched._detector is mine

    def test_race_report_sort_key_shape(self):
        r = RaceReport("v", ("a", "b"), "a")
        assert r.sort_key == ("v", ("a", "b"), "a")
