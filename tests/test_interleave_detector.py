"""Lockset race detector behaviour."""

from repro.interleave import (
    LockAnnounce,
    Nop,
    Scheduler,
    SharedVar,
    VMutex,
)


def run_threads(*bodies, seed=0, detect=True):
    sched = Scheduler(seed=seed, detect_races=detect)
    for i, b in enumerate(bodies):
        sched.spawn(b, name=f"t{i}")
    return sched.run()


class TestRaceDetection:
    def test_unprotected_shared_write_reported(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3)
        assert any("v" in r.var_name for r in run.races)

    def test_consistent_lock_suppresses_report(self):
        var = SharedVar("v", 0)
        lock = VMutex("m")

        def writer(var, lock):
            for _ in range(5):
                yield lock.acquire()
                x = yield var.read()
                yield var.write(x + 1)
                yield lock.release()

        run = run_threads(writer(var, lock), writer(var, lock), seed=3)
        assert run.races == []

    def test_single_thread_never_races(self):
        var = SharedVar("v", 0)

        def solo(var):
            for _ in range(10):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(solo(var), seed=0)
        assert run.races == []

    def test_read_only_sharing_not_reported(self):
        var = SharedVar("v", 42)

        def reader(var):
            total = 0
            for _ in range(5):
                total += yield var.read()
            return total

        run = run_threads(reader(var), reader(var), seed=1)
        assert run.races == []
        assert set(run.returns.values()) == {210}

    def test_atomic_rmw_not_reported(self):
        var = SharedVar("v", 0)

        def adder(var):
            for _ in range(10):
                yield var.fetch_add(1)

        run = run_threads(adder(var), adder(var), seed=2)
        assert run.races == []
        assert var.value == 20  # fetch_add is atomic: no lost updates

    def test_sync_flagged_var_exempt(self):
        flag = SharedVar("flag", False, sync=True)

        def toggler(flag):
            for _ in range(5):
                v = yield flag.read()
                yield flag.write(not v)

        run = run_threads(toggler(flag), toggler(flag), seed=4)
        assert run.races == []

    def test_lock_announce_counts_as_lock(self):
        var = SharedVar("v", 0)

        class FakeLock:
            name = "homegrown"

        lk = FakeLock()

        def writer(var):
            for _ in range(5):
                yield LockAnnounce(lk, True)
                x = yield var.read()
                yield var.write(x + 1)
                yield LockAnnounce(lk, False)

        run = run_threads(writer(var), writer(var), seed=3)
        assert run.races == []

    def test_each_var_reported_once(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(20):
                x = yield var.read()
                yield Nop()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=5)
        assert len([r for r in run.races if r.var_name == "v"]) <= 1

    def test_report_lists_both_threads(self):
        var = SharedVar("shared", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3)
        assert run.races, "expected a race report"
        assert set(run.races[0].threads) == {"t0", "t1"}
        assert "shared" in str(run.races[0])

    def test_detection_can_be_disabled(self):
        var = SharedVar("v", 0)

        def writer(var):
            for _ in range(5):
                x = yield var.read()
                yield var.write(x + 1)

        run = run_threads(writer(var), writer(var), seed=3, detect=False)
        assert run.races == []
