"""Workload generator, instructor reports, and the portal CLI."""

import numpy as np
import pytest

from repro.cluster import (
    BackfillScheduler,
    ClusterSpec,
    Grid,
    JobDistributor,
    SimulatedBackend,
    WorkloadSpec,
    generate_requests,
    run_workload,
)
from repro.desim import Simulator
from repro.education import SemesterSimulation, gradebook_csv, instructor_report
from repro.portal.__main__ import build_parser


class TestWorkloadSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_rate_per_s=0)
        with pytest.raises(ValueError):
            WorkloadSpec(parallel_fraction=1.5)

    def test_offered_load_scales_with_rate(self):
        low = WorkloadSpec(arrival_rate_per_s=1.0).offered_load_core_s_per_s
        high = WorkloadSpec(arrival_rate_per_s=4.0).offered_load_core_s_per_s
        assert high == pytest.approx(low * 4)

    def test_generate_is_deterministic(self):
        a = generate_requests(WorkloadSpec(n_jobs=20), seed=5)
        b = generate_requests(WorkloadSpec(n_jobs=20), seed=5)
        assert [(t, r.name, r.n_tasks, r.sim_duration) for t, r in a] == [
            (t, r.name, r.n_tasks, r.sim_duration) for t, r in b
        ]

    def test_arrivals_sorted_and_positive(self):
        reqs = generate_requests(WorkloadSpec(n_jobs=50), seed=1)
        times = [t for t, _ in reqs]
        assert times == sorted(times) and times[0] > 0

    def test_parallel_fraction_respected(self):
        reqs = generate_requests(WorkloadSpec(n_jobs=400, parallel_fraction=0.5), seed=2)
        frac = np.mean([r.n_tasks > 1 for _, r in reqs])
        assert frac == pytest.approx(0.5, abs=0.08)

    def test_estimates_never_undershoot(self):
        reqs = generate_requests(WorkloadSpec(n_jobs=100), seed=3)
        assert all(r.est_runtime_s >= r.sim_duration for _, r in reqs)


class TestRunWorkload:
    def test_everything_completes(self):
        sim = Simulator()
        dist = JobDistributor(
            Grid(ClusterSpec.uhd_default()), SimulatedBackend(sim),
            BackfillScheduler(), now_fn=lambda: sim.now,
        )
        spec = WorkloadSpec(n_jobs=80, arrival_rate_per_s=4.0)
        summary = run_workload(dist, sim, spec, seed=4)
        assert summary["by_state"] == {"completed": 80}
        assert summary["makespan_s"] > 0

    def test_arrivals_spread_over_time(self):
        """Jobs must arrive at their Poisson instants, not all at t=0."""
        sim = Simulator()
        dist = JobDistributor(
            Grid(ClusterSpec.uhd_default()), SimulatedBackend(sim), now_fn=lambda: sim.now
        )
        run_workload(dist, sim, WorkloadSpec(n_jobs=40, arrival_rate_per_s=1.0), seed=5)
        submits = [j.submitted_at for j in dist.jobs.values()]
        assert max(submits) - min(submits) > 10.0

    def test_higher_load_longer_waits(self):
        def mean_wait(rate):
            sim = Simulator()
            dist = JobDistributor(
                Grid(ClusterSpec.small(segments=1, slaves=2, cores=2)),
                SimulatedBackend(sim), now_fn=lambda: sim.now,
            )
            spec = WorkloadSpec(n_jobs=100, arrival_rate_per_s=rate, parallel_fraction=0.0)
            return run_workload(dist, sim, spec, seed=6)["mean_wait_s"]

        assert mean_wait(5.0) > mean_wait(0.2)


class TestInstructorReports:
    @pytest.fixture(scope="class")
    def report(self):
        return SemesterSimulation().run()

    def test_gradebook_csv_structure(self, report):
        text = gradebook_csv(report.cohort)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 19
        header = lines[0].split(",")
        assert header[0] == "student_id"
        assert "lab3" in header and "final" in header and "passed_course" in header
        # every row parses as CSV with the same arity
        assert all(len(l.split(",")) == len(header) for l in lines[1:])

    def test_gradebook_outcomes_match_flags(self, report):
        text = gradebook_csv(report.cohort)
        yes = sum(1 for l in text.splitlines()[1:] if l.endswith(",yes"))
        assert yes == sum(s.passed_course for s in report.cohort)

    def test_instructor_report_contents(self, report):
        text = instructor_report(report)
        assert "Table 1" in text and "Table 2" in text and "Table 3" in text
        assert "hardest assignment" in text
        assert "UMA and NUMA" in text  # lab 3 is the hardest by construction


class TestPortalCli:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.port == 8080 and args.host == "127.0.0.1"
        assert args.root is None and not args.small

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["--host", "0.0.0.0", "--port", "9000", "--root", "/tmp/x",
             "--admin-password", "pw", "--quota-mb", "64", "--small"]
        )
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.quota_mb == 64 and args.small

    def test_cli_serves_real_requests(self, tmp_path):
        """Boot via the CLI plumbing (not serve()) and hit it over TCP."""
        from repro.cluster.spec import ClusterSpec
        from repro.portal import PortalClient, make_default_app
        from repro.portal.server import start_background

        app = make_default_app(str(tmp_path / "h"), cluster_spec=ClusterSpec.small(),
                               admin_password="cli-pass", quota_bytes=1024 * 1024)
        httpd, url = start_background(app)
        try:
            client = PortalClient(base_url=url)
            client.login("admin", "cli-pass")
            assert client.quota()["quota_bytes"] == 1024 * 1024
        finally:
            httpd.shutdown()
