"""Portal JSON API driven through the client (in-process WSGI)."""

import pytest

from repro._errors import PortalError
from repro.portal import PortalClient


class TestAuthEndpoints:
    def test_login_logout_whoami(self, portal_app):
        c = PortalClient(app=portal_app)
        c.login("admin", "admin-pass")
        assert c.whoami()["role"] == "admin"
        c.logout()
        with pytest.raises(PortalError):
            c.whoami()

    def test_bad_credentials_401(self, portal_app):
        c = PortalClient(app=portal_app)
        with pytest.raises(PortalError, match="401"):
            c.login("admin", "wrong")

    def test_unauthenticated_requests_rejected(self, portal_app):
        c = PortalClient(app=portal_app)
        for call in (c.list_files, c.jobs, c.cluster_status):
            with pytest.raises(PortalError, match="401"):
                call()

    def test_student_cannot_create_users(self, student_client):
        with pytest.raises(PortalError, match="403"):
            student_client.create_user("eve", "password1")

    def test_admin_creates_roles(self, admin_client, portal_app):
        admin_client.create_user("prof", "teach-pass", role="instructor")
        prof = PortalClient(app=portal_app)
        assert prof.login("prof", "teach-pass")["role"] == "instructor"

    def test_duplicate_user_rejected(self, admin_client):
        admin_client.create_user("dup", "password1")
        with pytest.raises(PortalError):
            admin_client.create_user("dup", "password1")


class TestFileEndpoints:
    def test_write_list_read(self, student_client):
        student_client.write_file("hello.txt", "content here")
        files = student_client.list_files()
        assert [f["name"] for f in files] == ["hello.txt"]
        assert student_client.read_file("hello.txt") == "content here"

    def test_download_binary(self, student_client):
        payload = bytes(range(256))
        student_client.write_file("blob.bin", payload)
        assert student_client.download_file("blob.bin") == payload

    def test_multipart_upload_multiple_files(self, student_client):
        result = student_client.upload({"a.c": b"int main(void){return 0;}", "b.txt": b"notes"})
        assert {s["name"] for s in result["saved"]} == {"a.c", "b.txt"}
        assert student_client.read_file("b.txt") == "notes"

    def test_mkdir_copy_move_rename_delete(self, student_client):
        c = student_client
        c.write_file("f.txt", "x")
        c.mkdir("d")
        c.copy("f.txt", "d/f2.txt")
        c.move("d/f2.txt", "g.txt")
        assert c.rename("g.txt", "h.txt") == "h.txt"
        c.delete("h.txt")
        names = {f["name"] for f in c.list_files()}
        assert names == {"f.txt", "d"}

    def test_traversal_rejected_via_api(self, student_client):
        with pytest.raises(PortalError):
            student_client.read_file("../admin/anything")

    def test_missing_path_param(self, student_client):
        with pytest.raises(PortalError, match="400"):
            student_client.write_file("", "x")


class TestCompileAndJobs:
    C_OK = '#include <stdio.h>\nint main(void){ printf("ran on cluster\\n"); return 0; }\n'
    C_BAD = "int main(void){ syntax error here\n"

    def test_compile_success_report(self, student_client):
        student_client.write_file("ok.c", self.C_OK)
        report = student_client.compile("ok.c")
        assert report["ok"] and report["language"] == "c"

    def test_compile_failure_is_400_with_diagnostics(self, student_client):
        student_client.write_file("bad.c", self.C_BAD)
        with pytest.raises(PortalError) as e:
            student_client.compile("bad.c")
        assert "400" in str(e.value)

    def test_submit_run_and_poll_output(self, student_client):
        student_client.write_file("run.c", self.C_OK)
        resp = student_client.submit_job("run.c")
        job_id = resp["job"]["id"]
        desc = student_client.wait_for_job(job_id, timeout=60)
        assert desc["state"] == "completed" and desc["exit_code"] == 0
        out = student_client.job_output(job_id)
        assert out["stdout"] == ["ran on cluster"]
        # incremental polling: nothing new after the end
        again = student_client.job_output(job_id, since=out["next"])
        assert again["stdout"] == []

    def test_job_listing_scoped_to_owner(self, portal_app, admin_client, student_client):
        student_client.write_file("mine.c", self.C_OK)
        student_client.submit_job("mine.c")
        admin_client.create_user("other", "password1")
        other = PortalClient(app=portal_app)
        other.login("other", "password1")
        assert other.jobs() == []
        assert len(student_client.jobs()) == 1
        # admin sees everything
        assert len(admin_client.jobs()) == 1

    def test_foreign_job_access_forbidden(self, portal_app, admin_client, student_client):
        student_client.write_file("mine.c", self.C_OK)
        job_id = student_client.submit_job("mine.c")["job"]["id"]
        admin_client.create_user("intruder", "password1")
        intruder = PortalClient(app=portal_app)
        intruder.login("intruder", "password1")
        with pytest.raises(PortalError, match="403"):
            intruder.job(job_id)

    def test_instructor_sees_student_jobs(self, portal_app, admin_client, student_client):
        student_client.write_file("mine.c", self.C_OK)
        job_id = student_client.submit_job("mine.c")["job"]["id"]
        admin_client.create_user("prof2", "teach-pass", role="instructor")
        prof = PortalClient(app=portal_app)
        prof.login("prof2", "teach-pass")
        assert prof.job(job_id)["id"] == job_id

    def test_interactive_job_stdin_roundtrip(self, student_client):
        src = (
            "#include <stdio.h>\n"
            "int main(void){ char b[64]; if (fgets(b, 64, stdin)) printf(\"echo: %s\", b); return 0; }\n"
        )
        student_client.write_file("inter.c", src)
        resp = student_client.submit_job("inter.c", stdin="typed input\n")
        desc = student_client.wait_for_job(resp["job"]["id"], timeout=60)
        out = student_client.job_output(resp["job"]["id"])
        assert out["stdout"] == ["echo: typed input"]

    def test_cancel_endpoint(self, student_client):
        student_client.write_file(
            "slow.c",
            "#include <unistd.h>\nint main(void){ sleep(30); return 0; }\n",
        )
        resp = student_client.submit_job("slow.c", timeout_s=60)
        job_id = resp["job"]["id"]
        assert student_client.cancel_job(job_id)

    def test_unknown_job_404(self, student_client):
        with pytest.raises(PortalError, match="404"):
            student_client.job("job-000000")

    def test_cluster_status(self, student_client):
        status = student_client.cluster_status()
        assert status["grid"]["cores_total"] == 8
        assert status["policy"] == "fifo"


class TestHtmlPages:
    def _get(self, app, path, cookie=""):
        import io

        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": path,
            "QUERY_STRING": "",
            "CONTENT_LENGTH": "0",
            "wsgi.input": io.BytesIO(b""),
        }
        if cookie:
            environ["HTTP_COOKIE"] = cookie
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(app(environ, start_response))
        return captured, body

    def test_root_redirects_anonymous_to_login(self, portal_app):
        cap, _ = self._get(portal_app, "/")
        assert cap["status"].startswith("302")
        assert cap["headers"]["Location"] == "/login"

    def test_login_page_renders(self, portal_app):
        cap, body = self._get(portal_app, "/login")
        assert cap["status"].startswith("200")
        assert b"<form" in body and b"password" in body

    def test_dashboard_renders_for_session(self, portal_app):
        # Log in through the API to mint a session token, reuse as cookie.
        c = PortalClient(app=portal_app)
        token = c.login("admin", "admin-pass")["token"]
        cap, body = self._get(portal_app, "/", cookie=f"portal_session={token}")
        assert cap["status"].startswith("200")
        assert b"admin" in body and b"Cluster" in body

    def test_unknown_route_404_json(self, portal_app):
        cap, body = self._get(portal_app, "/totally/unknown")
        assert cap["status"].startswith("404")


class TestLiveApiInput:
    def test_send_input_endpoint_mid_run(self, student_client):
        """The /input endpoint feeds a *running* interactive job."""
        import time

        src = (
            "#include <stdio.h>\n"
            "int main(void){ char b[64];\n"
            '  printf("ready\\n"); fflush(stdout);\n'
            '  if (fgets(b, 64, stdin)) printf("api gave: %s", b);\n'
            "  return 0; }\n"
        )
        student_client.write_file("api_input.c", src)
        resp = student_client.submit_job("api_input.c", kind="interactive", timeout_s=30)
        job_id = resp["job"]["id"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            out = student_client.job_output(job_id)
            if "ready" in out["stdout"]:
                break
            time.sleep(0.05)
        student_client.send_input(job_id, "from-the-api\n")
        desc = student_client.wait_for_job(job_id, timeout=30)
        out = student_client.job_output(job_id)
        assert desc["state"] == "completed"
        assert "api gave: from-the-api" in out["stdout"]

    def test_input_to_finished_job_rejected(self, student_client):
        student_client.write_file(
            "done.c", "#include <stdio.h>\nint main(void){ return 0; }\n"
        )
        resp = student_client.submit_job("done.c")
        job_id = resp["job"]["id"]
        student_client.wait_for_job(job_id, timeout=30)
        with pytest.raises(PortalError):
            student_client.send_input(job_id, "too late\n")
