"""Cohort model, grading, exams, surveys, semester pipeline."""

import numpy as np
import pytest

from repro._errors import GradingError
from repro.education import (
    COURSE_PLAN,
    Cohort,
    ExamModel,
    LabGrader,
    SemesterSimulation,
    SurveyModel,
    format_comparison_table,
    passing_rate,
)
from repro.education.exams import PAPER_EXAM_RATES
from repro.education.grading import PAPER_LAB_RATES
from repro.education.semester import DEFAULT_SEED
from repro.education.students import difficulty_for_rate, substream
from repro.education.survey import PAPER_SURVEY_MEANS, SURVEY_QUESTIONS


class TestStudents:
    def test_cohort_size_and_determinism(self):
        a = Cohort.generate(19, 7)
        b = Cohort.generate(19, 7)
        assert len(a) == 19
        assert [s.ability for s in a] == [s.ability for s in b]

    def test_different_seeds_differ(self):
        a = Cohort.generate(19, 1)
        b = Cohort.generate(19, 2)
        assert [s.ability for s in a] != [s.ability for s in b]

    def test_skill_standardised(self):
        """skill has ~zero mean and ~unit variance by construction."""
        big = Cohort.generate(20_000, 3)
        skills = np.array([s.skill for s in big])
        assert abs(skills.mean()) < 0.05
        assert abs(skills.std() - 1.0) < 0.05

    def test_difficulty_calibration_closed_form(self):
        """Empirical pass rate matches the probit target."""
        rng = substream(0, "check")
        cohort = Cohort.generate(20_000, 5)
        for target in (0.39, 0.5, 0.67):
            z = difficulty_for_rate(target)
            passes = np.mean(
                [s.attempts_correct_submission(z, rng) for s in cohort]
            )
            assert passes == pytest.approx(target, abs=0.02)

    def test_empty_cohort_rejected(self):
        with pytest.raises(ValueError):
            Cohort([])

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            difficulty_for_rate(0.0)
        with pytest.raises(ValueError):
            difficulty_for_rate(1.0)


class TestGrading:
    def test_grades_between_bounds_and_pass_threshold(self):
        cohort = Cohort.generate(19, 11)
        book = LabGrader(seed=11).grade_cohort(cohort)
        for lab_scores in book.scores.values():
            for score in lab_scores.values():
                assert 0 <= score <= 100

    def test_passing_rate_uses_70_threshold(self):
        assert passing_rate([69.9, 70.0, 85.0, 10.0]) == 0.5

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            passing_rate([])
        with pytest.raises(GradingError):
            LabGrader().grade_cohort(Cohort.generate(3, 1)).passing_rate("lab99")

    def test_correct_submission_runs_fixed_lab(self):
        grader = LabGrader(seed=1)
        assert grader.behaviour_passes("lab1", correct_submission=True)
        assert not grader.behaviour_passes("lab1", correct_submission=False)

    def test_harness_catches_lab6_deadlock(self):
        grader = LabGrader(seed=1)
        assert not grader.behaviour_passes("lab6", correct_submission=False)

    def test_behaviour_cache_used(self):
        grader = LabGrader(seed=1)
        grader.behaviour_passes("lab1", True)
        assert ("lab1", True) in grader._behaviour_cache

    def test_student_mean(self):
        cohort = Cohort.generate(5, 2)
        book = LabGrader(seed=2).grade_cohort(cohort)
        sid = cohort.students[0].student_id
        mean = book.student_mean(sid)
        assert 0 <= mean <= 100
        with pytest.raises(GradingError):
            book.student_mean("ghost")

    def test_grading_deterministic_per_seed(self):
        r1 = LabGrader(seed=9).grade_cohort(Cohort.generate(19, 9)).scores
        r2 = LabGrader(seed=9).grade_cohort(Cohort.generate(19, 9)).scores
        assert r1 == r2


class TestExams:
    def test_scores_within_bounds(self):
        cohort = Cohort.generate(19, 4)
        ExamModel(seed=4).administer(cohort)
        for s in cohort:
            assert 0 <= s.midterm_score <= 100
            assert 0 <= s.final_score <= 100

    def test_final_reflects_learning_gain(self):
        """Engaged students improve more between midterm and final."""
        cohort = Cohort.generate(2000, 6)
        ExamModel(seed=6).administer(cohort)
        gains = np.array([s.final_score - s.midterm_score for s in cohort])
        engagement = np.array([s.engagement for s in cohort])
        assert np.corrcoef(engagement, gains)[0, 1] > 0.3

    def test_population_rates_near_targets(self):
        cohort = Cohort.generate(5000, 8)
        ExamModel(seed=8).administer(cohort)
        mid = np.mean([s.midterm_score >= 70 for s in cohort])
        fin = np.mean([s.final_score >= 70 for s in cohort])
        assert mid == pytest.approx(PAPER_EXAM_RATES["midterm_all"], abs=0.04)
        assert fin == pytest.approx(PAPER_EXAM_RATES["final_all"], abs=0.05)

    def test_rates_with_no_passers(self):
        cohort = Cohort.generate(5, 1)
        ExamModel(seed=1).administer(cohort)
        rates = ExamModel.rates(cohort)  # nobody flagged as passer yet
        assert rates.midterm_passers == 0.0


class TestSurvey:
    def test_responses_on_scale(self):
        cohort = Cohort.generate(19, 3)
        model = SurveyModel(seed=3)
        for moment in ("entrance", "exit"):
            responses = model.respond(cohort, moment)
            for q in SURVEY_QUESTIONS:
                arr = responses[q.qid]
                assert arr.min() >= q.scale_min and arr.max() <= q.scale_max

    def test_knowledge_items_move_in_right_direction(self):
        cohort = Cohort.generate(500, 5)
        means = SurveyModel(seed=5).means(cohort)
        q1_in, q1_out = means["Q1"]
        assert q1_out < q1_in  # inverse scale: knowledge improved
        for q in ("Q5", "Q6"):
            kin, kout = means[q]
            assert kout > kin  # direct scale: knowledge improved

    def test_attitude_items_stay_close(self):
        cohort = Cohort.generate(500, 5)
        means = SurveyModel(seed=5).means(cohort)
        for q in ("Q2", "Q3", "Q4"):
            kin, kout = means[q]
            assert abs(kin - kout) < 0.4

    def test_invalid_moment_rejected(self):
        with pytest.raises(ValueError):
            SurveyModel().respond(Cohort.generate(3, 1), "midway")


class TestSemester:
    @pytest.fixture(scope="class")
    def report(self):
        return SemesterSimulation(DEFAULT_SEED).run()

    def test_cohort_is_19(self, report):
        assert report.cohort_size == 19

    def test_table1_shape_agreement(self, report):
        agreement = report.agreement()["table1"]
        assert agreement["all_within_tolerance"], report.table1()
        assert agreement["rank_correlation"] > 0.6

    def test_table2_signature_patterns(self, report):
        rates = report.exam_rates
        # The paper's qualitative claims:
        assert rates.midterm_all < 0.35           # "passing rate among all students is low"
        assert rates.final_passers > rates.midterm_passers  # "improvements along the course"
        assert rates.final_passers > rates.final_all        # passers outperform the class

    def test_table3_within_half_point(self, report):
        agreement = report.agreement()["table3"]
        assert agreement["all_within_tolerance"], report.table3()

    def test_tables_render(self, report):
        for text in (report.table1(), report.table2(), report.table3()):
            assert "paper" in text and "measured" in text

    def test_course_pass_rate_plausible(self, report):
        assert 0.15 <= report.course_pass_rate <= 0.6

    def test_replications_average_toward_targets(self):
        avg = SemesterSimulation(2012).run_replications(8)
        for lab_id, target in PAPER_LAB_RATES.items():
            assert avg["table1"][lab_id] == pytest.approx(target, abs=0.12)

    def test_deterministic(self):
        a = SemesterSimulation(DEFAULT_SEED).run()
        b = SemesterSimulation(DEFAULT_SEED).run()
        assert a.lab_rates == b.lab_rates
        assert a.exam_rates.as_dict() == b.exam_rates.as_dict()


class TestCoursePlan:
    def test_every_lab_covers_some_topic(self):
        from repro.education.course import topics_covered_by_labs

        covered = topics_covered_by_labs()
        for lab_id in [f"lab{i}" for i in range(1, 8)]:
            assert lab_id in covered, f"{lab_id} exercises no TCPP topic"

    def test_added_topics_exist_per_module(self):
        for module in COURSE_PLAN:
            if module.name != "Computer Organization":
                continue
            added = [t.name for t in module.added_topics()]
            assert "Spin lock / test-and-set" in added

    def test_paper_table_constants_complete(self):
        assert len(PAPER_LAB_RATES) == 7
        assert len(PAPER_EXAM_RATES) == 4
        assert len(PAPER_SURVEY_MEANS) == 6


class TestFormatting:
    def test_comparison_table_render(self):
        text = format_comparison_table("T", [("row a", 0.5, 0.45), ("row b", 0.2, 0.3)])
        assert "50%" in text and "45%" in text and "-5%" in text.replace(" ", "")

    def test_non_percent_mode(self):
        text = format_comparison_table("T", [("q", 3.0, 2.9)], as_percent=False)
        assert "3.00" in text and "2.90" in text
