"""Elastic fleets: dynamic membership, scaling policies, spot capacity.

Four layers under test:

* **membership** — nodes joining and leaving a live grid keep the
  incremental capacity index (cores_free / up-node caches / segment
  ordering) exact, and the distributor dispatches onto a join in the
  very next scheduling round;
* **heterogeneity** — ``NodeSpec.node_type`` constraint matching end to
  end: scheduler placement, submission-time validation against known
  and fleet-advertised types, backfill respecting the tag;
* **autoscaling** — the :class:`ScalingManager` tick loop (warm-up,
  cooldowns, idle-only scale-in, pool floors/ceilings, node-seconds
  accrual, decision log) plus the hypothesis no-flapping battery for
  the policy deadband and :class:`HysteresisGate`;
* **spot** — reclamation delivered as ``node_lost`` through the retry
  budget, including the crash-point race against a PR 8 checkpoint
  (zero acked jobs lost across the reboot).

Surfaces ride along: ``cluster.fleet`` RPCs over the bus and the
portal's ``/api/fleet`` + ``/debug/fleet``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._errors import PortalError, ResourceError, SchedulingError
from repro.bus import ClusterBackendService, ClusterProxy, MessageBus
from repro.cluster import (
    ClusterSpec,
    FaultInjector,
    Grid,
    JobDistributor,
    JobRequest,
    JobState,
    NodeSpec,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.durability import (
    DurabilityStore,
    JobJournal,
    SimulatedCrash,
    recover_distributor,
)
from repro.fleet import (
    FleetSample,
    HysteresisGate,
    NodePool,
    QueueWaitP95Policy,
    ScalingManager,
    TargetQueueDepthPolicy,
)
from repro.portal.client import PortalClient

settings.register_profile(
    "repro-fleet",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro-fleet")

RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base_s=0.01,
    jitter=0.0,
    retry_on=("failed", "timeout", "node_lost"),
)


def des_world(segments=1, slaves=2, cores=2, **dist_kwargs):
    """A small DES grid + distributor on virtual time."""
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=segments, slaves=slaves, cores=cores))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, **dist_kwargs
    )
    return sim, grid, dist


def sim_job(i, duration=5.0, **kw):
    return JobRequest(name=f"j{i}", owner="u", sim_duration=duration, **kw)


def drain(sim, dist, rounds=200):
    for _ in range(rounds):
        dist.dispatch()
        sim.run()
        if all(j.terminal for j in dist.jobs.values()):
            return
    raise AssertionError(
        f"stuck: {[(j.id, j.state.value) for j in dist.jobs.values() if not j.terminal]}"
    )


# ---------------------------------------------------------------------------
# dynamic membership: the capacity index stays exact
# ---------------------------------------------------------------------------
class TestDynamicMembership:
    def test_add_node_updates_capacity_index(self):
        _sim, grid, _dist = des_world(slaves=2, cores=2)
        before = grid.cores_free
        node = grid.add_node("seg-0", NodeSpec(cores=4))
        assert node.name == "seg-0-n02"  # monotone naming, never reused
        assert grid.cores_free == before + 4
        assert grid.cores_total == before + 4
        seg = grid.segments[0]
        assert seg.cores_up == before + 4
        assert node.name in {n.name for n in grid.up_compute_nodes()}
        assert grid.node(node.name) is node

    def test_remove_node_reverses_everything(self):
        _sim, grid, _dist = des_world(slaves=3, cores=2)
        before = grid.cores_free
        grid.remove_node("seg-0-n02")
        assert grid.cores_free == before - 2
        assert grid.get("seg-0-n02") is None
        with pytest.raises(ResourceError):
            grid.node("seg-0-n02")
        # names are never reused: the next join is n03, not n02
        node = grid.add_node("seg-0", NodeSpec(cores=2))
        assert node.name == "seg-0-n03"

    def test_masters_cannot_be_removed(self):
        _sim, grid, _dist = des_world()
        with pytest.raises(ResourceError):
            grid.remove_node(grid.master_server.name)
        with pytest.raises(ResourceError):
            grid.remove_node(grid.segments[0].master.name)

    def test_duplicate_node_name_rejected(self):
        _sim, grid, _dist = des_world()
        with pytest.raises(ResourceError):
            grid.add_node("seg-0", NodeSpec(cores=2), name="seg-0-n00")

    def test_distributor_dispatches_onto_joined_node(self):
        sim, grid, dist = des_world(slaves=1, cores=2)
        # saturate the only node, then queue one more
        jobs = [dist.submit(sim_job(i, cores_per_task=2)) for i in range(3)]
        assert len(dist.queue) == 2
        dist.add_node("seg-0", NodeSpec(cores=4))
        # the join itself dispatched: both waiters landed without a tick
        assert len(dist.queue) == 0
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert dist.stats()["faults"]["nodes_joined"] == 1

    def test_graceful_remove_refuses_busy_node(self):
        sim, grid, dist = des_world(slaves=1, cores=2)
        dist.submit(sim_job(0, cores_per_task=2))
        dist.dispatch()
        with pytest.raises(ResourceError, match="drain it first or force"):
            dist.remove_node("seg-0-n00")
        sim.run()
        assert dist.remove_node("seg-0-n00") == []
        assert dist.stats()["faults"]["nodes_removed"] == 1

    def test_forced_remove_reroutes_as_node_lost(self):
        sim, grid, dist = des_world(slaves=2, cores=2, retry=RETRY)
        job = dist.submit(sim_job(0, cores_per_task=2, duration=10.0))
        dist.dispatch()
        victim = next(iter(job.placement))
        rerouted = dist.remove_node(victim, force=True)
        assert [j.id for j in rerouted] == [job.id]
        assert grid.get(victim) is None
        drain(sim, dist)
        assert job.state is JobState.COMPLETED
        assert [a.outcome for a in job.attempts] == ["node_lost", "completed"]


# ---------------------------------------------------------------------------
# heterogeneous node types
# ---------------------------------------------------------------------------
class TestNodeTypes:
    def test_spec_rejects_empty_type(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=2, node_type="")

    def test_request_rejects_empty_type(self):
        from repro._errors import JobError

        with pytest.raises(JobError):
            JobRequest(name="x", owner="u", sim_duration=1.0, node_type="")

    def test_unknown_type_rejected_at_submit(self):
        _sim, _grid, dist = des_world()
        with pytest.raises(SchedulingError, match="node type"):
            dist.submit(sim_job(0, node_type="tpu"))

    def test_advertised_type_accepted_before_any_node_joins(self):
        _sim, grid, dist = des_world()
        grid.advertised_types.add("gpu")
        job = dist.submit(sim_job(0, node_type="gpu"))
        assert job.state is JobState.QUEUED  # waits for the fleet to provision

    def test_typed_job_lands_only_on_matching_node(self):
        sim, grid, dist = des_world(slaves=2, cores=2)
        gpu = dist.add_node("seg-0", NodeSpec(cores=2, node_type="gpu"))
        job = dist.submit(sim_job(0, cores_per_task=2, node_type="gpu"))
        dist.dispatch()
        assert list(job.placement) == [gpu.name]
        sim.run()
        assert job.state is JobState.COMPLETED

    def test_backfill_respects_type_of_blocked_head(self):
        from repro.cluster import BackfillScheduler

        sim, grid, dist = des_world(slaves=1, cores=2, scheduler=BackfillScheduler())
        grid.advertised_types.add("bigmem")  # the fleet can provision these
        typed = dist.submit(sim_job(0, cores_per_task=1, node_type="bigmem"))
        plain = dist.submit(sim_job(1, cores_per_task=1, est_runtime_s=5.0))
        dist.dispatch()
        assert plain.state is JobState.RUNNING  # backfill skipped the typed head
        assert typed.state is JobState.QUEUED
        dist.add_node("seg-0", NodeSpec(cores=2, memory_mb=8192, node_type="bigmem"))
        assert typed.state is JobState.RUNNING
        sim.run()
        assert typed.state is JobState.COMPLETED

    def test_advertised_type_requires_fleet_or_grid(self):
        _sim, grid, dist = des_world()
        # no advert, no node: reject
        with pytest.raises(SchedulingError):
            dist.submit(sim_job(0, node_type="bigmem"))

    def test_wire_roundtrip_carries_node_type(self):
        req = sim_job(0, node_type="gpu")
        grid = Grid(ClusterSpec.uhd_default())
        assert JobRequest.from_wire(req.to_wire()).node_type == "gpu"
        # the paper's machine advertises gpu via seg-d's nodes
        assert grid.knows_type("gpu") and not grid.knows_type("tpu")
        assert grid.snapshot()["node_types"]["gpu"] == 16


# ---------------------------------------------------------------------------
# policies and the hysteresis gate
# ---------------------------------------------------------------------------
def mk_sample(depth, fleet=0, pending=0, p95=None, now=0.0):
    return FleetSample(
        now=now, queue_depth=depth, running=0, cores_free=0,
        fleet_size=fleet, pending=pending, queue_wait_p95=p95,
    )


class TestPolicies:
    def test_depth_policy_thresholds(self):
        pol = TargetQueueDepthPolicy(out_depth_per_node=4, in_depth_per_node=1, step=2)
        assert pol.evaluate(mk_sample(5, fleet=0)) == 2      # 5 > 4*1
        assert pol.evaluate(mk_sample(5, fleet=2)) == 0      # inside band
        assert pol.evaluate(mk_sample(1, fleet=2)) == -2     # 1 <= 1*2
        assert pol.evaluate(mk_sample(0, fleet=0)) == 0      # nothing to shed

    def test_depth_policy_counts_pending_capacity(self):
        pol = TargetQueueDepthPolicy(out_depth_per_node=4, in_depth_per_node=1, step=2)
        # 10 > 4*1 would buy, but 2 warming nodes make effective=3: hold
        assert pol.evaluate(mk_sample(10, fleet=1, pending=2)) == 0
        # pending also blocks scale-in
        assert pol.evaluate(mk_sample(0, fleet=2, pending=1)) == 0

    def test_wait_policy_band(self):
        pol = QueueWaitP95Policy(out_wait_s=10.0, in_wait_s=1.0, step=1)
        assert pol.evaluate(mk_sample(3, fleet=1, p95=20.0)) == 1
        assert pol.evaluate(mk_sample(3, fleet=1, p95=5.0)) == 0    # in band
        assert pol.evaluate(mk_sample(0, fleet=1, p95=0.5)) == -1   # quiet
        assert pol.evaluate(mk_sample(0, fleet=1, p95=None)) == -1  # no samples
        assert pol.evaluate(mk_sample(0, fleet=0, p95=None)) == 0

    def test_deadband_enforced_at_construction(self):
        with pytest.raises(ValueError, match="deadband"):
            TargetQueueDepthPolicy(out_depth_per_node=1, in_depth_per_node=1)
        with pytest.raises(ValueError, match="deadband"):
            QueueWaitP95Policy(out_wait_s=1.0, in_wait_s=1.0)

    def test_gate_cooldowns(self):
        gate = HysteresisGate(out_cooldown_s=10.0, in_cooldown_s=30.0)
        assert gate.allow(+1, 0.0)
        assert not gate.allow(+1, 5.0)    # out cooldown
        assert gate.allow(+1, 10.0)
        assert not gate.allow(-1, 20.0)   # in needs 30s after *any* action
        assert gate.allow(-1, 40.0)
        assert gate.allow(+1, 41.0)       # growth after shrink is cheap
        assert not gate.allow(0, 100.0)   # zero delta is never an action


class TestNoFlappingProperties:
    """The ISSUE's property battery: monotone load never flaps."""

    @given(
        trace=st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=40),
        increasing=st.booleans(),
        out_thr=st.floats(min_value=0.6, max_value=16.0),
        band=st.floats(min_value=0.1, max_value=8.0),
        step=st.integers(min_value=1, max_value=4),
    )
    def test_monotone_trace_never_alternates_within_cooldown(
        self, trace, increasing, out_thr, band, step
    ):
        """A policy + gate fed a monotone queue-depth trace never executes
        opposite-direction actions within one scale-in cooldown window."""
        depths = sorted(trace) if increasing else sorted(trace, reverse=True)
        pol = TargetQueueDepthPolicy(
            out_depth_per_node=out_thr + band, in_depth_per_node=out_thr, step=step
        )
        in_cooldown = 30.0
        gate = HysteresisGate(out_cooldown_s=10.0, in_cooldown_s=in_cooldown)
        fleet = 0
        executed = []  # (t, delta)
        for i, depth in enumerate(depths):
            t = float(i * 5)
            delta = pol.evaluate(mk_sample(depth, fleet=fleet, now=t))
            if delta and gate.allow(delta, t):
                fleet = max(0, fleet + delta)
                executed.append((t, delta))
        for (t0, d0), (t1, d1) in zip(executed, executed[1:]):
            if (d0 > 0) != (d1 > 0) and d1 < 0:
                assert t1 - t0 >= in_cooldown, (executed, depths)
        # monotone *increasing* load must never shed capacity at all
        if increasing and depths[0] > 0:
            assert all(d > 0 for _, d in executed)

    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),  # dt between asks
                st.sampled_from([+1, -1]),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_gate_spacing_invariant(self, events):
        """Whatever the policy asks, executed actions keep their spacing:
        outs are >= out_cooldown apart, every in is >= in_cooldown after
        the previous executed action of either direction."""
        out_cd, in_cd = 7.0, 13.0
        gate = HysteresisGate(out_cooldown_s=out_cd, in_cooldown_s=in_cd)
        now, executed = 0.0, []
        for dt, delta in events:
            now += dt
            if gate.allow(delta, now):
                executed.append((now, delta))
        outs = [t for t, d in executed if d > 0]
        for a, b in zip(outs, outs[1:]):
            assert b - a >= out_cd
        for (t0, _d0), (t1, d1) in zip(executed, executed[1:]):
            if d1 < 0:
                assert t1 - t0 >= in_cd


# ---------------------------------------------------------------------------
# the scaling manager on the DES backend
# ---------------------------------------------------------------------------
def fleet_world(policy=None, **mgr_kwargs):
    sim, grid, dist = des_world(slaves=1, cores=2, retry=RETRY)
    pools = mgr_kwargs.pop(
        "pools",
        [NodePool("burst", NodeSpec(cores=2), segment="seg-0", max_nodes=4,
                  warmup_s=mgr_kwargs.pop("warmup_s", 0.0))],
    )
    mgr = ScalingManager(
        dist,
        pools,
        policy or TargetQueueDepthPolicy(out_depth_per_node=2, in_depth_per_node=0.4, step=2),
        scale_out_cooldown_s=mgr_kwargs.pop("scale_out_cooldown_s", 4.0),
        scale_in_cooldown_s=mgr_kwargs.pop("scale_in_cooldown_s", 8.0),
        idle_s=mgr_kwargs.pop("idle_s", 4.0),
        **mgr_kwargs,
    )
    return sim, grid, dist, mgr


class TestScalingManager:
    def test_backlog_scales_out_and_idle_scales_in(self):
        sim, grid, dist, mgr = fleet_world()
        jobs = [dist.submit(sim_job(i, cores_per_task=2, duration=3.0)) for i in range(10)]
        base_cores = 2

        def driver(sim):
            while True:
                yield sim.timeout(2.0)
                mgr.tick()
                if not mgr.managed_nodes() and all(j.terminal for j in jobs):
                    return

        sim.process(driver(sim))
        dist.dispatch()
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # elastic capacity fully given back, grid restored exactly
        assert mgr.managed_nodes() == {} and mgr.pending() == []
        assert grid.cores_free == base_cores
        kinds = [e["kind"] for e in mgr.decision_log()]
        assert "scale_out" in kinds and "join" in kinds and "scale_in" in kinds
        assert mgr.node_seconds["burst"] > 0

    def test_warmup_delays_capacity_and_records_lag(self):
        sim, grid, dist, mgr = fleet_world(warmup_s=3.0)
        for i in range(8):
            dist.submit(sim_job(i, cores_per_task=2, duration=50.0))
        dist.dispatch()
        mgr.tick(now=0.0)
        assert len(mgr.pending()) == 2 and mgr.managed_nodes() == {}
        mgr.tick(now=1.0)                       # not due yet
        assert mgr.managed_nodes() == {}
        mgr.tick(now=3.5)                       # warm-up elapsed
        assert len(mgr.managed_nodes()) == 2 and mgr.pending() == []
        lags = [e["lag_s"] for e in mgr.decision_log() if e["kind"] == "join"]
        assert lags == [3.5, 3.5]

    def test_cooldown_rejections_are_logged(self):
        sim, grid, dist, mgr = fleet_world(scale_out_cooldown_s=100.0)
        for i in range(12):
            dist.submit(sim_job(i, cores_per_task=2, duration=50.0))
        dist.dispatch()
        assert mgr.tick(now=0.0)["kind"] == "scale_out"
        mgr.tick(now=1.0)
        rejects = [e for e in mgr.decision_log() if e["kind"] == "rejected"]
        assert rejects and rejects[-1]["reason"] == "scale-out cooldown"

    def test_pool_ceiling_respected(self):
        sim, grid, dist, mgr = fleet_world()
        for i in range(50):
            dist.submit(sim_job(i, cores_per_task=2, duration=200.0))
        dist.dispatch()
        for t in range(0, 40, 2):
            mgr.tick(now=float(t))
        assert len(mgr.managed_nodes()) == 4  # max_nodes
        assert any(
            e["kind"] == "rejected" and e["reason"] == "all pools at max capacity"
            for e in mgr.decision_log()
        )

    def test_min_nodes_floor_joins_immediately_and_survives_scale_in(self):
        pools = [NodePool("floor", NodeSpec(cores=2), segment="seg-0",
                          min_nodes=2, max_nodes=4)]
        sim, grid, dist, mgr = fleet_world(pools=pools)
        assert len(mgr.managed_nodes()) == 2  # floor capacity, no warm-up
        for t in range(0, 120, 2):  # idle forever: shed down to the floor only
            mgr.tick(now=float(t))
        assert len(mgr.managed_nodes()) == 2

    def test_scale_in_skips_busy_nodes(self):
        sim, grid, dist, mgr = fleet_world(
            policy=TargetQueueDepthPolicy(
                out_depth_per_node=0.5, in_depth_per_node=0.1, step=2
            )
        )
        jobs = [dist.submit(sim_job(i, cores_per_task=2, duration=1000.0)) for i in range(5)]
        dist.dispatch()
        mgr.tick(now=0.0)
        mgr.tick(now=5.0)  # past the out cooldown: grow to the ceiling
        assert all(j.state is JobState.RUNNING for j in jobs)
        # long idle horizon, but every node is busy: nothing may leave
        for t in range(10, 60, 5):
            mgr.tick(now=float(t))
        assert len(mgr.managed_nodes()) == 4
        assert all(j.state is JobState.RUNNING for j in jobs)
        assert any(
            e["kind"] == "rejected" and e["reason"] == "no idle candidates past cooldown"
            for e in mgr.decision_log()
        )

    def test_snapshot_shape_and_telemetry(self):
        sim, grid, dist, mgr = fleet_world()
        snap = mgr.snapshot()
        assert snap["enabled"] and snap["policy"] == "target-queue-depth"
        assert snap["pools"][0]["name"] == "burst"
        assert snap["cooldowns"]["idle_s"] == 4.0
        reg = dist.telemetry.registry.snapshot()
        for name in (
            "repro_fleet_nodes",
            "repro_fleet_pending_scale",
            "repro_fleet_node_seconds_total",
            "repro_fleet_actions_total",
            "repro_fleet_scaling_lag_seconds",
        ):
            assert name in reg, name

    def test_unique_pool_names_required(self):
        sim, grid, dist = des_world()
        p = NodePool("a", NodeSpec(cores=2), segment="seg-0")
        with pytest.raises(ValueError, match="unique"):
            ScalingManager(dist, [p, p], TargetQueueDepthPolicy())

    def test_fleet_advertises_pool_types_for_submission(self):
        pools = [NodePool("gpus", NodeSpec(cores=2, node_type="gpu"),
                          segment="seg-0", max_nodes=2)]
        sim, grid, dist, mgr = fleet_world(
            pools=pools,
            policy=TargetQueueDepthPolicy(
                out_depth_per_node=0.5, in_depth_per_node=0.1, step=1
            ),
        )
        # no gpu node exists yet, but the pool can provision one
        job = dist.submit(sim_job(0, cores_per_task=2, node_type="gpu", duration=3.0))
        dist.dispatch()
        mgr.tick(now=0.0)

        def driver(sim):
            while True:
                yield sim.timeout(2.0)
                mgr.tick()
                if job.terminal:
                    return

        sim.process(driver(sim))
        sim.run()
        assert job.state is JobState.COMPLETED


# ---------------------------------------------------------------------------
# spot reclamation
# ---------------------------------------------------------------------------
class TestSpotReclamation:
    def _spot_world(self):
        pools = [NodePool("spot", NodeSpec(cores=2), segment="seg-0",
                          max_nodes=3, spot=True)]
        return fleet_world(pools=pools)

    def test_reclaim_reroutes_through_retry_budget(self):
        sim, grid, dist, mgr = self._spot_world()
        jobs = [dist.submit(sim_job(i, cores_per_task=2, duration=30.0)) for i in range(6)]
        dist.dispatch()
        mgr.tick(now=0.0)
        dist.dispatch()
        victims = mgr.spot_nodes()
        assert victims
        rerouted = mgr.reclaim(victims[0])
        assert rerouted
        for j in rerouted:
            assert any(a.outcome == "node_lost" for a in j.attempts)
        drain(sim, dist)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert victims[0] not in mgr.managed_nodes()
        assert grid.get(victims[0]) is None
        assert any(e["kind"] == "reclaim" for e in mgr.decision_log())

    def test_reclaim_refuses_on_demand_and_unmanaged(self):
        sim, grid, dist, mgr = fleet_world()  # on-demand pool
        for i in range(8):
            dist.submit(sim_job(i, cores_per_task=2, duration=50.0))
        dist.dispatch()
        mgr.tick(now=0.0)
        (name, _pool) = next(iter(mgr.managed_nodes().items()))
        with pytest.raises(ResourceError, match="not preemptible"):
            mgr.reclaim(name)
        with pytest.raises(ResourceError, match="not fleet-managed"):
            mgr.reclaim("seg-0-n00")

    def test_reclaim_racing_checkpoint_loses_no_acked_jobs(self, tmp_path):
        """The ISSUE's crash race: a spot reclamation lands while the
        journal is mid-snapshot; the process dies at ``snapshot.mid-write``
        and reboots from the journal directory.  Every acknowledged job
        must survive with monotone attempt epochs."""
        sim = Simulator()
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        store = DurabilityStore(tmp_path / "wal", fsync="never")
        dist = JobDistributor(
            grid,
            SimulatedBackend(sim),
            now_fn=lambda: sim.now,
            journal=JobJournal(store, snapshot_every=4),
            retry=RETRY,
        )
        pools = [NodePool("spot", NodeSpec(cores=2), segment="seg-0",
                          max_nodes=3, spot=True)]
        mgr = ScalingManager(
            dist, pools,
            TargetQueueDepthPolicy(out_depth_per_node=1, in_depth_per_node=0.2, step=3),
            scale_out_cooldown_s=1.0, scale_in_cooldown_s=100.0, idle_s=100.0,
        )
        acked = [dist.submit(sim_job(i, cores_per_task=2, duration=40.0)).id for i in range(8)]
        dist.dispatch()
        mgr.tick(now=0.0)
        dist.dispatch()
        victims = mgr.spot_nodes()
        assert victims
        # arm the crash *inside* the snapshot the reclamation's journal
        # traffic will trigger (snapshot_every=4 records)
        crash = FaultInjector(dist).arm_crash("snapshot.mid-write", at=1)
        with pytest.raises(SimulatedCrash):
            for name in victims:
                mgr.reclaim(name)
        assert crash.fired == ["snapshot.mid-write"]

        # reboot: a fresh grid without any of the fleet's spot nodes
        sim2 = Simulator()
        grid2 = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        store2 = DurabilityStore(tmp_path / "wal", fsync="never")
        dist2, report = recover_distributor(
            store2, grid2, SimulatedBackend(sim2),
            now_fn=lambda: sim2.now, retry=RETRY,
        )
        for job_id in acked:
            job = dist2.jobs.get(job_id)
            assert job is not None, f"acked job {job_id} lost in spot/checkpoint race"
        drain(sim2, dist2)
        for job_id in acked:
            job = dist2.jobs[job_id]
            assert job.terminal
            completed = [a for a in job.attempts if a.outcome == "completed"]
            assert len(completed) <= 1, f"{job_id} double-completed"
            nos = [a.no for a in job.attempts]
            assert nos == sorted(nos)


# ---------------------------------------------------------------------------
# surfaces: bus RPCs and portal endpoints
# ---------------------------------------------------------------------------
class TestFleetSurfaces:
    def test_bus_fleet_rpcs(self):
        sim, grid, dist, mgr = fleet_world()
        for i in range(8):
            dist.submit(sim_job(i, cores_per_task=2, duration=50.0))
        dist.dispatch()
        mgr.tick(now=0.0)
        bus = MessageBus()
        service = ClusterBackendService(bus, dist)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            snap = proxy.fleet_status()
            assert snap["enabled"] and snap["pools"][0]["name"] == "burst"
            log = proxy.fleet_log()
            assert any(e["kind"] == "scale_out" for e in log)
        finally:
            service.stop()

    def test_bus_fleet_rpcs_unmanaged(self):
        _sim, _grid, dist = des_world()
        bus = MessageBus()
        service = ClusterBackendService(bus, dist)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            assert proxy.fleet_status() == {"enabled": False}
            assert proxy.fleet_log() == []
        finally:
            service.stop()

    def test_portal_api_fleet(self, portal_app, student_client):
        assert student_client.fleet() == {"enabled": False}
        pools = [NodePool("web", NodeSpec(cores=2), segment="seg-0", max_nodes=2)]
        ScalingManager(
            portal_app.jobsvc.distributor, pools, TargetQueueDepthPolicy()
        )
        snap = student_client.fleet()
        assert snap["enabled"] and snap["pools"][0]["name"] == "web"

    def test_portal_debug_fleet_is_privileged(self, portal_app, admin_client, student_client):
        with pytest.raises(PortalError, match="403"):
            student_client.fleet_decisions()
        assert admin_client.fleet_decisions() == {"enabled": False, "decisions": []}
        pools = [NodePool("web", NodeSpec(cores=2), segment="seg-0",
                          min_nodes=1, max_nodes=2)]
        mgr = ScalingManager(
            portal_app.jobsvc.distributor, pools, TargetQueueDepthPolicy()
        )
        mgr.tick()
        body = admin_client.fleet_decisions()
        assert body["enabled"] and isinstance(body["decisions"], list)

    def test_unauthenticated_fleet_rejected(self, portal_app):
        c = PortalClient(app=portal_app)
        with pytest.raises(PortalError, match="401"):
            c.fleet()


class TestConstructorEdgeCases:
    """Pin the constructor contracts the SPC-* validator mirrors.

    The spec validator (SPC-C001/C002/C006) reports these statically;
    the constructors are the runtime backstop and must stay strict so
    a hand-built fleet cannot sneak past the same invariants.
    """

    def test_depth_policy_zero_deadband_rejected(self):
        with pytest.raises(ValueError, match="deadband"):
            TargetQueueDepthPolicy(out_depth_per_node=2.0, in_depth_per_node=2.0)
        with pytest.raises(ValueError, match="deadband"):
            TargetQueueDepthPolicy(out_depth_per_node=1.0, in_depth_per_node=3.0)

    def test_wait_policy_zero_deadband_rejected(self):
        with pytest.raises(ValueError, match="deadband"):
            QueueWaitP95Policy(out_wait_s=5.0, in_wait_s=5.0)
        with pytest.raises(ValueError, match="deadband"):
            QueueWaitP95Policy(out_wait_s=1.0, in_wait_s=30.0)

    def test_pool_min_above_max_rejected(self):
        with pytest.raises(ValueError, match="max_nodes"):
            NodePool("p", NodeSpec(), segment="seg-0", min_nodes=5, max_nodes=2)

    def test_pool_min_equal_max_is_a_fixed_pool(self):
        pool = NodePool("p", NodeSpec(), segment="seg-0", min_nodes=3, max_nodes=3)
        assert (pool.min_nodes, pool.max_nodes) == (3, 3)

    def test_pool_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_nodes"):
            NodePool("p", NodeSpec(), segment="seg-0", min_nodes=-1)
        with pytest.raises(ValueError, match="warmup_s"):
            NodePool("p", NodeSpec(), segment="seg-0", warmup_s=-0.1)

    def test_warmup_longer_than_scale_in_cooldown_constructs(self):
        # Flap-prone but legal at runtime: the gate and pool are
        # independent knobs.  The *static* validator flags the pairing
        # as SPC-C002 so the operator hears about it before deploying.
        from repro.spec import validate

        gate = HysteresisGate(out_cooldown_s=15.0, in_cooldown_s=30.0)
        pool = NodePool("p", NodeSpec(), segment="seg-0", warmup_s=120.0)
        assert pool.warmup_s > gate.in_cooldown_s
        doc = {
            "cluster": {
                "node_types": {"standard": {"cores": 4}},
                "segments": [
                    {"name": "seg-0", "slaves": 2, "slave_type": "standard"}
                ],
            },
            "fleet": {
                "pools": [{"name": "p", "segment": "seg-0",
                           "node_type": "standard", "warmup_s": 120.0}],
                "scaling": {"policy": "target-queue-depth",
                            "scale_in_cooldown_s": 30.0},
            },
        }
        assert validate(doc).rule_ids() == ["SPC-C002"]
