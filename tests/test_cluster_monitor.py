"""Cluster monitor: samples, records, summaries."""

import pytest

from repro.cluster import (
    AccountingRecord,
    ClusterMonitor,
    ClusterSpec,
    Grid,
    Job,
    JobRequest,
    JobState,
)


def finished_job(name="j", cores=2, wait=1.0, runtime=5.0, state=JobState.COMPLETED):
    job = Job(JobRequest(name=name, owner="alice", sim_duration=1.0, cores_per_task=cores))
    job.transition(JobState.QUEUED)
    job.transition(JobState.RUNNING)
    job.transition(state)
    job.submitted_at, job.started_at = 0.0, wait
    job.finished_at = wait + runtime
    return job


class TestAccounting:
    def test_record_fields(self):
        monitor = ClusterMonitor()
        monitor.record_job(finished_job())
        rec = monitor.records[0]
        assert rec.owner == "alice"
        assert rec.wait_s == 1.0 and rec.runtime_s == 5.0
        assert rec.core_seconds == 10.0

    def test_core_seconds_none_without_runtime(self):
        rec = AccountingRecord("id", "n", "o", "failed", 4, None, None)
        assert rec.core_seconds is None

    def test_summary_aggregates(self):
        monitor = ClusterMonitor()
        monitor.record_job(finished_job(wait=1.0, runtime=4.0))
        monitor.record_job(finished_job(wait=3.0, runtime=6.0))
        monitor.record_job(finished_job(state=JobState.FAILED, wait=0.0, runtime=1.0))
        s = monitor.summary()
        assert s["jobs_finished"] == 3
        assert s["by_state"] == {"completed": 2, "failed": 1}
        assert s["mean_wait_s"] == pytest.approx(4.0 / 3)
        assert s["core_seconds"] == pytest.approx((4 + 6 + 1) * 2)

    def test_empty_summary(self):
        # No records means *no data*, not zero-second waits: the latency
        # aggregates are None while the (genuinely zero) sums stay 0.
        s = ClusterMonitor().summary()
        assert s["jobs_finished"] == 0
        assert s["mean_wait_s"] is None
        assert s["p95_wait_s"] is None
        assert s["mean_runtime_s"] is None
        assert s["core_seconds"] == 0.0

    def test_summary_aggregates_appear_with_first_record(self):
        monitor = ClusterMonitor()
        monitor.record_job(finished_job(wait=2.0, runtime=3.0))
        s = monitor.summary()
        assert s["mean_wait_s"] == pytest.approx(2.0)
        assert s["mean_runtime_s"] == pytest.approx(3.0)

    def test_summary_waitless_records_keep_none(self):
        # A job cancelled before starting carries no wait/runtime; the
        # aggregates must not coerce that absence into 0.0.
        job = Job(JobRequest(name="n", owner="o", sim_duration=1.0))
        job.transition(JobState.QUEUED)
        job.transition(JobState.CANCELLED)
        job.submitted_at = 0.0
        monitor = ClusterMonitor()
        monitor.record_job(job)
        s = monitor.summary()
        assert s["jobs_finished"] == 1
        assert s["mean_wait_s"] is None
        assert s["mean_runtime_s"] is None
        assert s["core_seconds"] == 0.0


class TestSamples:
    def test_sampling_tracks_load(self):
        grid = Grid(ClusterSpec.small())
        monitor = ClusterMonitor()
        monitor.sample(grid, t=0.0)
        grid.node("seg-0-n00").allocate("j", 2)
        monitor.sample(grid, t=1.0, queued=3)
        samples = monitor.samples
        assert samples[0].load == 0.0
        assert samples[1].load == pytest.approx(2 / 8)
        assert samples[1].queued == 3

    def test_sample_window_bounded(self):
        grid = Grid(ClusterSpec.small())
        monitor = ClusterMonitor(max_samples=10)
        for t in range(25):
            monitor.sample(grid, t=float(t))
        samples = monitor.samples
        assert len(samples) == 10
        assert samples[0].t == 15.0  # oldest evicted

    def test_mean_load(self):
        grid = Grid(ClusterSpec.small())
        monitor = ClusterMonitor()
        # never sampled: None, so an idle grid (a real 0.0) is distinguishable
        assert monitor.mean_load() is None
        monitor.sample(grid, 0.0)
        assert monitor.mean_load() == 0.0
        grid.node("seg-0-n00").allocate("j", 2)
        monitor.sample(grid, 1.0)
        assert monitor.mean_load() == pytest.approx(0.125)
