"""Toolchains: registry resolution, simulated compilers, real compilers."""

import subprocess

import pytest

from repro._errors import ToolchainNotFound
from repro.toolchain import (
    GccToolchain,
    GxxToolchain,
    JavacToolchain,
    SimulatedCppToolchain,
    SimulatedCToolchain,
    SimulatedJavaToolchain,
    ToolchainRegistry,
    infer_language,
)
from tests.conftest import has_gcc, has_javac

HELLO_C = '#include <stdio.h>\nint main(void) { printf("hi there\\n"); return 0; }\n'
HELLO_CPP = '#include <iostream>\nint main() { std::cout << "cpp says hi" << std::endl; return 0; }\n'
HELLO_JAVA = (
    "public class Hello {\n"
    '  public static void main(String[] args) { System.out.println("java says hi"); }\n'
    "}\n"
)


class TestLanguageInference:
    @pytest.mark.parametrize(
        "name,lang",
        [("a.c", "c"), ("b.cpp", "cpp"), ("c.cc", "cpp"), ("d.cxx", "cpp"),
         ("E.java", "java"), ("x.py", None), ("noext", None)],
    )
    def test_extension_mapping(self, name, lang):
        assert infer_language(name) == lang


class TestRegistry:
    def test_known_languages(self):
        reg = ToolchainRegistry()
        assert set(reg.languages()) == {"c", "cpp", "java"}

    def test_resolve_always_finds_something(self):
        # Even with no compilers installed the simulated chains answer.
        reg = ToolchainRegistry(prefer_real=False)
        for lang in ("c", "cpp", "java"):
            assert reg.resolve(lang).name.startswith("sim-")

    def test_unknown_language_raises(self):
        with pytest.raises(ToolchainNotFound):
            ToolchainRegistry().resolve("fortran")

    def test_resolve_for_uses_extension(self):
        reg = ToolchainRegistry(prefer_real=False)
        assert reg.resolve_for("prog.java").language == "java"
        with pytest.raises(ToolchainNotFound):
            reg.resolve_for("prog.xyz")

    def test_custom_registration(self):
        class Cobol(SimulatedCToolchain):
            language = "cobol"
            name = "sim-cobol"

        reg = ToolchainRegistry()
        reg.register(Cobol())
        assert reg.resolve("cobol").name == "sim-cobol"


class TestSimulatedToolchains:
    def test_c_stub_reproduces_output(self, tmp_path):
        src = tmp_path / "hello.c"
        src.write_text(HELLO_C)
        result = SimulatedCToolchain().compile(src, tmp_path / "build")
        assert result.ok
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout == "hi there\n" and out.returncode == 0

    def test_cpp_stub_reproduces_output(self, tmp_path):
        src = tmp_path / "hello.cpp"
        src.write_text(HELLO_CPP)
        result = SimulatedCppToolchain().compile(src, tmp_path / "build")
        assert result.ok
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert "cpp says hi" in out.stdout

    def test_java_stub_reproduces_output(self, tmp_path):
        src = tmp_path / "Hello.java"
        src.write_text(HELLO_JAVA)
        result = SimulatedJavaToolchain().compile(src, tmp_path / "build")
        assert result.ok
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout == "java says hi\n"

    def test_unbalanced_braces_fail_with_line_numbers(self, tmp_path):
        src = tmp_path / "bad.c"
        src.write_text("int main(void) {\n  printf(\"x\");\n")
        result = SimulatedCToolchain().compile(src, tmp_path / "build")
        assert not result.ok
        assert "line 1" in result.diagnostics and "unclosed" in result.diagnostics

    def test_missing_entry_point_fails(self, tmp_path):
        src = tmp_path / "lib.c"
        src.write_text("int helper(void) { return 1; }\n")
        result = SimulatedCToolchain().compile(src, tmp_path / "build")
        assert not result.ok and "entry point" in result.diagnostics

    def test_braces_in_strings_and_comments_ignored(self, tmp_path):
        src = tmp_path / "tricky.c"
        src.write_text(
            '// a comment with { unbalanced\n'
            '/* and a block } comment { */\n'
            'int main(void) { printf("brace } in string {"); return 0; }\n'
        )
        result = SimulatedCToolchain().compile(src, tmp_path / "build")
        assert result.ok, result.diagnostics

    def test_java_requires_static_main(self, tmp_path):
        src = tmp_path / "NoMain.java"
        src.write_text("public class NoMain { void run() {} }\n")
        result = SimulatedJavaToolchain().compile(src, tmp_path / "build")
        assert not result.ok

    def test_raise_on_error_raises_compilationerror(self, tmp_path):
        from repro._errors import CompilationError

        src = tmp_path / "bad.c"
        src.write_text("int main( {")
        result = SimulatedCToolchain().compile(src, tmp_path / "build")
        with pytest.raises(CompilationError) as e:
            result.raise_on_error()
        assert e.value.diagnostics


@pytest.mark.skipif(not has_gcc(), reason="gcc not installed")
class TestRealC:
    def test_compile_and_run(self, tmp_path):
        src = tmp_path / "hello.c"
        src.write_text(HELLO_C)
        result = GccToolchain().compile(src, tmp_path / "build")
        assert result.ok, result.diagnostics
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout == "hi there\n"

    def test_compile_error_reported(self, tmp_path):
        src = tmp_path / "bad.c"
        src.write_text("int main(void) { undeclared_fn(; }\n")
        result = GccToolchain().compile(src, tmp_path / "build")
        assert not result.ok and "error" in result.diagnostics.lower()

    def test_warnings_collected(self, tmp_path):
        src = tmp_path / "warn.c"
        src.write_text("#include <stdio.h>\nint main(void){ int unused; printf(\"x\\n\"); return 0; }\n")
        result = GccToolchain().compile(src, tmp_path / "build")
        assert result.ok and result.warnings

    def test_cpp_real(self, tmp_path):
        src = tmp_path / "hello.cpp"
        src.write_text(HELLO_CPP)
        result = GxxToolchain().compile(src, tmp_path / "build")
        assert result.ok
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert "cpp says hi" in out.stdout


@pytest.mark.skipif(not has_javac(), reason="javac/java not installed")
class TestRealJava:
    def test_compile_and_run(self, tmp_path):
        src = tmp_path / "Hello.java"
        src.write_text(HELLO_JAVA)
        result = JavacToolchain().compile(src, tmp_path / "build")
        assert result.ok, result.diagnostics
        assert result.artifact.entry == "Hello"
        out = subprocess.run(result.artifact.run_argv(), capture_output=True, text=True)
        assert out.stdout.strip() == "java says hi"

    def test_registry_prefers_real_when_available(self):
        reg = ToolchainRegistry(prefer_real=True)
        assert reg.resolve("java").name == "javac"
