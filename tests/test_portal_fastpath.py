"""Portal fast path: conditional GET, cache invalidation, streaming,
usage accounting, and session sweeping.

These tests pin the contracts behind the portal's read-path cache:

* every cached endpoint does an honest ETag 200 → 304 round trip;
* *every* mutation route (PUT content, upload, delete, rename) and
  every job-state transition invalidates what it must — a cached read
  never goes stale;
* large downloads stream in bounded chunks instead of buffering the
  whole file;
* per-user disk usage is delta-maintained and agrees with a full walk;
* expired sessions are reclaimed from the request path itself.
"""

from __future__ import annotations

import io
import json

import pytest

from repro._errors import FileManagerError
from repro.cluster.spec import ClusterSpec
from repro.portal import PortalClient, make_default_app
from repro.portal.files import CHUNK_BYTES, FileManager
from repro.portal.files import _tree_bytes
from repro.portal.respcache import CachedResponse, ResponseCache
from repro.portal.sessions import SessionStore

C_SOURCE = '#include <stdio.h>\nint main(void){ printf("fast\\n"); return 0; }\n'


def wsgi_get(app, path, token, extra=None):
    """Raw WSGI GET returning (status, headers dict, body iterable)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path.split("?")[0],
        "QUERY_STRING": path.partition("?")[2],
        "CONTENT_LENGTH": "0",
        "wsgi.input": io.BytesIO(b""),
        "HTTP_AUTHORIZATION": f"Bearer {token}",
    }
    if extra:
        environ.update(extra)
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split(" ", 1)[0])
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], chunks


@pytest.fixture
def fast_portal(tmp_path):
    app = make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small())
    client = PortalClient(app=app, conditional=True)
    client.login("admin", "admin-pass")
    return app, client


def token_of(client: PortalClient) -> str:
    return client._token


class TestConditionalGet:
    def test_etag_roundtrip_200_then_304(self, fast_portal):
        app, client = fast_portal
        client.write_file("notes.txt", "hello")
        token = token_of(client)
        path = "/api/files/content?path=notes.txt"

        status, headers, chunks = wsgi_get(app, path, token)
        body = b"".join(chunks)
        assert status == 200
        etag = headers["ETag"]
        assert json.loads(body)["content"] == "hello"

        status, headers, chunks = wsgi_get(
            app, path, token, {"HTTP_IF_NONE_MATCH": etag}
        )
        assert status == 304
        assert b"".join(chunks) == b""
        assert "Content-Length" not in headers

    def test_stale_etag_gets_fresh_200(self, fast_portal):
        app, client = fast_portal
        client.write_file("notes.txt", "hello")
        token = token_of(client)
        path = "/api/files/content?path=notes.txt"
        _, headers, _ = wsgi_get(app, path, token)
        old_etag = headers["ETag"]

        client.write_file("notes.txt", "changed")
        status, headers, chunks = wsgi_get(
            app, path, token, {"HTTP_IF_NONE_MATCH": old_etag}
        )
        assert status == 200
        assert json.loads(b"".join(chunks))["content"] == "changed"
        assert headers["ETag"] != old_etag

    def test_conditional_client_replays_from_cache(self, fast_portal):
        app, client = fast_portal
        client.write_file("a.txt", "x")
        before = app.stats()["portal"]["not_modified"]
        for _ in range(5):
            assert client.read_file("a.txt") == "x"
        stats = app.stats()["portal"]
        assert stats["not_modified"] >= before + 4
        assert stats["response_cache"]["hits"] > 0

    def test_listing_invalidated_by_every_mutation_route(self, fast_portal):
        _, client = fast_portal
        client.mkdir("work")
        client.write_file("work/a.txt", "a")
        assert {e["name"] for e in client.list_files("work")} == {"a.txt"}

        # PUT /api/files/content
        client.write_file("work/b.txt", "b")
        assert {e["name"] for e in client.list_files("work")} == {"a.txt", "b.txt"}
        # POST /api/files/upload (multipart)
        client.upload({"c.txt": b"c"})
        assert "c.txt" in {e["name"] for e in client.list_files("")}
        # POST /api/files/rename
        client.rename("work/b.txt", "bb.txt")
        assert {e["name"] for e in client.list_files("work")} == {"a.txt", "bb.txt"}
        # POST /api/files/move
        client.move("work/bb.txt", "bb.txt")
        assert {e["name"] for e in client.list_files("work")} == {"a.txt"}
        # DELETE /api/files
        client.delete("work/a.txt")
        assert client.list_files("work") == []

    def test_deleted_file_content_is_gone_immediately(self, fast_portal):
        _, client = fast_portal
        client.write_file("gone.txt", "bye")
        assert client.read_file("gone.txt") == "bye"
        client.delete("gone.txt")
        with pytest.raises(Exception):
            client.read_file("gone.txt")

    def test_job_state_transitions_refresh_status_and_output(self, fast_portal):
        app, client = fast_portal
        client.write_file("prog.c", C_SOURCE)
        status_before = client.cluster_status()
        client.cluster_status()  # cached now

        job_id = client.submit_job("prog.c")["job"]["id"]
        # submission bumped the distributor version: poll must see the job
        seen = client.cluster_status()
        assert sum(seen["jobs"].values()) > sum(status_before.get("jobs", {}).values())

        client.wait_for_job(job_id, timeout=60)
        out = client.job_output(job_id)
        assert out["stdout"] == ["fast"]
        # completion is visible through the cached status endpoint too
        assert client.cluster_status()["jobs"].get("completed", 0) >= 1

    def test_output_poll_cache_hits_while_job_is_quiet(self, fast_portal):
        app, client = fast_portal
        client.write_file("prog.c", C_SOURCE)
        job_id = client.submit_job("prog.c")["job"]["id"]
        client.wait_for_job(job_id, timeout=60)
        client.job_output(job_id)
        hits_before = app.cache.stats()["hits"]
        for _ in range(4):
            client.job_output(job_id)
        assert app.cache.stats()["hits"] >= hits_before + 4


class TestStreamingDownload:
    def test_32mb_download_streams_in_bounded_chunks(self, fast_portal):
        app, client = fast_portal
        size = 32 * 1024 * 1024
        # written directly: uploads cap at 16 MiB, downloads must not
        big = app.files.home("admin") / "big.bin"
        big.write_bytes(b"\x5a" * size)
        app.files.refresh_usage("admin")
        token = token_of(client)

        status, headers, chunks = wsgi_get(
            app, "/api/files/content?path=big.bin&download=1", token
        )
        assert status == 200
        assert int(headers["Content-Length"]) == size
        total = n_chunks = 0
        for chunk in chunks:  # never joined: memory stays one chunk deep
            assert len(chunk) <= CHUNK_BYTES
            total += len(chunk)
            n_chunks += 1
        assert total == size
        assert n_chunks >= size // CHUNK_BYTES
        assert app.stats()["portal"]["bytes_streamed"] >= size

    def test_304_download_streams_nothing(self, fast_portal):
        app, client = fast_portal
        client.write_file("blob.bin", b"\x01" * 100_000)
        token = token_of(client)
        path = "/api/files/content?path=blob.bin&download=1"
        _, headers, chunks = wsgi_get(app, path, token)
        assert len(b"".join(chunks)) == 100_000
        streamed = app.stats()["portal"]["bytes_streamed"]

        status, _, chunks = wsgi_get(
            app, path, token, {"HTTP_IF_NONE_MATCH": headers["ETag"]}
        )
        assert status == 304
        assert b"".join(chunks) == b""
        assert app.stats()["portal"]["bytes_streamed"] == streamed

    def test_streamed_upload_is_not_buffered_by_handler(self, fast_portal):
        _, client = fast_portal
        payload = bytes(range(256)) * 4096  # 1 MiB
        client.write_file("up.bin", payload)
        assert client.download_file("up.bin") == payload


class TestUsageAccounting:
    def check(self, fm: FileManager, user: str):
        counted = fm.usage_bytes(user)
        assert counted == _tree_bytes(fm.home(user)), "usage counter drifted"

    def test_deltas_match_full_walk(self, tmp_path):
        fm = FileManager(tmp_path)
        fm.write("u", "a.txt", b"x" * 100)
        self.check(fm, "u")
        fm.write("u", "a.txt", b"x" * 10)  # overwrite smaller
        self.check(fm, "u")
        fm.write("u", "a.txt", b"x" * 5000)  # overwrite larger
        self.check(fm, "u")
        fm.mkdir("u", "d")
        fm.copy("u", "a.txt", "d/b.txt")
        self.check(fm, "u")
        fm.rename("u", "d/b.txt", "c.txt")
        self.check(fm, "u")
        fm.move("u", "d/c.txt", "c.txt")
        self.check(fm, "u")
        fm.delete("u", "c.txt")
        self.check(fm, "u")
        fm.delete("u", "d")
        self.check(fm, "u")
        assert fm.usage_bytes("u") == 5000

    def test_refresh_usage_sees_out_of_band_writes(self, tmp_path):
        fm = FileManager(tmp_path)
        fm.write("u", "a.txt", b"x" * 10)
        (fm.home("u") / "side.bin").write_bytes(b"y" * 999)  # e.g. a job artifact
        assert fm.refresh_usage("u") == 1009
        assert fm.usage_bytes("u") == 1009

    def test_write_stream_quota_abort_leaves_old_file_intact(self, tmp_path):
        fm = FileManager(tmp_path, quota_bytes=1000)
        fm.write("u", "a.txt", b"old-content")

        def chunks():
            for _ in range(10):
                yield b"z" * 200

        with pytest.raises(FileManagerError):
            fm.write_stream("u", "a.txt", chunks())
        assert fm.read("u", "a.txt") == b"old-content"
        self_check = fm.usage_bytes("u")
        assert self_check == _tree_bytes(fm.home("u"))  # no .part debris counted
        assert [p.name for p in fm.home("u").iterdir()] == ["a.txt"]


class TestSessionSweep:
    def test_expired_sessions_reclaimed_through_request_path(self, tmp_path):
        app = make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small())
        clock = [0.0]
        store = SessionStore(
            ttl_s=10.0, now_fn=lambda: clock[0], sweep_every=8, sweep_interval_s=1e9
        )
        app.sessions = store

        for _ in range(50):  # a classroom's worth of abandoned logins
            store.create({"username": "ghost"})
        client = PortalClient(app=app, conditional=True)
        client.login("admin", "admin-pass")
        assert len(store) == 51

        clock[0] = 9.0
        client.cluster_status()  # sliding expiry: admin refreshed to t=19
        clock[0] = 11.0  # ghosts (expire t=10) are now dead
        for _ in range(10):  # > sweep_every requests force a sweep
            client.cluster_status()
        assert len(store) == 1, "expired sessions not reclaimed under load"
        assert app.stats()["portal"]["sessions_swept"] >= 50
        assert client.whoami()["username"] == "admin"  # survivor still valid

    def test_maybe_sweep_paced_by_op_count(self):
        clock = [0.0]
        store = SessionStore(
            ttl_s=1.0, now_fn=lambda: clock[0], sweep_every=5, sweep_interval_s=1e9
        )
        for _ in range(3):
            store.create({"u": 1})
        clock[0] = 2.0
        removed = sum(store.maybe_sweep() for _ in range(4))
        assert removed == 0  # not due yet
        assert store.maybe_sweep() == 3  # fifth op triggers the sweep

    def test_maybe_sweep_paced_by_interval(self):
        clock = [0.0]
        store = SessionStore(
            ttl_s=1.0, now_fn=lambda: clock[0], sweep_every=10**9, sweep_interval_s=30.0
        )
        store.create({"u": 1})
        clock[0] = 31.0
        assert store.maybe_sweep() == 1

    def test_invalid_tokens_still_rejected(self):
        store = SessionStore()
        token = store.create({"u": 1})
        sid, _, sig = token.partition(".")
        for bad in ("", "justsid", f"{sid}.deadbeef", f"{sid}.ÿ{sig[1:]}", f".{sig}"):
            assert store.peek(bad) is None
        assert store.peek(token) == {"u": 1}


class TestResponseCache:
    @staticmethod
    def entry(body: bytes, etag: str) -> CachedResponse:
        return CachedResponse(body=body, etag=etag, content_type="t")

    def test_lru_eviction(self):
        cache = ResponseCache(capacity=2)
        for i in range(3):
            cache.store("ns", i, self.entry(b"x", f'"{i}"'))
        assert cache.lookup("ns", 0) is None  # oldest evicted
        assert cache.lookup("ns", 2) is not None
        assert len(cache) == 2

    def test_invalidation_is_per_namespace(self):
        cache = ResponseCache()
        cache.store("files:alice", "k", self.entry(b"a", '"a"'))
        cache.store("files:bob", "k", self.entry(b"b", '"b"'))
        cache.invalidate("files:alice")
        assert cache.lookup("files:alice", "k") is None
        assert cache.lookup("files:bob", "k").body == b"b"

    def test_oversized_bodies_are_not_cached(self):
        cache = ResponseCache(capacity=4, max_body_bytes=10)
        assert not cache.store("ns", "k", self.entry(b"x" * 11, '"e"'))
        assert cache.lookup("ns", "k") is None

    def test_zero_capacity_disables_caching(self):
        cache = ResponseCache(capacity=0)
        assert not cache.store("ns", "k", self.entry(b"x", '"e"'))
        assert cache.lookup("ns", "k") is None
