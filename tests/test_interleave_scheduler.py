"""Scheduler semantics: ops, blocking, determinism, deadlock diagnosis."""

import pytest

from repro._errors import DeadlockError, SimulationError
from repro.interleave import (
    FixedPolicy,
    Join,
    Nop,
    RoundRobinPolicy,
    Scheduler,
    SharedVar,
    VMutex,
    VSemaphore,
)


def spawn_incrementers(sched, var, n_threads=2, iters=10, with_nop=True):
    def body(var, iters):
        for _ in range(iters):
            v = yield var.read()
            if with_nop:
                yield Nop()
            yield var.write(v + 1)

    for i in range(n_threads):
        sched.spawn(body(var, iters), name=f"t{i}")


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            sched = Scheduler(seed=1234)
            var = SharedVar("c", 0)
            spawn_incrementers(sched, var)
            run = sched.run()
            outcomes.append((var.value, run.steps, tuple(run.choice_trace)))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_explore_different_interleavings(self):
        finals = set()
        for seed in range(12):
            sched = Scheduler(seed=seed)
            var = SharedVar("c", 0)
            spawn_incrementers(sched, var, iters=20)
            sched.run()
            finals.add(var.value)
        assert len(finals) > 1  # races visible across seeds

    def test_fixed_policy_replays_choice_trace(self):
        sched = Scheduler(seed=5)
        var = SharedVar("c", 0)
        spawn_incrementers(sched, var)
        run = sched.run()
        replay = Scheduler(policy=FixedPolicy([c for _, c in run.choice_trace]))
        var2 = SharedVar("c", 0)
        spawn_incrementers(replay, var2)
        replay.run()
        assert var2.value == var.value


class TestPolicies:
    def test_round_robin_rotates(self):
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        order = []

        def body(name):
            for _ in range(3):
                order.append(name)
                yield Nop()

        for n in ("a", "b", "c"):
            sched.spawn(body(n), name=n)
        sched.run()
        assert order[:6] == ["a", "b", "c", "a", "b", "c"]

    def test_policy_out_of_range_is_error(self):
        class Bad:
            def choose(self, runnable, step):
                return 99

        sched = Scheduler(policy=Bad())
        sched.spawn((Nop() for _ in range(1)), name="x")
        with pytest.raises(SimulationError):
            sched.run()


class TestMutexSemantics:
    def test_mutual_exclusion_holds(self):
        sched = Scheduler(seed=3)
        var = SharedVar("c", 0)
        lock = VMutex("m")

        def body(var, lock):
            for _ in range(25):
                yield lock.acquire()
                v = yield var.read()
                yield Nop()
                yield var.write(v + 1)
                yield lock.release()

        for i in range(3):
            sched.spawn(body(var, lock), name=f"t{i}")
        run = sched.run()
        assert run.ok and var.value == 75

    def test_release_not_held_fails_thread(self):
        sched = Scheduler(seed=0)
        lock = VMutex("m")

        def thief(lock):
            yield lock.release()

        sched.spawn(thief(lock), name="thief")
        run = sched.run()
        assert "thief" in run.failures
        assert isinstance(run.failures["thief"], SimulationError)

    def test_self_deadlock_on_reacquire(self):
        sched = Scheduler(seed=0)
        lock = VMutex("m")

        def recursive(lock):
            yield lock.acquire()
            yield lock.acquire()

        sched.spawn(recursive(lock), name="r")
        run = sched.run()
        assert isinstance(run.failures["r"], DeadlockError)

    def test_fifo_handoff_on_release(self):
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        lock = VMutex("m")
        order = []

        def body(name, lock):
            yield lock.acquire()
            order.append(name)
            yield Nop()
            yield lock.release()

        for n in ("a", "b", "c"):
            sched.spawn(body(n, lock), name=n)
        run = sched.run()
        assert run.ok and order == ["a", "b", "c"]

    def test_dying_thread_releases_mutex(self):
        sched = Scheduler(seed=0, policy=RoundRobinPolicy())
        lock = VMutex("m")

        def dies(lock):
            yield lock.acquire()
            raise RuntimeError("oops")

        def waits(lock):
            yield lock.acquire()
            yield lock.release()
            return "got it"

        sched.spawn(dies(lock), name="dies")
        sched.spawn(waits(lock), name="waits")
        run = sched.run()
        assert run.returns.get("waits") == "got it"
        assert "dies" in run.failures


class TestDeadlockDiagnosis:
    @staticmethod
    def _ab_ba(sched):
        a, b = VMutex("A"), VMutex("B")

        def t1():
            yield a.acquire()
            yield Nop()
            yield b.acquire()

        def t2():
            yield b.acquire()
            yield Nop()
            yield a.acquire()

        sched.spawn(t1(), name="p")
        sched.spawn(t2(), name="q")

    def test_deadlock_reported_with_cycle(self):
        # Interleave p and q strictly: p takes A, q takes B, then both block.
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        self._ab_ba(sched)
        run = sched.run()
        assert run.deadlocked
        names = {n for n, _ in run.deadlock.cycle}
        assert names == {"p", "q"}

    def test_raise_on_deadlock_flag(self):
        sched = Scheduler(policy=RoundRobinPolicy(), detect_races=False)
        self._ab_ba(sched)
        with pytest.raises(DeadlockError):
            sched.run(raise_on_deadlock=True)

    def test_lost_signal_reported_without_cycle(self):
        sched = Scheduler(seed=0)
        sem = VSemaphore("s", 0)

        def starved(sem):
            yield sem.p()

        sched.spawn(starved(sem), name="starved")
        run = sched.run()
        assert run.deadlocked and run.deadlock.cycle == []
        assert "lost signal" in str(run.deadlock)


class TestJoinAndReturns:
    def test_join_returns_value(self):
        sched = Scheduler(seed=0)

        def child():
            yield Nop()
            return 99

        def parent(sched):
            c = sched.spawn(child(), name="child")
            value = yield Join(c)
            return value + 1

        def make(sched):
            sched.spawn(parent(sched), name="parent")

        make(sched)
        run = sched.run()
        assert run.returns["parent"] == 100

    def test_join_rethrows_child_exception(self):
        sched = Scheduler(seed=0)

        def child():
            yield Nop()
            raise ValueError("child blew up")

        def parent(sched):
            c = sched.spawn(child(), name="child")
            try:
                yield Join(c)
            except ValueError as exc:
                return f"handled: {exc}"

        sched.spawn(parent(sched), name="parent")
        run = sched.run()
        assert run.returns["parent"] == "handled: child blew up"

    def test_spawn_non_generator_rejected(self):
        sched = Scheduler(seed=0)
        with pytest.raises(SimulationError):
            sched.spawn(42)

    def test_yield_non_op_fails_thread(self):
        sched = Scheduler(seed=0)

        def bad():
            yield "not an op"

        sched.spawn(bad(), name="bad")
        run = sched.run()
        assert "bad" in run.failures

    def test_max_steps_sets_bounded(self):
        sched = Scheduler(seed=0, max_steps=10)

        def spinner():
            while True:
                yield Nop()

        sched.spawn(spinner(), name="s")
        run = sched.run()
        assert run.bounded and not run.completed
