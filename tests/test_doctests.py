"""Every ``>>>`` example in the library's docstrings must actually run.

Documentation that drifts from the code is worse than no documentation;
this module imports every ``repro`` submodule and executes its doctests.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue  # CLI module: importing is fine but keep it out of doctests
        yield info.name


MODULES = sorted(_iter_modules())


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failure(s)"


def test_collector_sees_the_whole_package():
    """Guard against silently testing nothing."""
    assert len(MODULES) > 50
    assert "repro.interleave.scheduler" in MODULES
    assert "repro.portal.app" in MODULES
