"""Dynamic partial-order reduction: soundness and reduction.

The load-bearing property: at equal (small) bounds, DPOR + sleep sets
must find the *exact same* deadlock/violation/failure/race set as naive
enumeration — for every lab program, broken and fixed alike — while
running strictly fewer schedules whenever the program has commuting
steps.
"""

import pytest

from repro.interleave import (
    Branch,
    DporExplorer,
    ExplorationResult,
    Nop,
    Scheduler,
    SharedVar,
    VMutex,
    STOP_EXHAUSTED,
    STOP_ON_FIRST,
    STOP_SCHEDULE_BUDGET,
    STOP_WALL_CLOCK,
    dependent,
    explore,
    footprint_of,
)
from repro.labs.explore import program, program_ids

from tests.test_interleave_explorer import (
    ab_ba_factory,
    ordered_factory,
    racy_counter_factory,
)

#: small instances so even naive enumeration stays fast.
_SMALL_SIZES = {"lab3": {"rounds": 1}, "lab7": {"items": 1}}


def _sizes_for(lab_id):
    return _SMALL_SIZES.get(lab_id, {})


class TestFootprints:
    def test_read_write_conflict(self):
        v = SharedVar("x", 0)
        r, w = footprint_of(v.read()), footprint_of(v.write(1))
        assert dependent(r, w) and dependent(w, w)
        assert not dependent(r, r), "two reads commute"

    def test_distinct_variables_commute(self):
        a, b = SharedVar("a", 0), SharedVar("b", 0)
        assert not dependent(footprint_of(a.write(1)), footprint_of(b.write(1)))

    def test_mutex_ops_conflict(self):
        m = VMutex("m")
        assert dependent(footprint_of(m.acquire()), footprint_of(m.release()))

    def test_nop_commutes_with_everything(self):
        v = SharedVar("x", 0)
        assert footprint_of(Nop()) == ()
        assert not dependent(footprint_of(Nop()), footprint_of(v.write(1)))


class TestSoundness:
    """DPOR finds exactly what naive finds — the equivalence suite."""

    @pytest.mark.parametrize("pid", program_ids())
    def test_lab_program_equivalence(self, pid):
        lab_id, variant = pid.split(":")
        sizes = _sizes_for(lab_id)
        naive = explore(program(lab_id, variant, **sizes), max_schedules=100_000)
        dpor = explore(
            program(lab_id, variant, **sizes), max_schedules=100_000, strategy="dpor"
        )
        assert naive.exhausted and dpor.exhausted
        assert dpor.finding_set() == naive.finding_set()
        assert dpor.schedules_run <= naive.schedules_run

    @pytest.mark.parametrize(
        "factory", [ab_ba_factory, ordered_factory, racy_counter_factory]
    )
    def test_synthetic_equivalence(self, factory):
        naive = explore(factory, max_schedules=10_000)
        dpor = explore(factory, max_schedules=10_000, strategy="dpor")
        assert naive.exhausted and dpor.exhausted
        assert dpor.finding_set() == naive.finding_set()

    def test_dpor_witness_replays(self):
        """DPOR witnesses are full choice traces: FixedPolicy replays them."""
        from repro.interleave import FixedPolicy

        result = explore(ab_ba_factory, max_schedules=1000, strategy="dpor")
        assert result.deadlocks
        witness, _ = result.deadlocks[0]
        sched, _ = ab_ba_factory(FixedPolicy(list(witness)))
        assert sched.run().deadlocked


class TestReduction:
    def test_commuting_steps_pruned(self):
        """Independent-variable writers: one equivalence class, one run."""

        def factory(policy):
            sched = Scheduler(policy=policy, detect_races=False)
            a, b = SharedVar("a", 0), SharedVar("b", 0)

            def writer(var):
                yield var.write(1)
                yield var.write(2)

            sched.spawn(writer(a), name="p")
            sched.spawn(writer(b), name="q")
            return sched, None

        naive = explore(factory, max_schedules=10_000)
        dpor = explore(factory, max_schedules=10_000, strategy="dpor")
        assert naive.exhausted and dpor.exhausted
        assert dpor.schedules_run == 1, "all steps commute: a single class"
        assert naive.schedules_run > 1

    def test_reduction_on_philosophers(self):
        naive = explore(program("lab6", "broken"), max_schedules=100_000)
        dpor = explore(program("lab6", "broken"), max_schedules=100_000, strategy="dpor")
        assert naive.exhausted and dpor.exhausted
        assert dpor.schedules_run * 10 <= naive.schedules_run
        assert dpor.finding_set() == naive.finding_set()

    def test_naive_branch_points_estimate(self):
        dpor = explore(racy_counter_factory, max_schedules=10_000, strategy="dpor")
        assert dpor.naive_branch_points >= dpor.schedules_run - 1
        assert dpor.algorithm == "dpor"


class TestStopReasons:
    def test_schedule_budget(self):
        result = explore(ab_ba_factory, max_schedules=3, strategy="dpor")
        assert result.stop_reason == STOP_SCHEDULE_BUDGET
        assert not result.exhausted

    def test_stop_on_first(self):
        result = explore(
            ab_ba_factory, max_schedules=1000, stop_on_first=True, strategy="dpor"
        )
        assert result.stop_reason == STOP_ON_FIRST
        assert len(result.deadlocks) == 1

    def test_wall_clock(self):
        result = explore(
            program("lab7", "fixed"), max_schedules=10**9, max_seconds=0.0,
            strategy="dpor",
        )
        assert result.stop_reason == STOP_WALL_CLOCK

    def test_naive_budget_reason(self):
        result = explore(ab_ba_factory, max_schedules=3)
        assert result.stop_reason == STOP_SCHEDULE_BUDGET
        assert not result.exhausted

    def test_exhausted_reason(self):
        result = explore(ab_ba_factory, max_schedules=1000)
        assert result.stop_reason == STOP_EXHAUSTED and result.exhausted


class TestRaceDedup:
    def test_add_race_sorted_unique(self):
        res = ExplorationResult()
        assert res.add_race("b") and res.add_race("a")
        assert not res.add_race("a"), "duplicate must be dropped"
        assert res.races == ["a", "b"]

    def test_races_stable_across_runs(self):
        first = explore(racy_counter_factory, max_schedules=10_000)
        second = explore(racy_counter_factory, max_schedules=10_000)
        dpor = explore(racy_counter_factory, max_schedules=10_000, strategy="dpor")
        assert first.races == second.races
        assert first.races == sorted(set(first.races))
        assert set(dpor.races) == set(first.races)


class TestMerge:
    def test_counters_add_and_findings_union(self):
        a = ExplorationResult(schedules_run=2, states_explored=10)
        a.deadlocks.append(((0,), "dl"))
        a.add_race("r1")
        b = ExplorationResult(schedules_run=3, states_explored=5, pruned=1)
        b.deadlocks.append(((0,), "dl"))  # duplicate
        b.violations.append(((1,), "bad"))
        b.add_race("r0")
        a.merge(b)
        assert a.schedules_run == 5 and a.states_explored == 15 and a.pruned == 1
        assert a.deadlocks == [((0,), "dl")]
        assert a.violations == [((1,), "bad")]
        assert a.races == ["r0", "r1"]

    def test_worst_reason_wins(self):
        a = ExplorationResult(stop_reason=STOP_EXHAUSTED)
        b = ExplorationResult(stop_reason=STOP_SCHEDULE_BUDGET)
        a.merge(b)
        assert a.stop_reason == STOP_SCHEDULE_BUDGET
        c = ExplorationResult(stop_reason=STOP_WALL_CLOCK)
        a.merge(c)
        assert a.stop_reason == STOP_WALL_CLOCK


class TestPartitionedExploration:
    """The worker-facing DporExplorer API the distributed driver uses."""

    def test_explore_branches_covers_subtrees(self):
        seed = DporExplorer(ab_ba_factory)
        seed_result = seed.run(max_schedules=2)
        branches = seed.take_frontier()
        assert branches, "a tiny seed budget must leave pending branches"

        merged = ExplorationResult(algorithm="dpor").merge(seed_result)
        pending = branches
        dispatched = set()
        while pending:
            fresh = [b for b in pending if b.tids not in dispatched]
            dispatched.update(b.tids for b in fresh)
            pending = []
            for b in fresh:
                worker = DporExplorer(ab_ba_factory)
                merged.merge(worker.explore_branches([b], max_schedules=1000))
                pending.extend(worker.escaped)
                pending.extend(worker.take_frontier())

        solo = explore(ab_ba_factory, max_schedules=1000, strategy="dpor")
        assert merged.finding_set() == solo.finding_set()

    def test_non_owned_backtracks_escape(self):
        seed = DporExplorer(ab_ba_factory)
        seed.run(max_schedules=2)
        branches = seed.take_frontier()
        worker = DporExplorer(ab_ba_factory)
        worker.explore_branches(list(branches), max_schedules=1000)
        for esc in worker.escaped:
            assert not any(
                esc.tids[: len(b.tids)] == b.tids for b in branches
            ), "escaped branches must lie outside the owned subtrees"

    def test_branch_defaults(self):
        b = Branch()
        assert b.tids == () and b.sleep == ()


class TestDynamicCorpus:
    def test_dpor_corpus_clean(self):
        from repro.analysis.corpus import check_dynamic_corpus

        for case, _result, problems in check_dynamic_corpus("dpor"):
            assert not problems, f"{case.lab_id}/{case.variant}: {problems}"
