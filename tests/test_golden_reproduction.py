"""Golden regression values for the headline reproduction.

Determinism is a design goal (DESIGN.md §6): the tables EXPERIMENTS.md
publishes must regenerate *exactly* until someone deliberately changes
the models.  If you change the student model, grading, or any seeded
substream and these fail, that is working as intended — re-run the
benches, review the new tables, and update both EXPERIMENTS.md and the
values here in the same commit.
"""

import pytest

from repro.education import SemesterSimulation
from repro.education.semester import DEFAULT_SEED

#: Table 1 at the default seed — rates are multiples of 1/19.
GOLDEN_LAB_RATES = {
    "lab1": 10 / 19,
    "lab2": 14 / 19,
    "lab3": 7 / 19,
    "lab4": 7 / 19,
    "lab5": 12 / 19,
    "lab6": 10 / 19,
    "lab7": 13 / 19,
}

#: Table 2 at the default seed.
GOLDEN_EXAM_RATES = {
    "midterm_all": 2 / 19,
    "midterm_passers": 1 / 5,
    "final_all": 4 / 19,
    "final_passers": 4 / 5,
}

GOLDEN_COURSE_PASS_RATE = 5 / 19


@pytest.fixture(scope="module")
def report():
    return SemesterSimulation(DEFAULT_SEED).run()


def test_table1_golden(report):
    for lab_id, expected in GOLDEN_LAB_RATES.items():
        assert report.lab_rates[lab_id] == pytest.approx(expected), lab_id


def test_table2_golden(report):
    measured = report.exam_rates.as_dict()
    for key, expected in GOLDEN_EXAM_RATES.items():
        assert measured[key] == pytest.approx(expected), key


def test_course_pass_rate_golden(report):
    assert report.course_pass_rate == pytest.approx(GOLDEN_COURSE_PASS_RATE)


def test_survey_means_golden_shape(report):
    """Survey means are pinned loosely (one discretised response of 19
    moving shifts a mean by ~0.05; exact pinning here would make every
    survey-model tweak a two-file change with no information gain)."""
    golden = {
        "Q1": (3.05, 1.89), "Q2": (2.74, 2.42), "Q3": (1.26, 1.37),
        "Q4": (1.63, 1.53), "Q5": (2.05, 3.11), "Q6": (2.53, 2.95),
    }
    for qid, (entrance, exit_) in golden.items():
        got_in, got_out = report.survey_means[qid]
        assert got_in == pytest.approx(entrance, abs=0.01), qid
        assert got_out == pytest.approx(exit_, abs=0.01), qid
