"""File-manager behaviour including path-traversal defence."""

import pytest

from repro._errors import FileManagerError, PathTraversalError
from repro.portal import FileManager


@pytest.fixture
def fm(tmp_path):
    return FileManager(tmp_path / "homes")


class TestBasics:
    def test_home_created_on_demand(self, fm):
        home = fm.home("alice")
        assert home.is_dir() and home.name == "alice"

    def test_write_read_roundtrip(self, fm):
        fm.write("alice", "notes.txt", "hello")
        assert fm.read("alice", "notes.txt") == b"hello"

    def test_write_into_nested_dirs(self, fm):
        fm.write("alice", "a/b/c.txt", b"deep")
        assert fm.read("alice", "a/b/c.txt") == b"deep"

    def test_read_missing_raises(self, fm):
        with pytest.raises(FileManagerError):
            fm.read("alice", "nope.txt")

    def test_users_isolated(self, fm):
        fm.write("alice", "f.txt", "alice data")
        fm.write("bob", "f.txt", "bob data")
        assert fm.read("alice", "f.txt") == b"alice data"
        assert fm.read("bob", "f.txt") == b"bob data"

    def test_oversized_upload_rejected(self, fm):
        with pytest.raises(FileManagerError):
            fm.write("alice", "big.bin", b"x" * (17 * 1024 * 1024))

    def test_usage_accounting(self, fm):
        fm.write("alice", "a.bin", b"x" * 100)
        fm.write("alice", "d/b.bin", b"y" * 50)
        assert fm.usage_bytes("alice") == 150


class TestListing:
    def test_dirs_first_then_names(self, fm):
        fm.write("alice", "zz.txt", "z")
        fm.write("alice", "aa.txt", "a")
        fm.mkdir("alice", "middle")
        names = [e.name for e in fm.list_dir("alice")]
        assert names == ["middle", "aa.txt", "zz.txt"]

    def test_entry_metadata(self, fm):
        fm.write("alice", "f.txt", b"12345")
        entry = fm.list_dir("alice")[0]
        assert entry.size == 5 and not entry.is_dir and entry.path == "f.txt"
        assert entry.as_dict()["name"] == "f.txt"

    def test_list_subdirectory(self, fm):
        fm.write("alice", "sub/inner.txt", "x")
        entries = fm.list_dir("alice", "sub")
        assert [e.name for e in entries] == ["inner.txt"]

    def test_list_file_raises(self, fm):
        fm.write("alice", "f.txt", "x")
        with pytest.raises(FileManagerError):
            fm.list_dir("alice", "f.txt")


class TestManipulation:
    def test_copy_file(self, fm):
        fm.write("alice", "src.txt", "data")
        fm.copy("alice", "src.txt", "dst.txt")
        assert fm.read("alice", "dst.txt") == b"data"
        assert fm.read("alice", "src.txt") == b"data"  # source untouched

    def test_copy_tree(self, fm):
        fm.write("alice", "proj/main.c", "x")
        fm.copy("alice", "proj", "proj2")
        assert fm.read("alice", "proj2/main.c") == b"x"

    def test_copy_onto_existing_rejected(self, fm):
        fm.write("alice", "a.txt", "1")
        fm.write("alice", "b.txt", "2")
        with pytest.raises(FileManagerError):
            fm.copy("alice", "a.txt", "b.txt")

    def test_move(self, fm):
        fm.write("alice", "old/f.txt", "move me")
        fm.move("alice", "old/f.txt", "new/g.txt")
        assert fm.read("alice", "new/g.txt") == b"move me"
        with pytest.raises(FileManagerError):
            fm.read("alice", "old/f.txt")

    def test_rename_in_place(self, fm):
        fm.write("alice", "d/a.txt", "x")
        new_path = fm.rename("alice", "d/a.txt", "b.txt")
        assert new_path == "d/b.txt"
        assert fm.read("alice", "d/b.txt") == b"x"

    @pytest.mark.parametrize("bad", ["", ".", "..", "x/y"])
    def test_rename_invalid_names(self, fm, bad):
        fm.write("alice", "f.txt", "x")
        with pytest.raises(FileManagerError):
            fm.rename("alice", "f.txt", bad)

    def test_rename_collision_rejected(self, fm):
        fm.write("alice", "a.txt", "1")
        fm.write("alice", "b.txt", "2")
        with pytest.raises(FileManagerError):
            fm.rename("alice", "a.txt", "b.txt")

    def test_delete_file_and_tree(self, fm):
        fm.write("alice", "f.txt", "x")
        fm.write("alice", "d/g.txt", "y")
        fm.delete("alice", "f.txt")
        fm.delete("alice", "d")
        assert fm.list_dir("alice") == []

    def test_delete_home_refused(self, fm):
        fm.home("alice")
        with pytest.raises(FileManagerError):
            fm.delete("alice", "")

    def test_mkdir_existing_rejected(self, fm):
        fm.mkdir("alice", "d")
        with pytest.raises(FileManagerError):
            fm.mkdir("alice", "d")


class TestTraversalDefence:
    TRAVERSALS = [
        "../bob/secret.txt",
        "../../etc/passwd",
        "a/../../bob/f",
        "..",
        "d/../../../root",
    ]  # absolute paths are exercised separately: they are defanged, not rejected

    @pytest.mark.parametrize("path", TRAVERSALS)
    def test_escapes_rejected_everywhere(self, fm, path):
        fm.write("bob", "secret.txt", "classified")
        for op in (
            lambda: fm.read("alice", path),
            lambda: fm.write("alice", path, b"x"),
            lambda: fm.delete("alice", path),
            lambda: fm.list_dir("alice", path),
        ):
            with pytest.raises(FileManagerError):  # PathTraversalError subclass
                op()

    def test_traversal_error_is_specific_type(self, fm):
        with pytest.raises(PathTraversalError):
            fm.resolve("alice", "../bob")

    def test_symlink_escape_blocked(self, fm, tmp_path):
        outside = tmp_path / "outside.txt"
        outside.write_text("secret")
        link = fm.home("alice") / "link"
        link.symlink_to(outside)
        with pytest.raises(PathTraversalError):
            fm.resolve("alice", "link")

    @pytest.mark.parametrize("bad_user", ["", ".", "..", "a/b"])
    def test_invalid_usernames_rejected(self, fm, bad_user):
        with pytest.raises(FileManagerError):
            fm.home(bad_user)

    def test_absolute_path_treated_as_relative(self, fm):
        # "/etc/passwd" must never reach the real /etc; stripping the
        # leading slash keeps it inside the home.
        fm.write("alice", "/inside.txt", b"ok")
        assert fm.read("alice", "inside.txt") == b"ok"
