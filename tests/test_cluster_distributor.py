"""The job distributor: allocate → dispatch → free, with every backend."""

import numpy as np
import pytest

from repro._errors import JobError, SchedulingError
from repro.cluster import (
    BackfillScheduler,
    ClusterSpec,
    FIFOScheduler,
    Grid,
    JobDistributor,
    JobKind,
    JobRequest,
    JobState,
    PriorityScheduler,
    SimulatedBackend,
    SubprocessBackend,
)
from repro.desim import Simulator


class TestSimulatedPipeline:
    def test_jobs_complete_and_free_resources(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        jobs = [dist.submit(JobRequest(name=f"j{i}", sim_duration=5.0)) for i in range(20)]
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert small_grid.cores_free == small_grid.cores_total

    def test_queue_drains_as_capacity_frees(self, sim):
        grid = Grid(ClusterSpec.small(segments=1, slaves=1, cores=1))  # one core!
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        jobs = [dist.submit(JobRequest(name=f"j{i}", sim_duration=10.0)) for i in range(3)]
        # Only one can run at a time; the rest queue.
        states = [j.state for j in jobs]
        assert states.count(JobState.RUNNING) == 1 and states.count(JobState.QUEUED) == 2
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # Serial execution: total virtual time is 3 x 10s.
        assert sim.now == pytest.approx(30.0)

    def test_wait_times_recorded(self, sim):
        grid = Grid(ClusterSpec.small(segments=1, slaves=1, cores=1))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        j1 = dist.submit(JobRequest(name="first", sim_duration=10.0))
        j2 = dist.submit(JobRequest(name="second", sim_duration=10.0))
        sim.run()
        assert j1.wait_s == 0.0
        assert j2.wait_s == pytest.approx(10.0)

    def test_parallel_job_spans_nodes(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        job = dist.submit(
            JobRequest(name="p", sim_duration=1.0, kind=JobKind.PARALLEL, n_tasks=4, cores_per_task=2)
        )
        assert sum(job.placement.values()) == 8
        assert len(job.placement) == 4  # 2 cores per node
        sim.run()
        assert job.state is JobState.COMPLETED

    def test_monitor_accounting(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        for i in range(10):
            dist.submit(JobRequest(name=f"j{i}", sim_duration=2.0))
        sim.run()
        summary = dist.monitor.summary()
        assert summary["jobs_finished"] == 10
        assert summary["by_state"] == {"completed": 10}
        assert summary["core_seconds"] == pytest.approx(20.0)


class TestValidation:
    def test_impossible_core_shape_rejected(self, sim_distributor):
        with pytest.raises(SchedulingError):
            sim_distributor.submit(
                JobRequest(name="fat", sim_duration=1.0, cores_per_task=64)
            )

    def test_oversized_job_rejected(self, sim_distributor):
        with pytest.raises(SchedulingError):
            sim_distributor.submit(
                JobRequest(name="huge", sim_duration=1.0, kind=JobKind.PARALLEL, n_tasks=1000)
            )

    def test_gpu_job_rejected_without_gpus(self, sim_distributor):
        with pytest.raises(SchedulingError):
            sim_distributor.submit(JobRequest(name="g", sim_duration=1.0, need_gpu=True))

    def test_unknown_job_lookup(self, sim_distributor):
        with pytest.raises(JobError):
            sim_distributor.job("nope")


class TestCancel:
    def test_cancel_queued_job(self, sim):
        grid = Grid(ClusterSpec.small(segments=1, slaves=1, cores=1))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        dist.submit(JobRequest(name="running", sim_duration=10.0))
        waiting = dist.submit(JobRequest(name="waiting", sim_duration=10.0))
        assert dist.cancel(waiting.id)
        assert waiting.state is JobState.CANCELLED
        sim.run()
        assert waiting.state is JobState.CANCELLED  # never resurrected

    def test_cancel_terminal_returns_false(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        job = dist.submit(JobRequest(name="j", sim_duration=1.0))
        sim.run()
        assert job.state is JobState.COMPLETED
        assert not dist.cancel(job.id)

    def test_cancel_unknown_raises(self, sim_distributor):
        with pytest.raises(JobError):
            sim_distributor.cancel("job-999999")


class TestPolicyIntegration:
    def _run_workload(self, scheduler, n_jobs=40, seed=7):
        sim = Simulator()
        grid = Grid(ClusterSpec.small(segments=2, slaves=4, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), scheduler, now_fn=lambda: sim.now)
        rng = np.random.default_rng(seed)
        for i in range(n_jobs):
            wide = i % 5 == 0
            dist.submit(
                JobRequest(
                    name=f"j{i}",
                    sim_duration=float(rng.uniform(1, 8)),
                    kind=JobKind.PARALLEL if wide else JobKind.SEQUENTIAL,
                    n_tasks=6 if wide else 1,
                    est_runtime_s=float(rng.uniform(1, 8)),
                    priority=int(rng.integers(0, 3)),
                )
            )
        sim.run()
        return dist

    @pytest.mark.parametrize("scheduler", [FIFOScheduler(), PriorityScheduler(), BackfillScheduler()])
    def test_all_policies_complete_all_jobs(self, scheduler):
        dist = self._run_workload(scheduler)
        assert dist.stats()["jobs"] == {"completed": 40}
        assert dist.grid.cores_free == dist.grid.cores_total

    def test_backfill_reduces_mean_wait_vs_fifo(self):
        fifo = self._run_workload(FIFOScheduler())
        backfill = self._run_workload(BackfillScheduler())
        assert backfill.monitor.summary()["mean_wait_s"] <= fifo.monitor.summary()["mean_wait_s"]


class TestCallableBackend:
    def test_sequential_callable(self, callable_distributor):
        job = callable_distributor.submit(
            JobRequest(name="c", callable=lambda job: 7 * 6)
        )
        assert callable_distributor.wait_all(10)
        assert job.state is JobState.COMPLETED and job.result == 42

    def test_failing_callable_marks_failed(self, callable_distributor):
        def boom(job):
            raise RuntimeError("broke")

        job = callable_distributor.submit(JobRequest(name="c", callable=boom))
        assert callable_distributor.wait_all(10)
        assert job.state is JobState.FAILED
        assert "broke" in job.error
        assert "RuntimeError" in job.stderr.text()

    def test_parallel_callable_runs_minimpi(self, callable_distributor):
        def program(comm):
            return comm.allreduce(comm.rank)

        job = callable_distributor.submit(
            JobRequest(name="mpi", callable=program, kind=JobKind.PARALLEL, n_tasks=4)
        )
        assert callable_distributor.wait_all(30)
        assert job.state is JobState.COMPLETED
        assert job.result == [6, 6, 6, 6]


class TestSubprocessBackend:
    def test_runs_real_process(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(
            JobRequest(name="py", argv=["python3", "-c", "print('out'); import sys; print('err', file=sys.stderr)"])
        )
        assert dist.wait_all(30)
        assert job.state is JobState.COMPLETED
        assert job.stdout.tail() == ["out"]
        assert job.stderr.tail() == ["err"]

    def test_nonzero_exit_marks_failed(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(JobRequest(name="bad", argv=["python3", "-c", "raise SystemExit(3)"]))
        assert dist.wait_all(30)
        assert job.state is JobState.FAILED and job.exit_code == 3

    def test_stdin_delivered(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(
            JobRequest(
                name="echo",
                argv=["python3", "-c", "print(input()[::-1])"],
                stdin_data="hello\n",
            )
        )
        assert dist.wait_all(30)
        assert job.stdout.tail() == ["olleh"]

    def test_timeout_kills_process(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(
            JobRequest(name="sleep", argv=["python3", "-c", "import time; time.sleep(60)"],
                       timeout_s=0.5)
        )
        assert dist.wait_all(30)
        assert job.state is JobState.TIMEOUT

    def test_parallel_tasks_get_rank_env(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(
            JobRequest(
                name="ranks",
                argv=["python3", "-c", "import os; print(os.environ['REPRO_RANK'], os.environ['REPRO_SIZE'])"],
                kind=JobKind.PARALLEL,
                n_tasks=3,
            )
        )
        assert dist.wait_all(30)
        lines = sorted(job.stdout.tail(10))
        assert any("0 3" in l for l in lines)
        assert any("2 3" in l for l in lines)

    def test_missing_binary_fails_cleanly(self, small_grid):
        dist = JobDistributor(small_grid, SubprocessBackend())
        job = dist.submit(JobRequest(name="none", argv=["/does/not/exist"]))
        assert dist.wait_all(30)
        assert job.state is JobState.FAILED and "launch failed" in job.error
