"""Cache geometry, LRU, and state bookkeeping."""

import pytest

from repro.memsim import Cache, CacheConfig, LineState


class TestConfig:
    def test_size_computation(self):
        cfg = CacheConfig(sets=64, ways=2, line_size=64)
        assert cfg.size_bytes == 8192

    @pytest.mark.parametrize("field", ["sets", "ways", "line_size"])
    def test_non_power_of_two_rejected(self, field):
        with pytest.raises(ValueError):
            CacheConfig(**{field: 3})

    def test_split_roundtrip(self):
        cfg = CacheConfig(sets=16, ways=2, line_size=32)
        addr = 5 * 32 * 16 + 7 * 32 + 13  # tag=5, set=7, offset=13
        set_idx, tag = cfg.split(addr)
        assert (set_idx, tag) == (7, 5)
        assert cfg.line_address(addr) == addr - 13


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig())
        assert cache.lookup(0) is None
        cache.fill(0, LineState.SHARED)
        line = cache.lookup(0)
        assert line is not None and line.state is LineState.SHARED

    def test_same_line_different_offsets_hit(self):
        cfg = CacheConfig(line_size=64)
        cache = Cache(cfg)
        cache.fill(cfg.line_address(100), LineState.EXCLUSIVE)
        assert cache.lookup(cfg.line_address(70)) is not None  # same line as 100? no!
        # addresses 64..127 share one line:
        assert cache.lookup(cfg.line_address(127)) is not None

    def test_lru_evicts_least_recent(self):
        cfg = CacheConfig(sets=1, ways=2, line_size=16)
        cache = Cache(cfg)
        cache.fill(0 * 16, LineState.SHARED)     # A
        cache.fill(1 * 16, LineState.SHARED)     # B
        line_a = cache.lookup(0)
        cache.touch(line_a)                      # A is now MRU
        cache.fill(2 * 16, LineState.SHARED)     # evicts B (LRU)
        assert cache.lookup(0 * 16) is not None
        assert cache.lookup(1 * 16) is None
        assert cache.lookup(2 * 16) is not None

    def test_modified_eviction_reports_writeback(self):
        cfg = CacheConfig(sets=1, ways=1, line_size=16)
        cache = Cache(cfg)
        cache.fill(0, LineState.MODIFIED)
        _, wrote_back = cache.fill(16, LineState.SHARED)
        assert wrote_back and cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cfg = CacheConfig(sets=1, ways=1, line_size=16)
        cache = Cache(cfg)
        cache.fill(0, LineState.SHARED)
        _, wrote_back = cache.fill(16, LineState.SHARED)
        assert not wrote_back and cache.evictions == 1

    def test_invalidate_removes_line(self):
        cache = Cache(CacheConfig())
        cache.fill(0, LineState.SHARED)
        assert cache.invalidate(0)
        assert cache.state_of(0) is LineState.INVALID
        assert not cache.invalidate(0)  # second invalidate is a no-op

    def test_occupancy_counts_valid_lines(self):
        cfg = CacheConfig(sets=4, ways=2, line_size=16)
        cache = Cache(cfg)
        for i in range(5):
            cache.fill(i * 16, LineState.SHARED)
        assert cache.occupancy == 5
