"""UMA/NUMA machine model."""

import numpy as np
import pytest

from repro._errors import SimulationError
from repro.memsim import NumaConfig, NumaMachine, PagePlacement


class TestGeometry:
    def test_socket_of_core(self):
        m = NumaMachine(NumaConfig(n_sockets=2, cores_per_socket=4))
        assert m.socket_of_core(0) == 0
        assert m.socket_of_core(3) == 0
        assert m.socket_of_core(4) == 1

    def test_core_out_of_range(self):
        m = NumaMachine(NumaConfig(n_sockets=2, cores_per_socket=2))
        with pytest.raises(SimulationError):
            m.socket_of_core(4)

    def test_ring_hop_distance(self):
        m = NumaMachine(NumaConfig(n_sockets=4, cores_per_socket=1))
        assert m.hop_distance(0, 0) == 0
        assert m.hop_distance(0, 1) == 1
        assert m.hop_distance(0, 2) == 2
        assert m.hop_distance(0, 3) == 1  # ring wraps

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            NumaConfig(n_sockets=0)
        with pytest.raises(ValueError):
            NumaConfig(local_latency_ns=0)


class TestPlacementPolicies:
    def test_local_always_local_latency(self):
        cfg = NumaConfig(n_sockets=2, local_latency_ns=100, hop_latency_ns=80)
        m = NumaMachine(cfg, PagePlacement.LOCAL)
        assert m.access(0, 5) == 100.0
        assert m.access(7, 5) == 100.0  # other socket, still "local"

    def test_remote_pays_hop_latency(self):
        cfg = NumaConfig(n_sockets=2, local_latency_ns=100, hop_latency_ns=80)
        m = NumaMachine(cfg, PagePlacement.REMOTE)
        assert m.access(0, 5) == 180.0

    def test_interleaved_alternates_homes(self):
        cfg = NumaConfig(n_sockets=2, cores_per_socket=1)
        m = NumaMachine(cfg, PagePlacement.INTERLEAVED)
        assert m.home_of(0) == 0 and m.home_of(1) == 1 and m.home_of(2) == 0

    def test_first_touch_claims_for_accessor(self):
        cfg = NumaConfig(n_sockets=2, cores_per_socket=2)
        m = NumaMachine(cfg, PagePlacement.FIRST_TOUCH)
        assert m.home_of(9) == -1
        m.access(2, 9)  # core 2 = socket 1
        assert m.home_of(9) == 1
        # second toucher does not steal the page
        m.access(0, 9)
        assert m.home_of(9) == 1

    def test_explicit_pinning(self):
        cfg = NumaConfig(n_sockets=2)
        m = NumaMachine(cfg, PagePlacement.FIRST_TOUCH)
        m.place_page(3, 1)
        assert m.home_of(3) == 1
        lat = m.access(0, 3)  # socket 0 reads socket 1's page
        assert lat == cfg.local_latency_ns + cfg.hop_latency_ns

    def test_uma_machine_flat_latency(self):
        m = NumaMachine(NumaConfig(n_sockets=1, cores_per_socket=8), PagePlacement.FIRST_TOUCH)
        assert m.is_uma()
        lats = {m.access(c, p) for c in range(8) for p in range(10)}
        assert lats == {m.config.local_latency_ns}


class TestVectorisedAccess:
    def test_block_matches_scalar(self):
        cfg = NumaConfig(n_sockets=2, n_pages=64)
        scalar = NumaMachine(cfg, PagePlacement.INTERLEAVED)
        block = NumaMachine(cfg, PagePlacement.INTERLEAVED)
        pages = np.arange(64)
        scalar_lats = np.array([scalar.access(0, int(p)) for p in pages])
        block_lats = block.access_block(0, pages)
        assert np.array_equal(scalar_lats, block_lats)
        assert scalar.stats.accesses == block.stats.accesses
        assert scalar.stats.total_latency_ns == pytest.approx(block.stats.total_latency_ns)

    def test_block_first_touch_claims_pages(self):
        cfg = NumaConfig(n_sockets=2, cores_per_socket=2, n_pages=32)
        m = NumaMachine(cfg, PagePlacement.FIRST_TOUCH)
        m.access_block(3, np.arange(16))  # core 3 = socket 1
        assert all(m.home_of(p) == 1 for p in range(16))

    def test_block_out_of_range_rejected(self):
        m = NumaMachine(NumaConfig(n_pages=16))
        with pytest.raises(SimulationError):
            m.access_block(0, np.array([99]))

    def test_empty_block_ok(self):
        m = NumaMachine()
        assert m.access_block(0, np.array([], dtype=np.int64)).size == 0


class TestStats:
    def test_remote_fraction(self):
        cfg = NumaConfig(n_sockets=2, n_pages=100)
        m = NumaMachine(cfg, PagePlacement.INTERLEAVED)
        m.access_block(0, np.arange(100))
        assert m.stats.remote_fraction == pytest.approx(0.5)
        assert m.stats.mean_latency_ns == pytest.approx(
            cfg.local_latency_ns + 0.5 * cfg.hop_latency_ns
        )
