"""Telemetry subsystem: registry, histograms, tracing, export, wiring.

Covers the metric primitives (bucket boundary semantics, snapshot
merging, label plumbing), the virtual-vs-wall clock contract under the
DES backend, span parent/child integrity across a retried job, the
``GET /metrics`` endpoint (content type, cache bypass), and the
NullRegistry off-switch.
"""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.cluster import (
    CallableBackend,
    ClusterSpec,
    Grid,
    JobDistributor,
    JobRequest,
    JobState,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.portal.app import make_default_app
from repro.portal.client import PortalClient
from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    EventLog,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    default_buckets,
    render_json,
    render_prometheus,
)
from repro.telemetry.instruments import DISPATCH_KEYS, FAULT_KINDS
from repro.telemetry.registry import Histogram, HistogramSnapshot


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_counts_exact_ints(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_hits_total", "hits")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert isinstance(c.value, int)  # stats() adapters promise exact ints

    def test_counter_set_fn_reads_at_snapshot_time(self):
        reg = MetricsRegistry()
        backing = {"n": 0}
        reg.counter("repro_test_derived_total").set_fn(lambda: backing["n"])
        backing["n"] = 7
        ((_, value),) = reg.snapshot()["repro_test_derived_total"]["series"]
        assert value == 7

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_depth")
        g.set(5.0)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_labelled_children_are_cached_and_coerced(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_test_by_state_total", labels=("state",))
        a = fam.labels("done")
        assert fam.labels("done") is a
        fam.labels(200).inc()  # non-str label values coerce to str
        assert fam.labels("200").value == 1

    def test_label_arity_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_test_pairs_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_reregistration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_test_once_total")
        assert reg.counter("repro_test_once_total") is fam
        with pytest.raises(ValueError):
            reg.gauge("repro_test_once_total")  # kind conflict
        with pytest.raises(ValueError):
            reg.counter("repro_test_once_total", labels=("x",))  # label conflict

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        assert reg.enabled is False
        c = reg.counter("anything")
        c.inc()
        c.labels("x").observe(1.0)  # every op is a no-op on the shared child
        assert c.value == 0
        assert reg.snapshot() == {}


# ---------------------------------------------------------------------------
# histogram semantics
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_boundary_value_lands_in_its_le_bucket(self):
        # Prometheus buckets are le-inclusive: an observation exactly on a
        # bound belongs to that bound's bucket, not the next one up.
        h = Histogram(default_buckets())
        h.observe(1.0)  # 1.0 == 10**0 is one of the bounds
        for le, cumulative in h.value.cumulative():
            assert cumulative == (1 if le >= 1.0 else 0)

    def test_extremes_hit_first_and_overflow_buckets(self):
        bounds = default_buckets()
        h = Histogram(bounds)
        h.observe(1e-9)  # below the smallest bound (1e-6)
        h.observe(1e9)  # above the largest bound (1e6) -> +Inf bucket
        snap = h.value
        assert snap.counts[0] == 1
        assert snap.counts[-1] == 1
        assert snap.count == 2
        assert snap.sum == pytest.approx(1e9 + 1e-9)
        # +Inf cumulative always equals the total count
        assert snap.cumulative()[-1] == (math.inf, 2)

    def test_merge_adds_counts_and_sums(self):
        a, b = Histogram(default_buckets()), Histogram(default_buckets())
        for v in (0.001, 0.01, 5.0):
            a.observe(v)
        b.observe(0.01)
        merged = a.value.merge(b.value)
        assert merged.count == 4
        assert merged.sum == pytest.approx(5.021)
        # the 0.01 bucket saw one observation from each side
        by_le = dict(merged.cumulative())
        assert by_le[0.01] - by_le[0.001] == 2

    def test_merge_rejects_mismatched_bounds(self):
        a = HistogramSnapshot((1.0,), (0, 0), 0.0, 0)
        b = HistogramSnapshot((2.0,), (0, 0), 0.0, 0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_quantile_is_bucket_resolution(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0):
            h.observe(v)
        snap = h.value
        assert snap.quantile(0.25) == 1.0
        assert snap.quantile(0.75) == 10.0
        assert snap.quantile(1.0) == 100.0
        assert Histogram((1.0,)).value.quantile(0.5) is None
        with pytest.raises(ValueError):
            snap.quantile(1.5)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
class TestExport:
    def test_prometheus_text_counters_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_reqs_total", "requests", labels=("route",)).labels(
            "/jobs"
        ).inc(3)
        text = render_prometheus(reg.snapshot())
        assert "# HELP repro_test_reqs_total requests\n" in text
        assert "# TYPE repro_test_reqs_total counter\n" in text
        assert 'repro_test_reqs_total{route="/jobs"} 3\n' in text

    def test_prometheus_text_histogram_lines(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert 'repro_test_lat_seconds_bucket{le="0.1"} 0\n' in text
        assert 'repro_test_lat_seconds_bucket{le="1"} 1\n' in text
        assert 'repro_test_lat_seconds_bucket{le="+Inf"} 1\n' in text
        assert "repro_test_lat_seconds_sum 0.5\n" in text
        assert "repro_test_lat_seconds_count 1\n" in text

    def test_prometheus_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_esc_total", labels=("v",)).labels('a"b\\c\nd').inc()
        text = render_prometheus(reg.snapshot())
        assert 'v="a\\"b\\\\c\\nd"' in text

    def test_json_render_is_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_c_total").inc(2)
        reg.histogram("repro_test_h_seconds", buckets=(1.0,)).observe(0.5)
        data = json.loads(json.dumps(render_json(reg.snapshot())))
        assert data["repro_test_c_total"]["series"][0]["value"] == 2
        hist = data["repro_test_h_seconds"]["series"][0]["histogram"]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"


# ---------------------------------------------------------------------------
# tracing + events
# ---------------------------------------------------------------------------
class TestTracerAndEvents:
    def test_span_tree_and_durations(self):
        t = {"now": 0.0}
        tracer = Tracer(lambda: t["now"])
        root = tracer.start("job", "j-1")
        child = root.child("attempt-1", 1.0).set(node="n0")
        assert child.duration is None  # still open
        child.finish(3.0)
        root.finish(3.5)
        d = root.as_dict()
        assert d["duration_s"] == pytest.approx(3.5)
        assert d["children"][0]["name"] == "attempt-1"
        assert d["children"][0]["attrs"] == {"node": "n0"}
        assert d["children"][0]["duration_s"] == pytest.approx(2.0)

    def test_tracer_evicts_oldest(self):
        tracer = Tracer(lambda: 0.0, capacity=2)
        for i in range(3):
            tracer.start("job", f"j-{i}")
        assert len(tracer) == 2
        assert tracer.get("j-0") is None
        assert tracer.get("j-2") is not None

    def test_event_log_ring_and_filter(self):
        log = EventLog(lambda: 0.0, capacity=3)
        for i in range(5):
            log.emit("info", f"e{i}")
        log.emit("error", "boom")
        events = log.snapshot()
        assert len(events) == 3  # ring bound: oldest dropped
        assert events[-1].name == "boom"
        assert [e.name for e in log.snapshot(min_severity="error")] == ["boom"]
        with pytest.raises(ValueError):
            log.emit("loud", "nope")


# ---------------------------------------------------------------------------
# distributor wiring: virtual clock, span lineage, stats adapters
# ---------------------------------------------------------------------------
def des_distributor(segments=2, slaves=4, cores=2, **kwargs):
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=segments, slaves=slaves, cores=cores))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, **kwargs
    )
    return sim, dist


class TestDistributorTelemetry:
    def test_queue_waits_are_virtual_seconds(self):
        # 32 one-core jobs on 16 cores: half start at t=0, half wait
        # exactly 1.0 *virtual* seconds.  Wall time is irrelevant — the
        # telemetry clock is the distributor's now_fn.
        sim, dist = des_distributor()
        jobs = [
            dist.submit(JobRequest(name=f"j{i}", sim_duration=1.0, cores_per_task=1))
            for i in range(32)
        ]
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        snap = dist.telemetry.h_queue_wait.value
        assert snap.count == 32
        assert snap.sum == pytest.approx(16.0)
        # run times are virtual too: 32 attempts of exactly 1.0s
        run = dist.telemetry.h_run.value
        assert run.count == 32
        assert run.sum == pytest.approx(32.0)

    def test_spans_are_stamped_with_virtual_time(self):
        # one 2-core node: the second job waits for the first to finish
        sim, dist = des_distributor(segments=1, slaves=1, cores=2)
        jobs = [
            dist.submit(JobRequest(name=f"j{i}", sim_duration=2.0, cores_per_task=2))
            for i in range(2)
        ]
        sim.run()
        second = dist.telemetry.job_trace(jobs[1])
        assert second.start == 0.0  # submitted at virtual t=0
        assert second.end == pytest.approx(4.0)  # waited 2.0, ran 2.0
        (wait, attempt) = second.children
        assert wait.name == "queue_wait"
        assert wait.duration == pytest.approx(2.0)
        assert attempt.name == "attempt-1"
        assert attempt.duration == pytest.approx(2.0)
        assert attempt.attrs["outcome"] == "completed"

    def test_retried_job_has_sibling_attempt_spans(self, small_grid):
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError(f"transient #{calls['n']}")
            return "ok"

        dist = JobDistributor(
            small_grid,
            CallableBackend(),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, jitter=0.0),
        )
        job = dist.submit(JobRequest(name="flaky", callable=flaky))
        assert dist.wait_all(20), dist.stats()
        assert job.state is JobState.COMPLETED

        root = dist.telemetry.job_trace(job)
        assert root.name == "job"
        assert root.end is not None and root.attrs["state"] == "completed"
        # one root, with per-attempt spans as *siblings* under it
        attempts = [s for s in root.children if s.name.startswith("attempt-")]
        assert [s.name for s in attempts] == ["attempt-1", "attempt-2", "attempt-3"]
        assert [s.attrs["outcome"] for s in attempts] == [
            "failed",
            "failed",
            "completed",
        ]
        assert all(s.end is not None for s in attempts)
        waits = [s for s in root.children if s.name == "queue_wait"]
        assert len(waits) == 3  # initial wait + one backoff interval per retry
        # the metrics side agrees with the trace side
        assert dist.stats()["faults"]["retries"] == 2
        fam = dist.telemetry.registry.snapshot()["repro_faults_events_total"]
        assert (("retries",), 2) in fam["series"]

    def test_stats_adapters_preserve_legacy_shapes(self):
        sim, dist = des_distributor()
        for i in range(4):
            dist.submit(JobRequest(name=f"j{i}", sim_duration=1.0))
        sim.run()
        stats = dist.stats()
        assert tuple(stats["dispatch"]) == DISPATCH_KEYS
        assert tuple(stats["faults"]) == FAULT_KINDS
        assert stats["dispatch"]["jobs_started"] == 4
        assert all(isinstance(v, int) for v in stats["dispatch"].values())
        assert all(isinstance(v, int) for v in stats["faults"].values())

    def test_null_registry_disables_tracing_but_not_jobs(self):
        sim, dist = des_distributor(registry=NullRegistry())
        jobs = [
            dist.submit(JobRequest(name=f"j{i}", sim_duration=1.0)) for i in range(3)
        ]
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert dist.telemetry.on is False
        assert dist.telemetry.registry.snapshot() == {}
        # the legacy plain-int counters keep counting regardless
        assert dist.stats()["dispatch"]["jobs_started"] == 3
        # traces are derived from the job object, so they survive too
        trace = dist.telemetry.job_trace(jobs[0])
        assert [c.name for c in trace.children] == ["queue_wait", "attempt-1"]


# ---------------------------------------------------------------------------
# portal endpoints
# ---------------------------------------------------------------------------
def wsgi_get(app, path, token="", extra=None):
    """Raw WSGI GET returning (status, headers dict, body bytes)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path.split("?")[0],
        "QUERY_STRING": path.partition("?")[2],
        "CONTENT_LENGTH": "0",
        "wsgi.input": io.BytesIO(b""),
    }
    if token:
        environ["HTTP_AUTHORIZATION"] = f"Bearer {token}"
    if extra:
        environ.update(extra)
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split(" ", 1)[0])
        captured["headers"] = dict(headers)

    body = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], body


@pytest.fixture
def portal(tmp_path):
    app = make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small())
    client = PortalClient(app=app)
    client.login("admin", "admin-pass")
    return app, client


def _scrape_value(text: str, metric: str) -> float:
    for line in text.splitlines():
        if line.startswith(metric + " ") or line.startswith(metric + "{"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"{metric} not found in scrape")


class TestMetricsEndpoint:
    def test_scrape_serves_prometheus_text(self, portal):
        app, _ = portal
        status, headers, body = wsgi_get(app, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        # one unified snapshot: dispatch, faults, health, cache, portal
        for family in (
            "repro_dispatch_requests_total",
            "repro_faults_events_total",
            "repro_health_up_fraction",
            "repro_respcache_hits_total",
            "repro_portal_requests_total",
        ):
            assert f"# TYPE {family}" in text, family

    def test_scrape_bypasses_response_cache(self, portal):
        app, _ = portal
        _, headers, body = wsgi_get(app, "/metrics")
        # not a conditional resource: no validator, nothing cached
        assert "ETag" not in headers
        first = _scrape_value(body.decode(), "repro_portal_requests_total")
        _, _, body = wsgi_get(app, "/metrics")
        second = _scrape_value(body.decode(), "repro_portal_requests_total")
        assert second == first + 1  # fresh counters every scrape

    def test_scrape_json_format(self, portal):
        app, _ = portal
        status, headers, body = wsgi_get(app, "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        data = json.loads(body)
        assert "repro_portal_requests_total" in data

    def test_request_latency_labelled_by_route(self, portal):
        app, client = portal
        wsgi_get(app, "/metrics")
        _, _, body = wsgi_get(app, "/metrics")
        text = body.decode()
        assert 'repro_portal_request_seconds_count{route="/metrics"}' in text
        assert 'repro_portal_responses_total{status="200"}' in text


class TestTraceEndpoint:
    def test_trace_page_shows_span_tree(self, portal):
        app, client = portal
        dist = app.jobsvc.distributor
        job = dist.submit(
            JobRequest(name="traced", owner="admin", argv=["python3", "-c", "pass"])
        )
        assert dist.wait_all(30)
        token = client._token

        status, headers, body = wsgi_get(app, f"/debug/trace/{job.id}", token)
        assert status == 200
        assert "text/html" in headers["Content-Type"]
        page = body.decode()
        assert "job" in page and "attempt-1" in page

        status, _, body = wsgi_get(
            app, f"/debug/trace/{job.id}?format=json", token
        )
        assert status == 200
        trace = json.loads(body)["trace"]
        assert trace["name"] == "job"
        assert [c["name"] for c in trace["children"]] == ["queue_wait", "attempt-1"]

    def test_trace_404_when_unknown(self, portal):
        app, client = portal
        status, _, _ = wsgi_get(app, "/debug/trace/nope", client._token)
        assert status == 404

    def test_job_page_links_to_trace(self, portal):
        app, client = portal
        dist = app.jobsvc.distributor
        job = dist.submit(
            JobRequest(name="linked", owner="admin", argv=["python3", "-c", "pass"])
        )
        assert dist.wait_all(30)
        status, _, body = wsgi_get(app, f"/jobs/{job.id}", client._token)
        assert status == 200
        assert f"/debug/trace/{job.id}" in body.decode()
