"""MESI protocol transitions and traffic accounting."""

import pytest

from repro._errors import SimulationError
from repro.memsim import CoherentSystem, CostModel, LineState


@pytest.fixture
def system():
    return CoherentSystem(4)


class TestMesiTransitions:
    def test_first_read_installs_exclusive(self, system):
        system.read(0, 0)
        assert system.line_states(0)[0] is LineState.EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self, system):
        system.read(0, 0)
        system.read(1, 0)
        states = system.line_states(0)
        assert states[0] is LineState.SHARED and states[1] is LineState.SHARED

    def test_write_to_exclusive_is_silent_upgrade(self, system):
        system.read(0, 0)
        before = system.stats.total_transactions
        system.write(0, 0)
        assert system.line_states(0)[0] is LineState.MODIFIED
        assert system.stats.total_transactions == before  # no bus traffic

    def test_write_to_shared_sends_upgrade_and_invalidates(self, system):
        system.read(0, 0)
        system.read(1, 0)
        system.write(0, 0)
        states = system.line_states(0)
        assert states[0] is LineState.MODIFIED
        assert states[1] is LineState.INVALID
        assert system.stats.bus_upgr == 1
        assert system.stats.invalidations == 1

    def test_write_miss_invalidates_all_copies(self, system):
        for core in range(3):
            system.read(core, 0)
        system.write(3, 0)
        states = system.line_states(0)
        assert states[3] is LineState.MODIFIED
        assert all(s is LineState.INVALID for s in states[:3])
        assert system.stats.invalidations == 3

    def test_read_of_modified_flushes_owner(self, system):
        system.write(0, 0)
        system.read(1, 0)
        states = system.line_states(0)
        assert states[0] is LineState.SHARED and states[1] is LineState.SHARED
        assert system.stats.flushes == 1
        assert system.stats.memory_writes >= 1

    def test_rmw_behaves_like_write(self, system):
        system.read(1, 0)
        system.rmw(0, 0)
        states = system.line_states(0)
        assert states[0] is LineState.MODIFIED and states[1] is LineState.INVALID


class TestInvariants:
    def test_swmr_holds_under_mixed_traffic(self, system):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(500):
            core = int(rng.integers(0, 4))
            addr = int(rng.integers(0, 8)) * 64
            if rng.random() < 0.5:
                system.read(core, addr)
            else:
                system.write(core, addr)
            system.check_invariants()

    def test_invalid_core_rejected(self, system):
        with pytest.raises(SimulationError):
            system.read(7, 0)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            CoherentSystem(0)


class TestTiming:
    def test_hit_cheaper_than_miss(self):
        system = CoherentSystem(2, costs=CostModel())
        miss_latency = system.read(0, 0)
        hit_latency = system.read(0, 0)
        assert hit_latency < miss_latency

    def test_cache_to_cache_cheaper_than_memory(self):
        costs = CostModel(cache_to_cache=30, memory_access=60)
        system = CoherentSystem(2, costs=costs)
        from_memory = system.read(0, 0)
        from_cache = system.read(1, 0)
        assert from_cache < from_memory

    def test_per_core_cycles_accumulate(self):
        system = CoherentSystem(2)
        system.read(0, 0)
        system.read(1, 64)
        assert system.per_core_cycles[0] > 0
        assert system.per_core_cycles[1] > 0
        assert system.cycles == sum(system.per_core_cycles)

    def test_report_keys(self):
        system = CoherentSystem(2)
        system.write(0, 0)
        report = system.report()
        for key in ("cycles", "hits", "misses", "invalidations", "total_transactions"):
            assert key in report


class TestTrafficPatterns:
    def test_pingpong_writes_generate_invalidation_per_exchange(self):
        system = CoherentSystem(2)
        for _ in range(10):
            system.write(0, 0)
            system.write(1, 0)
        # Each ownership change invalidates the other copy.
        assert system.stats.invalidations >= 19

    def test_private_lines_generate_no_invalidations(self):
        system = CoherentSystem(4)
        for core in range(4):
            for _ in range(10):
                system.write(core, core * 64)
        assert system.stats.invalidations == 0

    def test_false_sharing_visible(self):
        """Two cores writing different bytes of ONE line still ping-pong."""
        system = CoherentSystem(2)
        for _ in range(10):
            system.write(0, 0)   # byte 0
            system.write(1, 8)   # byte 8, same 64-byte line
        assert system.stats.invalidations >= 19
