"""The incremental dispatch engine: index equivalence, fault rollback,
coalesced dispatch, event-driven wait_all, and the observability counters."""

import threading
import time

import numpy as np
import pytest

from repro._errors import ResourceError
from repro.cluster import (
    BackfillScheduler,
    CallableBackend,
    CapacityView,
    ClusterSpec,
    FaultInjector,
    FIFOScheduler,
    Grid,
    Job,
    JobDistributor,
    JobKind,
    JobRequest,
    JobState,
    PriorityScheduler,
    RunningEstimates,
    Scheduler,
    SimulatedBackend,
)
from repro.cluster.monitor import ClusterMonitor
from repro.cluster.scheduler import _Shadow
from repro.desim import Simulator

N_JOBS = 400


def make_workload(n=N_JOBS, seed=42):
    """Same mixed stream shape as the P2 benchmark: 70% sequential."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        parallel = rng.random() < 0.3
        n_tasks = int(rng.integers(2, 17)) if parallel else 1
        duration = float(rng.lognormal(1.0, 0.8))
        out.append(
            JobRequest(
                name=f"j{i}",
                kind=JobKind.PARALLEL if parallel else JobKind.SEQUENTIAL,
                n_tasks=n_tasks,
                sim_duration=duration,
                est_runtime_s=duration * float(rng.uniform(1.0, 1.5)),
                priority=int(rng.integers(0, 3)),
            )
        )
    return out


def assert_capacity_consistent(grid):
    """Incremental indexes must equal a from-scratch recount of the nodes."""
    for seg in grid.segments:
        assert seg.cores_free == sum(n.cores_free for n in seg.slaves)
        assert seg.memory_free_mb == sum(n.memory_free_mb for n in seg.slaves)
    assert grid.cores_free == sum(n.cores_free for n in grid.compute_nodes())
    # The two capacity views must agree node-for-node.
    shadow, view = _Shadow(grid), CapacityView(grid)
    for n in grid.up_compute_nodes():
        assert shadow.free(n) == view.free(n)
    for seg in grid.segments:
        assert shadow.seg_free_cores(seg) == view.seg_free_cores(seg)
    assert shadow.total_free_cores == view.total_free_cores


class DiffingScheduler(Scheduler):
    """Runs every round twice — old-style full `_Shadow` rebuild vs the
    incremental `CapacityView` — and asserts identical pick sequences."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.rounds_diffed = 0

    def select(self, queue, grid, now=0.0, running=(), view=None):
        # Reference: fresh rebuild, plain (unsorted-contract) running list.
        fresh = self.inner.select(list(queue), grid, now=now, running=list(running))
        # Hot path: incremental view + presorted running estimates.
        inc = self.inner.select(
            queue, grid, now=now, running=running,
            view=view if view is not None else CapacityView(grid),
        )
        assert [(j.id, a.placement) for j, a in fresh] == [
            (j.id, a.placement) for j, a in inc
        ], f"pick divergence under {self.name} at t={now}"
        self.rounds_diffed += 1
        return inc


class TestPickEquivalence:
    @pytest.mark.parametrize(
        "scheduler_cls", [FIFOScheduler, PriorityScheduler, BackfillScheduler]
    )
    def test_incremental_index_matches_full_rebuild(self, scheduler_cls):
        sim = Simulator()
        grid = Grid(ClusterSpec.uhd_default())
        diffing = DiffingScheduler(scheduler_cls())
        dist = JobDistributor(grid, SimulatedBackend(sim), diffing, now_fn=lambda: sim.now)
        for request in make_workload():
            dist.submit(request)
        sim.run()
        assert diffing.rounds_diffed > N_JOBS  # every round was cross-checked
        assert dist.monitor.summary()["by_state"] == {"completed": N_JOBS}
        assert_capacity_consistent(grid)
        assert grid.cores_free == grid.cores_total


class TestReserveRollback:
    def test_node_failure_mid_round_keeps_indexes_consistent(self, sim):
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        # Second node's allocate blows up as if it died between select and
        # reserve: the first node's allocation must be rolled back.
        victim = grid.node("seg-0-n01")
        real_allocate = victim.allocate

        def dying_allocate(*a, **kw):
            raise ResourceError("node died mid-round")

        victim.allocate = dying_allocate
        job = dist.submit(
            JobRequest(name="wide", kind=JobKind.PARALLEL, n_tasks=2,
                       cores_per_task=2, sim_duration=1.0)
        )
        # Reserve failed: job was re-queued, nothing is held anywhere.
        assert job.state is JobState.QUEUED
        assert grid.cores_free == grid.cores_total
        assert_capacity_consistent(grid)
        # Node recovers: the queued job dispatches and completes normally.
        victim.allocate = real_allocate
        dist.dispatch()
        sim.run()
        assert job.state is JobState.COMPLETED
        assert_capacity_consistent(grid)

    def test_fault_injection_mid_workload_keeps_indexes_consistent(self):
        sim = Simulator()
        grid = Grid(ClusterSpec.small(segments=2, slaves=4, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        injector = FaultInjector(dist, seed=3)
        for request in make_workload(n=60, seed=9):
            if request.n_tasks <= 8:  # fits the small grid
                dist.submit(request)

        def chaos(sim):
            yield sim.timeout(2.0)
            injector.kill_random_node()
            assert_capacity_consistent(dist.grid)
            yield sim.timeout(2.0)
            injector.revive_all()
            assert_capacity_consistent(dist.grid)

        sim.process(chaos(sim))
        sim.run()
        assert all(j.terminal for j in dist.jobs.values())
        assert_capacity_consistent(grid)
        assert grid.cores_free == grid.cores_total


class TestCoalescedDispatch:
    def test_submit_array_dispatches_once(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        before = dist.stats()["dispatch"]
        jobs = dist.submit_array(JobRequest(name="sweep", sim_duration=1.0), count=8)
        after = dist.stats()["dispatch"]
        assert after["requests"] - before["requests"] == 1
        assert after["rounds"] - before["rounds"] == 1
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_submit_array_docstring_documents_batching(self):
        assert "batch" in JobDistributor.submit_array.__doc__.lower()

    def test_rounds_amortised_o1_per_job(self):
        sim = Simulator()
        grid = Grid(ClusterSpec.uhd_default())
        dist = JobDistributor(grid, SimulatedBackend(sim), BackfillScheduler(),
                              now_fn=lambda: sim.now)
        n = 200
        for request in make_workload(n=n, seed=5):
            dist.submit(request)
        sim.run()
        d = dist.stats()["dispatch"]
        # ~1 round per submit + ~1 per completion; coalescing keeps it O(1).
        assert d["rounds"] <= 4 * n
        assert d["jobs_started"] == n

    def test_dispatch_counters_exposed(self, sim, small_grid):
        dist = JobDistributor(small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        dist.submit(JobRequest(name="j", sim_duration=1.0))
        sim.run()
        d = dist.stats()["dispatch"]
        for key in ("requests", "coalesced", "rounds", "jobs_examined",
                    "placements_tried", "jobs_started"):
            assert key in d
        assert d["rounds"] >= 1
        assert d["jobs_started"] == 1
        assert d["placements_tried"] >= 1


class TestRunningEstimates:
    def test_distributor_keeps_estimates_sorted(self, sim):
        grid = Grid(ClusterSpec.small(segments=1, slaves=4, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        for est in (9.0, 2.0, 7.0, 4.0):
            dist.submit(JobRequest(name=f"e{est}", sim_duration=est, est_runtime_s=est))
        running = dist._running_estimates()
        assert isinstance(running, RunningEstimates)
        assert running.presorted
        assert list(running) == sorted(running)
        assert len(running) == 4
        sim.run()
        assert dist._running_estimates() == []

    def test_backfill_accepts_presorted_without_resorting(self):
        unsorted = [(100.0, 4), (50.0, 2), (75.0, 2)]
        presorted = RunningEstimates(sorted(unsorted))
        a = BackfillScheduler._reserved_start(6, 2, 0.0, unsorted)
        b = BackfillScheduler._reserved_start(6, 2, 0.0, presorted)
        assert a == b == 75.0

    def test_estimate_less_jobs_invisible_to_backfill(self):
        grid = Grid(ClusterSpec.small(segments=1, slaves=1, cores=1))
        dist = JobDistributor(grid, CallableBackend())
        release = threading.Event()
        try:
            # Neither est_runtime_s nor sim_duration → no end-time entry.
            job = dist.submit(JobRequest(name="n", callable=lambda j: release.wait(10)))
            assert job.state is JobState.RUNNING
            assert len(dist._run_ends) == 0
        finally:
            release.set()
            assert dist.wait_all(10)


class TestWaitAllWakeup:
    def test_wait_all_is_event_driven_not_polled(self, small_grid, monkeypatch):
        dist = JobDistributor(small_grid, CallableBackend())
        release = threading.Event()
        job = dist.submit(JobRequest(name="gate", callable=lambda j: release.wait(10)))

        def no_sleep(_secs):
            raise AssertionError("wait_all must not poll with time.sleep")

        monkeypatch.setattr(time, "sleep", no_sleep)
        threading.Timer(0.05, release.set).start()
        t0 = time.monotonic()
        assert dist.wait_all(10)
        woke_after = time.monotonic() - t0
        assert job.state is JobState.COMPLETED
        assert woke_after < 5.0  # woke on the completion signal, not the timeout

    def test_wait_all_times_out_when_busy(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend())
        release = threading.Event()
        try:
            dist.submit(JobRequest(name="stuck", callable=lambda j: release.wait(30)))
            assert not dist.wait_all(0.2)
        finally:
            release.set()
            assert dist.wait_all(10)


class TestQueueOrdering:
    def test_requeued_job_regains_submission_position(self):
        from repro.cluster import JobQueue

        q = JobQueue()
        jobs = []
        for i in range(3):
            j = Job(JobRequest(name=f"q{i}", sim_duration=1.0))
            j.transition(JobState.QUEUED)
            q.push(j)
            jobs.append(j)
        middle = jobs[1]
        assert q.remove(middle)
        q.push(middle)  # e.g. after a reserve rollback
        assert [j.request.name for j in q.snapshot()] == ["q0", "q1", "q2"]


class TestMonitorRingBuffer:
    def test_default_cap_is_bounded(self):
        grid = Grid(ClusterSpec.small())
        monitor = ClusterMonitor()
        assert monitor.max_samples == 4096
        for t in range(5000):
            monitor.sample(grid, t=float(t))
        samples = monitor.samples
        assert len(samples) == 4096
        assert samples[0].t == float(5000 - 4096)  # oldest evicted
        assert samples[-1].t == 4999.0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ClusterMonitor(max_samples=0)
