"""Collective-operation semantics across world sizes."""

import numpy as np
import pytest

from repro.minimpi import MAX, MIN, PROD, SUM, MPIFailure, run_mpi

SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("size", SIZES)
class TestPerSize:
    def test_bcast_from_every_root(self, size):
        def program(comm):
            out = []
            for root in range(comm.size):
                value = f"msg-from-{root}" if comm.rank == root else None
                out.append(comm.bcast(value, root=root))
            return out

        for vals in run_mpi(program, size):
            assert vals == [f"msg-from-{r}" for r in range(size)]

    def test_gather_scatter_roundtrip(self, size):
        def program(comm):
            gathered = comm.gather(comm.rank * 10, root=0)
            if comm.rank == 0:
                assert gathered == [r * 10 for r in range(comm.size)]
                scattered = comm.scatter([x + 1 for x in gathered], root=0)
            else:
                assert gathered is None
                scattered = comm.scatter(None, root=0)
            return scattered

        vals = run_mpi(program, size)
        assert vals == [r * 10 + 1 for r in range(size)]

    def test_allgather_rank_order(self, size):
        def program(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + r) for r in range(size)]
        for vals in run_mpi(program, size):
            assert vals == expected

    def test_allreduce_sum(self, size):
        def program(comm):
            return comm.allreduce(comm.rank + 1)

        expected = size * (size + 1) // 2
        assert run_mpi(program, size) == [expected] * size

    def test_reduce_only_root_gets_value(self, size):
        def program(comm):
            return comm.reduce(comm.rank, root=0)

        vals = run_mpi(program, size)
        assert vals[0] == sum(range(size))
        assert all(v is None for v in vals[1:])

    def test_scan_prefix_sums(self, size):
        def program(comm):
            return comm.scan(1)

        assert run_mpi(program, size) == list(range(1, size + 1))

    def test_alltoall_personalised(self, size):
        def program(comm):
            sent = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(sent)

        vals = run_mpi(program, size)
        for r, received in enumerate(vals):
            assert received == [f"{s}->{r}" for s in range(size)]

    def test_barrier_completes(self, size):
        def program(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert run_mpi(program, size) == [True] * size


class TestReduceOps:
    def test_builtin_ops(self):
        def program(comm):
            return (
                comm.allreduce(comm.rank + 1, SUM),
                comm.allreduce(comm.rank + 1, PROD),
                comm.allreduce(comm.rank + 1, MAX),
                comm.allreduce(comm.rank + 1, MIN),
            )

        vals = run_mpi(program, 4)
        assert vals[0] == (10, 24, 4, 1)

    def test_numpy_elementwise_ops(self):
        def program(comm):
            arr = np.full(3, comm.rank, dtype=np.float64)
            return comm.allreduce(arr, MAX)

        vals = run_mpi(program, 3)
        assert np.array_equal(vals[0], np.full(3, 2.0))

    def test_custom_callable_op(self):
        def program(comm):
            return comm.allreduce([comm.rank], lambda a, b: a + b)

        vals = run_mpi(program, 3)
        assert vals[0] == [0, 1, 2]

    def test_invalid_op_rejected(self):
        def program(comm):
            comm.allreduce(1, op="not-an-op")

        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=10)


class TestValidation:
    def test_scatter_wrong_length_rejected(self):
        def program(comm):
            comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(MPIFailure):
            run_mpi(program, 3, timeout=10)

    def test_bad_root_rejected(self):
        def program(comm):
            comm.bcast("x", root=99)

        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=10)

    def test_uppercase_bcast_reduce(self):
        def program(comm):
            arr = (
                np.arange(4, dtype=np.float64)
                if comm.rank == 0
                else np.zeros(4, dtype=np.float64)
            )
            comm.Bcast(arr, root=0)
            out = np.empty(4)
            comm.Allreduce(arr, out)
            return out

        vals = run_mpi(program, 3)
        assert np.array_equal(vals[1], np.arange(4) * 3)


class TestSplit:
    def test_split_by_parity(self):
        def program(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.size, sub.allreduce(comm.rank))

        vals = run_mpi(program, 6)
        for r, (size, total) in enumerate(vals):
            assert size == 3
            assert total == (0 + 2 + 4 if r % 2 == 0 else 1 + 3 + 5)

    def test_split_key_reorders_ranks(self):
        def program(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        vals = run_mpi(program, 4)
        assert vals == [3, 2, 1, 0]

    def test_messages_do_not_cross_communicators(self):
        def program(comm):
            sub = comm.split(comm.rank % 2)
            # Same tags in both subcommunicators; traffic must not mix.
            total = sub.allreduce(comm.rank)
            world_total = comm.allreduce(comm.rank)
            return (total, world_total)

        vals = run_mpi(program, 4)
        assert vals[0] == (2, 6) and vals[1] == (4, 6)


class TestVariableCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_scatterv_gatherv_roundtrip(self, size):
        def program(comm):
            counts = [i + 1 for i in range(comm.size)]
            flat = list(range(sum(counts)))
            mine = comm.scatterv(flat if comm.rank == 0 else None, counts)
            assert len(mine) == comm.rank + 1
            back = comm.gatherv(mine, root=0)
            return back

        vals = run_mpi(program, size)
        counts = [i + 1 for i in range(size)]
        assert vals[0] == list(range(sum(counts)))
        assert all(v is None for v in vals[1:])

    def test_scatterv_zero_counts_allowed(self):
        def program(comm):
            counts = [0, 3, 0]
            return comm.scatterv([7, 8, 9] if comm.rank == 0 else None, counts)

        vals = run_mpi(program, 3)
        assert vals == [[], [7, 8, 9], []]

    def test_scatterv_bad_counts_rejected(self):
        def program(comm):
            comm.scatterv([1, 2] if comm.rank == 0 else None, [1])  # wrong arity

        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=10)

    def test_scatterv_wrong_total_rejected(self):
        def program(comm):
            comm.scatterv([1] if comm.rank == 0 else None, [1, 2])

        with pytest.raises(MPIFailure):
            run_mpi(program, 2, timeout=10)

    def test_reduce_scatter_slots(self):
        def program(comm):
            return comm.reduce_scatter([comm.rank * 10 + i for i in range(comm.size)])

        vals = run_mpi(program, 4)
        # slot i = sum over ranks r of (10r + i)
        assert vals == [60 + 4 * i for i in range(4)]

    def test_reduce_scatter_wrong_arity(self):
        def program(comm):
            comm.reduce_scatter([1])

        with pytest.raises(MPIFailure):
            run_mpi(program, 3, timeout=10)

    def test_exscan_exclusive_prefix(self):
        def program(comm):
            return comm.exscan(comm.rank + 1)

        vals = run_mpi(program, 5)
        assert vals == [None, 1, 3, 6, 10]

    def test_exscan_with_max_op(self):
        def program(comm):
            return comm.exscan([3, 1, 4, 1, 5][comm.rank], MAX)

        vals = run_mpi(program, 5)
        assert vals == [None, 3, 3, 4, 4]
