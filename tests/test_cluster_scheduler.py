"""Scheduling policies: FIFO blocking, priority ordering, EASY backfill."""

import pytest

from repro.cluster import (
    Allocation,
    BackfillScheduler,
    ClusterSpec,
    FIFOScheduler,
    Grid,
    Job,
    JobKind,
    JobRequest,
    JobState,
    PriorityScheduler,
)


def queued(name, n_tasks=1, cores=1, priority=0, est=None, gpu=False):
    kind = JobKind.PARALLEL if n_tasks > 1 else JobKind.SEQUENTIAL
    job = Job(JobRequest(name=name, sim_duration=1.0, kind=kind, n_tasks=n_tasks,
                         cores_per_task=cores, priority=priority, est_runtime_s=est,
                         need_gpu=gpu))
    job.transition(JobState.QUEUED)
    return job


@pytest.fixture
def grid():
    return Grid(ClusterSpec.small(segments=2, slaves=2, cores=2))  # 8 cores


class TestFIFO:
    def test_takes_jobs_in_order_while_they_fit(self, grid):
        q = [queued("a", 2, 2), queued("b", 1, 2), queued("c", 1, 1)]
        picks = FIFOScheduler().select(q, grid)
        assert [j.request.name for j, _ in picks] == ["a", "b", "c"]

    def test_head_of_line_blocking(self, grid):
        # head needs all 8 cores; 4 are taken -> nothing may start
        grid.node("seg-0-n00").allocate("other", 2)
        q = [queued("big", 4, 2), queued("small", 1, 1)]
        picks = FIFOScheduler().select(q, grid)
        assert picks == []

    def test_respects_already_allocated_cores(self, grid):
        grid.node("seg-0-n00").allocate("x", 2)
        grid.node("seg-0-n01").allocate("y", 2)
        q = [queued("j", 3, 2)]  # needs 6 cores, only 4 free
        assert FIFOScheduler().select(q, grid) == []


class TestPriority:
    def test_higher_priority_jumps_queue(self, grid):
        q = [queued("low", 1, 1, priority=0), queued("high", 1, 1, priority=10)]
        picks = PriorityScheduler().select(q, grid)
        assert [j.request.name for j, _ in picks][0] == "high"

    def test_skips_unplaceable_instead_of_blocking(self, grid):
        q = [queued("wide", 4, 2, priority=10), queued("narrow", 1, 1, priority=0)]
        grid.node("seg-0-n00").allocate("other", 2)  # wide no longer fits
        picks = PriorityScheduler().select(q, grid)
        assert [j.request.name for j, _ in picks] == ["narrow"]

    def test_tie_broken_by_submission_order(self, grid):
        q = [queued("first", 1, 1, priority=5), queued("second", 1, 1, priority=5)]
        picks = PriorityScheduler().select(q, grid)
        assert [j.request.name for j, _ in picks] == ["first", "second"]


class TestBackfill:
    def test_backfills_short_job_behind_blocked_head(self, grid):
        grid.node("seg-0-n00").allocate("running", 2)
        grid.node("seg-0-n01").allocate("running", 2)
        # head needs 8 cores (blocked: 4 free); short job fits and ends
        # before the reservation (running ends at t=100).
        q = [queued("head", 4, 2, est=50.0), queued("short", 1, 1, est=10.0)]
        picks = BackfillScheduler().select(q, grid, now=0.0, running=[(100.0, 4)])
        assert [j.request.name for j, _ in picks] == ["short"]

    def test_long_job_not_backfilled_if_it_would_delay_head(self, grid):
        grid.node("seg-0-n00").allocate("running", 2)
        grid.node("seg-0-n01").allocate("running", 2)
        # 4 cores free; candidate uses all of them and runs past t=100.
        q = [queued("head", 4, 2, est=50.0), queued("hog", 2, 2, est=500.0)]
        picks = BackfillScheduler().select(q, grid, now=0.0, running=[(100.0, 4)])
        assert picks == []

    def test_harmless_job_backfilled_even_if_long(self, grid):
        # 3 cores busy (ending t=100) -> 5 free; head needs 6 (blocked).
        # At the reservation (t=100) 8 cores are free, leaving 2 of slack
        # beyond the head's 6 — so a 1-core candidate can run arbitrarily
        # long without delaying the head.
        grid.node("seg-0-n00").allocate("r1", 2)
        grid.node("seg-0-n01").allocate("r2", 1)
        q = [queued("head", 3, 2, est=50.0), queued("tiny", 1, 1, est=9999.0)]
        picks = BackfillScheduler().select(q, grid, now=0.0, running=[(100.0, 3)])
        assert [j.request.name for j, _ in picks] == ["tiny"]

    def test_no_estimate_never_backfilled(self, grid):
        grid.node("seg-0-n00").allocate("running", 2)
        grid.node("seg-0-n01").allocate("running", 2)
        q = [queued("head", 4, 2, est=50.0), queued("mystery", 1, 1, est=None)]
        picks = BackfillScheduler().select(q, grid, now=0.0, running=[(100.0, 4)])
        assert picks == []

    def test_behaves_like_fifo_when_unblocked(self, grid):
        q = [queued("a", 1, 1, est=5.0), queued("b", 1, 1, est=5.0)]
        picks = BackfillScheduler().select(q, grid)
        assert [j.request.name for j, _ in picks] == ["a", "b"]


class TestPlacement:
    def test_parallel_job_packs_into_one_segment(self, grid):
        q = [queued("p", 4, 2)]  # 8 cores = exactly one segment? seg has 2x2=4...
        # Each segment has 2 slaves x 2 cores = 4 cores; 4 tasks x 2 cores = 8
        # cannot fit one segment -> spans both.
        picks = FIFOScheduler().select(q, grid)
        assert picks, "job should be placeable across segments"
        alloc = picks[0][1]
        segments = {name.rsplit("-n", 1)[0] for name, _ in alloc.placement}
        assert segments == {"seg-0", "seg-1"}

    def test_small_parallel_job_stays_in_one_segment(self, grid):
        q = [queued("p", 2, 2)]  # 4 cores fits a single segment
        picks = FIFOScheduler().select(q, grid)
        segments = {name.rsplit("-n", 1)[0] for name, _ in picks[0][1].placement}
        assert len(segments) == 1

    def test_gpu_requirement_restricts_nodes(self):
        spec = ClusterSpec.uhd_default()
        grid = Grid(spec)
        q = [queued("g", 1, 1, gpu=True)]
        picks = FIFOScheduler().select(q, grid)
        node_name = picks[0][1].placement[0][0]
        assert grid.node(node_name).spec.has_gpu

    def test_allocation_total_cores(self, grid):
        q = [queued("p", 3, 2)]
        picks = FIFOScheduler().select(q, grid)
        assert picks[0][1].total_cores == 6

    def test_allocation_as_dict(self):
        alloc = Allocation("j", (("n1", 2), ("n2", 4)))
        assert alloc.as_dict() == {"n1": 2, "n2": 4}


class TestPriorityAging:
    def test_negative_aging_rejected(self):
        with pytest.raises(ValueError):
            PriorityScheduler(aging_rate=-1)

    def test_effective_priority_grows_with_wait(self, grid):
        sched = PriorityScheduler(aging_rate=0.5)
        job = queued("old", 1, 1, priority=0)
        job.submitted_at = 0.0
        assert sched.effective_priority(job, now=10.0) == pytest.approx(5.0)
        assert sched.effective_priority(job, now=0.0) == pytest.approx(0.0)

    def test_aged_job_overtakes_fresh_high_priority(self, grid):
        aged = queued("ancient", 1, 1, priority=0)
        aged.submitted_at = 0.0
        fresh = queued("vip", 1, 1, priority=3)
        fresh.submitted_at = 100.0
        # Fill all but one core so exactly one job can start.
        for i, node in enumerate(grid.up_compute_nodes()):
            node.allocate(f"filler{i}", 2 if i > 0 else 1)
        picks = PriorityScheduler(aging_rate=0.1).select([aged, fresh], grid, now=100.0)
        # aged effective = 0 + 0.1*100 = 10 > vip's 3
        assert picks[0][0].request.name == "ancient"

    def test_pure_policy_starves_without_aging(self, grid):
        """End-to-end: a steady high-priority stream starves priority 0
        under the pure policy; aging rescues it."""
        from repro.cluster import ClusterSpec, Grid, JobDistributor, SimulatedBackend
        from repro.desim import Simulator

        def run(aging_rate):
            sim = Simulator()
            g = Grid(ClusterSpec.small(segments=1, slaves=1, cores=1))
            dist = JobDistributor(
                g, SimulatedBackend(sim), PriorityScheduler(aging_rate),
                now_fn=lambda: sim.now,
            )
            # Occupy the single core first so "lowly" must queue.
            dist.submit(JobRequest(name="vip0", sim_duration=2.0, priority=5))
            lowly = dist.submit(JobRequest(name="lowly", sim_duration=1.0, priority=0))

            def feeder(sim, dist):
                # Arrivals outpace service: a vip is always waiting.
                for _ in range(30):
                    dist.submit(JobRequest(name="vip", sim_duration=2.0, priority=5))
                    yield sim.timeout(1.0)

            sim.process(feeder(sim, dist))
            sim.run()
            return lowly.wait_s

        starved_wait = run(aging_rate=0.0)
        aged_wait = run(aging_rate=2.0)
        assert starved_wait > 30.0  # pure policy: waits out the entire vip stream
        assert aged_wait < starved_wait / 2  # aging rescues it early
