"""The scale-out front-end tier: fleet, replication, cached RPC reads."""

from __future__ import annotations

import threading
import time

import pytest

from repro.bus.core import MessageBus
from repro.bus.proxy import ClusterProxy
from repro.cluster.backends import SubprocessBackend
from repro.cluster.distributor import JobDistributor
from repro.cluster.grid import Grid
from repro.cluster.spec import ClusterSpec
from repro.portal import PortalClient
from repro.portal.admission import AdmissionController
from repro.portal.frontend import FrontendFleet, FrontendPortal, SessionReplicator
from repro.portal.sessions import SessionStore


def _make_distributor():
    grid = Grid(ClusterSpec.small(segments=2, slaves=2, cores=2))
    return JobDistributor(grid, SubprocessBackend())


@pytest.fixture
def fleet():
    f = FrontendFleet(_make_distributor(), n_workers=3).start()
    f.users.add_user("alice", "secret123")
    f.users.add_user("bob", "secret456")
    yield f
    f.stop()


def _client(worker, username="alice", password="secret123"):
    client = PortalClient(app=worker)
    client.login(username, password)
    return client


def _wait_done(client, job_id, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        desc = client.job(job_id)
        if desc["state"] in ("completed", "failed", "cancelled", "timeout"):
            return desc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


class TestSessionReplication:
    def test_login_on_one_worker_is_valid_on_all(self, fleet):
        c0 = _client(fleet.workers[0])
        for worker in fleet.workers[1:]:
            other = PortalClient(app=worker)
            other._token = c0._token
            assert other.whoami()["username"] == "alice"

    def test_logout_anywhere_kills_the_session_everywhere(self, fleet):
        c0 = _client(fleet.workers[0])
        c2 = PortalClient(app=fleet.workers[2])
        c2._token = c0._token
        c2.logout()
        for worker in fleet.workers:
            probe = PortalClient(app=worker)
            probe._token = c0._token
            with pytest.raises(Exception, match="401"):
                probe.whoami()

    def test_origin_ids_prevent_echo_loops(self):
        bus = MessageBus()
        a, b = SessionStore(secret=b"s" * 32), SessionStore(secret=b"s" * 32)
        ra = SessionReplicator(bus, a, "a")
        rb = SessionReplicator(bus, b, "b")
        a.create({"username": "x"})
        assert len(b) == 1
        assert ra.stats() == {"published": 1, "applied": 0, "echoes_ignored": 1}
        assert rb.stats() == {"published": 0, "applied": 1, "echoes_ignored": 0}
        # the replicated install must not have re-published (no storm)
        assert bus.published == 1

    def test_replicated_token_verifies_because_secret_is_shared(self):
        bus = MessageBus()
        a, b = SessionStore(secret=b"k" * 32), SessionStore(secret=b"k" * 32)
        SessionReplicator(bus, a, "a")
        SessionReplicator(bus, b, "b")
        token = a.create({"username": "x"})
        assert b.get(token) == {"username": "x"}


class TestCrossWorkerJobs:
    def test_submit_on_one_worker_poll_on_another(self, fleet):
        c0 = _client(fleet.workers[0])
        c1 = PortalClient(app=fleet.workers[1])
        c1._token = c0._token
        job = c0._call("POST", "/api/jobs", {"name": "hello", "argv": ["echo", "hi"]})
        jid = job["job"]["id"]
        final = _wait_done(c1, jid)
        assert final["state"] == "completed"
        assert c1.job_output(jid)["stdout"] == ["hi"]

    def test_owner_comes_from_the_session_not_the_body(self, fleet):
        c0 = _client(fleet.workers[0])
        job = c0._call(
            "POST", "/api/jobs",
            {"name": "spoof", "argv": ["true"], "owner": "bob"},
        )
        assert job["job"]["owner"] == "alice"

    def test_students_cannot_see_each_others_jobs(self, fleet):
        alice = _client(fleet.workers[0])
        bob = _client(fleet.workers[1], "bob", "secret456")
        job = alice._call("POST", "/api/jobs", {"name": "a", "argv": ["true"]})
        jid = job["job"]["id"]
        with pytest.raises(Exception, match="403"):
            bob.job(jid)
        assert bob.jobs() == []

    def test_interactive_input_crosses_the_bus(self, fleet):
        c0 = _client(fleet.workers[0])
        job = c0._call(
            "POST", "/api/jobs",
            {"name": "cat", "argv": ["cat"], "kind": "interactive"},
        )
        jid = job["job"]["id"]
        time.sleep(0.1)
        c0.send_input(jid, "ping\n")
        c0.cancel_job(jid)
        _wait_done(c0, jid)
        out = c0.job_output(jid)
        assert "ping" in "".join(out["stdout"])

    def test_cancel_over_the_bus(self, fleet):
        c0 = _client(fleet.workers[0])
        job = c0._call(
            "POST", "/api/jobs", {"name": "sleep", "argv": ["sleep", "30"]}
        )
        jid = job["job"]["id"]
        assert c0.cancel_job(jid) is True
        assert _wait_done(c0, jid)["state"] == "cancelled"


class TestCachedReads:
    def test_status_polls_hit_the_worker_cache(self, fleet):
        worker = fleet.workers[0]
        client = _client(worker)
        client.cluster_status()
        misses_after_first = worker.cache.stats()["misses"]
        for _ in range(5):
            client.cluster_status()
        stats = worker.cache.stats()
        assert stats["misses"] == misses_after_first, "quiet cluster re-rendered"
        assert stats["hits"] >= 5

    def test_conditional_client_gets_304s(self, fleet):
        worker = fleet.workers[0]
        client = PortalClient(app=worker, conditional=True)
        client.login("alice", "secret123")
        s1 = client.cluster_status()
        s2 = client.cluster_status()
        assert s1 == s2
        assert worker.stats()["not_modified"] >= 1

    def test_status_cache_invalidated_by_cluster_version_change(self, fleet):
        worker = fleet.workers[0]
        client = _client(worker)
        before = client.cluster_status()
        job = client._call("POST", "/api/jobs", {"name": "j", "argv": ["true"]})
        _wait_done(client, job["job"]["id"])
        after = client.cluster_status()
        assert after["jobs"].get("completed", 0) > before["jobs"].get("completed", 0)

    def test_output_polls_self_version_via_fingerprint(self, fleet):
        worker = fleet.workers[1]
        client = _client(worker)
        job = client._call("POST", "/api/jobs", {"name": "j", "argv": ["echo", "x"]})
        jid = job["job"]["id"]
        _wait_done(client, jid)
        client.job_output(jid)
        misses = worker.cache.stats()["misses"]
        for _ in range(4):
            assert client.job_output(jid)["stdout"] == ["x"]
        assert worker.cache.stats()["misses"] == misses


class TestFrontendResilience:
    def test_backend_outage_maps_to_503_with_retry_after(self):
        # a fleet whose back-end service was never started: RPCs time out
        fleet = FrontendFleet(_make_distributor(), n_workers=1, rpc_timeout_s=0.05)
        fleet.users.add_user("alice", "secret123")
        worker = fleet.workers[0]
        client = PortalClient(app=worker)
        client.login("alice", "secret123")  # local: sessions live on the worker
        status, headers, _body = client._transport.request(
            "GET", "/api/cluster/status", b"",
            {"Authorization": f"Bearer {client._token}"},
        )
        assert status == 503
        assert headers.get("Retry-After") == "1"

    def test_admission_shields_the_worker(self):
        fleet = FrontendFleet(
            _make_distributor(),
            n_workers=1,
            admission_factory=lambda i: AdmissionController(
                rate_per_s=0.1, burst=2.0
            ),
        ).start()
        try:
            fleet.users.add_user("alice", "secret123")
            worker = fleet.workers[0]
            client = PortalClient(app=worker)
            client.login("alice", "secret123")
            statuses = []
            for _ in range(4):
                status, headers, _ = client._transport.request(
                    "GET", "/api/whoami", b"",
                    {"Authorization": f"Bearer {client._token}"},
                )
                statuses.append(status)
            assert 429 in statuses
            assert worker.stats()["admission"]["rejected_429"] > 0
        finally:
            fleet.stop()

    def test_worker_metrics_endpoint(self):
        from repro.telemetry.registry import MetricsRegistry

        fleet = FrontendFleet(_make_distributor(), n_workers=1).start()
        try:
            fleet.users.add_user("alice", "secret123")
            worker = FrontendPortal(
                ClusterProxy(fleet.bus, client_id="metrics-test"),
                fleet.users,
                SessionStore(),
                registry=MetricsRegistry(),
                worker_id="fx",
            )
            client = PortalClient(app=worker)
            client.login("alice", "secret123")
            client.cluster_status()
            status, _headers, body = client._transport.request(
                "GET", "/metrics", b"", {}
            )
            assert status == 200
            assert b"repro_portal_requests_total" in body
            assert b"repro_respcache_hits_total" in body
        finally:
            fleet.stop()

    def test_fleet_stats_aggregate(self, fleet):
        _client(fleet.workers[0])
        stats = fleet.stats()
        assert [w["worker"] for w in stats["workers"]] == ["fe0", "fe1", "fe2"]
        assert stats["bus"]["published"] >= 1  # the session replication event
        assert stats["service"]["reply_latency_s"] == 0.0

    def test_concurrent_clients_across_workers(self, fleet):
        """Many threads, every worker, no lost replies or cross-talk."""
        c0 = _client(fleet.workers[0])
        token = c0._token
        errors: list = []

        def hammer(worker):
            try:
                client = PortalClient(app=worker)
                client._token = token
                for _ in range(20):
                    assert client.whoami()["username"] == "alice"
                    client.cluster_status()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in fleet.workers for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert not errors
