"""Shared fixtures."""

from __future__ import annotations

import shutil

import pytest

from repro.cluster.backends import CallableBackend, SimulatedBackend
from repro.cluster.distributor import JobDistributor
from repro.cluster.grid import Grid
from repro.cluster.spec import ClusterSpec
from repro.desim import Simulator
from repro.portal.app import make_default_app
from repro.portal.client import PortalClient


def has_gcc() -> bool:
    return shutil.which("gcc") is not None


def has_javac() -> bool:
    return shutil.which("javac") is not None and shutil.which("java") is not None


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_grid() -> Grid:
    return Grid(ClusterSpec.small(segments=2, slaves=4, cores=2))


@pytest.fixture
def uhd_grid() -> Grid:
    return Grid(ClusterSpec.uhd_default())


@pytest.fixture
def sim_distributor(sim, small_grid):
    """Distributor over a DES backend on virtual time."""
    return JobDistributor(
        small_grid, SimulatedBackend(sim), now_fn=lambda: sim.now
    )


@pytest.fixture
def callable_distributor(small_grid):
    """Distributor running Python callables on real threads."""
    return JobDistributor(small_grid, CallableBackend())


@pytest.fixture
def portal_app(tmp_path):
    """A full portal over a small cluster with a subprocess backend."""
    return make_default_app(str(tmp_path / "homes"), cluster_spec=ClusterSpec.small())


@pytest.fixture
def admin_client(portal_app) -> PortalClient:
    client = PortalClient(app=portal_app)
    client.login("admin", "admin-pass")
    return client


@pytest.fixture
def student_client(portal_app, admin_client) -> PortalClient:
    admin_client.create_user("alice", "alice-pass", full_name="Alice")
    client = PortalClient(app=portal_app)
    client.login("alice", "alice-pass")
    return client
