"""Specs, nodes, segments, grid."""

import pytest

from repro._errors import ResourceError
from repro.cluster import ClusterSpec, Grid, Node, NodeSpec, NodeState, SegmentSpec


class TestSpecs:
    def test_uhd_default_shape(self):
        spec = ClusterSpec.uhd_default()
        assert len(spec.segments) == 4
        assert all(s.n_slaves == 16 for s in spec.segments)
        assert spec.total_slaves == 64

    def test_uhd_has_gpu_segment(self):
        grid = Grid(ClusterSpec.uhd_default())
        assert grid.gpu_nodes(), "the paper's cluster includes a GPU machine"

    def test_invalid_node_spec(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_mb=0)
        with pytest.raises(ValueError):
            NodeSpec(cpu_ghz=-1)

    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(segments=(SegmentSpec("a", 2), SegmentSpec("a", 2)))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(segments=())


class TestNodeAccounting:
    @pytest.fixture
    def node(self):
        return Node("n0", NodeSpec(cores=4, memory_mb=1000))

    def test_allocate_and_free(self, node):
        node.allocate("j1", 2, memory_mb=500)
        assert node.cores_free == 2 and node.memory_free_mb == 500
        node.free("j1")
        assert node.cores_free == 4 and node.memory_free_mb == 1000

    def test_oversubscription_rejected(self, node):
        node.allocate("j1", 3)
        with pytest.raises(ResourceError):
            node.allocate("j2", 2)
        assert node.cores_used == 3  # failed allocation left no residue

    def test_memory_oversubscription_rejected(self, node):
        with pytest.raises(ResourceError):
            node.allocate("j1", 1, memory_mb=2000)

    def test_double_allocate_same_job_rejected(self, node):
        node.allocate("j1", 1)
        with pytest.raises(ResourceError):
            node.allocate("j1", 1)

    def test_double_free_rejected(self, node):
        node.allocate("j1", 1)
        node.free("j1")
        with pytest.raises(ResourceError):
            node.free("j1")

    def test_zero_core_allocation_rejected(self, node):
        with pytest.raises(ResourceError):
            node.allocate("j1", 0)

    def test_down_node_refuses_allocations(self, node):
        node.allocate("j1", 1)
        victims = node.mark_down()
        assert victims == ("j1",)
        assert node.cores_free == 0  # down nodes expose no capacity
        with pytest.raises(ResourceError):
            node.allocate("j2", 1)
        node.mark_up()
        node.allocate("j2", 1)

    def test_draining_accepts_nothing_new(self, node):
        node.allocate("j1", 1)
        node.drain()
        assert node.state is NodeState.DRAINING
        assert not node.can_fit(1)
        assert node.holds("j1")  # existing work keeps running

    def test_load_fraction(self, node):
        assert node.load == 0.0
        node.allocate("j1", 2)
        assert node.load == 0.5


class TestGrid:
    def test_node_lookup(self, small_grid):
        n = small_grid.node("seg-0-n00")
        assert n.segment == "seg-0"
        with pytest.raises(ResourceError):
            small_grid.node("nope")

    def test_segment_lookup(self, small_grid):
        assert small_grid.segment("seg-1").name == "seg-1"
        with pytest.raises(ResourceError):
            small_grid.segment("nope")

    def test_master_nodes_not_compute_nodes(self, small_grid):
        names = {n.name for n in small_grid.compute_nodes()}
        assert "grid-master" not in names
        assert not any("master" in n for n in names)

    def test_capacity_totals(self, small_grid):
        assert small_grid.cores_total == 2 * 4 * 2  # 2 segments x 4 slaves x 2 cores
        assert small_grid.cores_free == small_grid.cores_total

    def test_find_node_first_fit(self, small_grid):
        n = small_grid.find_node_for(2)
        assert n is not None and n.name == "seg-0-n00"
        assert small_grid.find_node_for(3) is None  # larger than any node

    def test_snapshot_structure(self, small_grid):
        snap = small_grid.snapshot()
        assert snap["cores_total"] == 16
        assert set(snap["segments"]) == {"seg-0", "seg-1"}
        assert snap["segments"]["seg-0"]["nodes_up"] == 4

    def test_load_after_allocation(self, small_grid):
        small_grid.node("seg-0-n00").allocate("j", 2)
        assert small_grid.load == pytest.approx(2 / 16)
        assert small_grid.segment("seg-0").load == pytest.approx(2 / 8)
