"""Store-buffer litmus tests and the interleave→coherence bridge."""

import pytest

from repro.interleave import Nop, Scheduler, SharedVar, TASLock
from repro.memsim import CoherenceBridge, run_store_buffer_litmus


class TestLitmus:
    def test_sc_forbids_both_zero(self):
        res = run_store_buffer_litmus("SC")["SC"]
        assert not res.allows_both_zero
        # SC still allows the other three outcomes.
        assert {(0, 1), (1, 0), (1, 1)} <= res.outcomes

    def test_tso_allows_both_zero(self):
        res = run_store_buffer_litmus("TSO")["TSO"]
        assert res.allows_both_zero
        assert res.outcomes == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_tso_outcomes_superset_of_sc(self):
        both = run_store_buffer_litmus("both")
        assert both["SC"].outcomes <= both["TSO"].outcomes

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_store_buffer_litmus("PSO")

    def test_str_rendering(self):
        res = run_store_buffer_litmus("SC")["SC"]
        assert "SC" in str(res) and "(0, 1)" in str(res)


class TestBridge:
    @staticmethod
    def _counter_workload(lock_cls=None, threads=4, iters=10, seed=5):
        sched = Scheduler(seed=seed)
        bridge = CoherenceBridge(n_cores=threads).attach(sched)
        var = SharedVar("ctr", 0)
        lock = lock_cls() if lock_cls else None

        def locked(var, lock):
            for _ in range(iters):
                yield from lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield from lock.release()

        def unlocked(var):
            for _ in range(iters):
                v = yield var.read()
                yield Nop()
                yield var.write(v + 1)

        for i in range(threads):
            body = locked(var, lock) if lock else unlocked(var)
            sched.spawn(body, name=f"t{i}")
        run = sched.run()
        return run, var, bridge

    def test_accesses_generate_traffic(self):
        run, var, bridge = self._counter_workload()
        report = bridge.system.report()
        assert report["hits"] + report["misses"] > 0
        assert report["invalidations"] > 0  # shared counter ping-pongs

    def test_swmr_invariant_after_lab_workload(self):
        _, _, bridge = self._counter_workload(TASLock)
        bridge.system.check_invariants()

    def test_threads_mapped_to_distinct_cores(self):
        # First-sight order depends on the schedule, but the two threads
        # must land on the two distinct cores, and lookups are stable.
        run, _, bridge = self._counter_workload(threads=2)
        t0 = type("T", (), {"name": "t0"})()
        t1 = type("T", (), {"name": "t1"})()
        cores = {bridge.core_of(t0), bridge.core_of(t1)}
        assert cores == {0, 1}
        assert bridge.core_of(t0) == bridge.core_of(t0)  # stable

    def test_distinct_vars_get_distinct_lines(self):
        bridge = CoherenceBridge(n_cores=2)
        a, b = SharedVar("a"), SharedVar("b")
        addr_a, addr_b = bridge.addr_of(a), bridge.addr_of(b)
        line = bridge.system.config.line_address
        assert line(addr_a) != line(addr_b)

    def test_colocate_forces_false_sharing(self):
        bridge = CoherenceBridge(n_cores=2)
        a, b = SharedVar("a"), SharedVar("b")
        bridge.colocate(a, b)
        line = bridge.system.config.line_address
        assert line(bridge.addr_of(a)) == line(bridge.addr_of(b))

    def test_false_sharing_traffic_exceeds_private_lines(self):
        def run_with(colocate: bool) -> int:
            sched = Scheduler(seed=3, detect_races=False)
            bridge = CoherenceBridge(n_cores=2).attach(sched)
            a, b = SharedVar("a", 0), SharedVar("b", 0)
            if colocate:
                bridge.colocate(a, b)

            def worker(var):
                for _ in range(20):
                    v = yield var.read()
                    yield var.write(v + 1)

            sched.spawn(worker(a), name="t0")
            sched.spawn(worker(b), name="t1")
            sched.run()
            return bridge.system.stats.invalidations

        assert run_with(colocate=True) > run_with(colocate=False)
