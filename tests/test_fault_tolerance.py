"""Reliability battery for the fault-tolerant job lifecycle.

Covers the distributor's fault-tolerance layer end to end: retry/backoff
determinism under a fixed seed, run-time and wall-clock timeouts firing
exactly once, rerouting of jobs orphaned by node death, health-driven
SUSPECT/probation behaviour, a randomized kill/revive stress loop that
cross-checks the incremental capacity index against a full rescan, and a
concurrency smoke test that kills/revives nodes from another thread
while ``wait_all`` blocks.
"""

from __future__ import annotations

import signal
import threading
import time

import numpy as np
import pytest

from repro._errors import JobError, ResourceError
from repro.cluster import (
    CallableBackend,
    ClusterSpec,
    FaultInjector,
    Grid,
    HealthMonitor,
    HealthPolicy,
    JobDistributor,
    JobRequest,
    JobState,
    NodeState,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01, jitter=0.0)


def des_distributor(
    segments: int = 1, slaves: int = 3, cores: int = 2, **kwargs
) -> tuple[Simulator, Grid, JobDistributor]:
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=segments, slaves=slaves, cores=cores))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, **kwargs
    )
    return sim, grid, dist


def flaky_callable(fail_first: int):
    """A callable that raises on its first ``fail_first`` invocations."""
    calls = {"n": 0}

    def fn(job):
        calls["n"] += 1
        if calls["n"] <= fail_first:
            raise RuntimeError(f"transient #{calls['n']}")
        return "ok"

    return fn


class TestRetryPolicyUnit:
    def test_backoff_is_exponential_and_capped(self):
        p = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=5.0, jitter=0.0)
        assert [p.delay_for(n) for n in (1, 2, 3, 4, 5)] == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_bounded_and_seed_deterministic(self):
        p = RetryPolicy(backoff_base_s=1.0, jitter=0.25)
        a = [p.delay_for(1, np.random.default_rng(7)) for _ in range(5)]
        b = [p.delay_for(1, np.random.default_rng(7)) for _ in range(5)]
        assert a == b  # same seed, same schedule
        rng = np.random.default_rng(7)
        for _ in range(50):
            d = p.delay_for(1, rng)
            assert 0.75 <= d <= 1.25

    def test_budget_and_classes(self):
        p = RetryPolicy(max_attempts=2, retry_on=("failed",))
        assert p.should_retry("failed", 1)
        assert not p.should_retry("failed", 2)  # budget spent
        assert not p.should_retry("timeout", 1)  # class not selected
        assert not p.should_retry("node_lost", 1)

    def test_validation(self):
        with pytest.raises(JobError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(JobError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(JobError):
            RetryPolicy(retry_on=("no-such-class",))
        with pytest.raises(JobError):
            JobRequest(name="x", sim_duration=1.0, wallclock_timeout_s=0)

    def test_retry_on_accepts_any_iterable(self):
        assert RetryPolicy(retry_on=["failed", "timeout"]).retry_on == {"failed", "timeout"}


class TestRetryLifecycle:
    def test_flaky_job_retries_to_success_with_lineage(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend(), retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="flaky", callable=flaky_callable(2)))
        assert dist.wait_all(20), dist.stats()
        assert job.state is JobState.COMPLETED
        assert job.attempt_epoch == 3
        assert [a.outcome for a in job.attempts] == ["failed", "failed", "completed"]
        assert [a.no for a in job.attempts] == [1, 2, 3]
        assert dist.stats()["faults"]["retries"] == 2
        # every non-final attempt recorded the backoff it paid
        assert all(a.backoff_s is not None for a in job.attempts[:-1])

    def test_budget_exhaustion_seals_failed(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend(), retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="doomed", callable=flaky_callable(99)))
        assert dist.wait_all(20)
        assert job.state is JobState.FAILED
        assert job.attempt_epoch == FAST_RETRY.max_attempts
        assert len(job.attempts) == FAST_RETRY.max_attempts
        assert {a.outcome for a in job.attempts} == {"failed"}

    def test_no_retries_without_policy(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend())
        job = dist.submit(JobRequest(name="once", callable=flaky_callable(1)))
        assert dist.wait_all(20)
        assert job.state is JobState.FAILED
        assert job.attempt_epoch == 1
        assert dist.stats()["faults"]["retries"] == 0

    def test_per_request_policy_overrides_distributor_default(self, small_grid):
        dist = JobDistributor(small_grid, CallableBackend())  # no default
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.01, jitter=0.0)
        job = dist.submit(JobRequest(name="own", callable=flaky_callable(1), retry=policy))
        assert dist.wait_all(20)
        assert job.state is JobState.COMPLETED
        assert job.attempt_epoch == 2

    def test_backoff_schedule_reproducible_under_fixed_seed(self):
        def run_once() -> list[float]:
            grid = Grid(ClusterSpec.small(segments=2, slaves=4, cores=2))
            dist = JobDistributor(
                grid,
                CallableBackend(),
                retry=RetryPolicy(max_attempts=4, backoff_base_s=0.01, jitter=0.5),
                seed=1234,
            )
            job = dist.submit(JobRequest(name="seeded", callable=flaky_callable(3)))
            assert dist.wait_all(20)
            assert job.state is JobState.COMPLETED
            return [a.backoff_s for a in job.attempts[:-1]]

        first, second = run_once(), run_once()
        assert first == second  # byte-identical schedule under the same seed
        assert len(first) == 3
        for n, delay in enumerate(first, start=1):
            base = 0.01 * 2.0 ** (n - 1)
            assert base * 0.5 <= delay <= base * 1.5  # jitter stays bounded


class TestTimeouts:
    def test_run_timeout_fires_exactly_once(self):
        sim, grid, dist = des_distributor()
        job = dist.submit(JobRequest(name="hang", sim_duration=100.0, timeout_s=5.0))
        sim.run(until=50.0)
        assert job.state is JobState.TIMEOUT
        assert job.error == "timeout"
        assert dist.stats()["faults"]["timeouts"] == 1
        assert len(job.attempts) == 1 and job.attempts[0].outcome == "timeout"
        # the attempt's resources came back
        assert grid.cores_free == grid.cores_total

    def test_retryable_timeout_counts_each_attempt_once(self):
        sim, grid, dist = des_distributor(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=1.0, jitter=0.0)
        )
        job = dist.submit(JobRequest(name="hang", sim_duration=100.0, timeout_s=3.0))
        sim.run(until=60.0)
        assert job.state is JobState.TIMEOUT
        assert [a.outcome for a in job.attempts] == ["timeout", "timeout"]
        assert dist.stats()["faults"]["timeouts"] == 2  # one per attempt, never double
        assert dist.stats()["faults"]["retries"] == 1
        assert grid.cores_free == grid.cores_total

    def test_wallclock_timeout_fires_in_queue(self):
        sim, grid, dist = des_distributor(slaves=1)
        hog = dist.submit(JobRequest(name="hog", sim_duration=100.0, cores_per_task=2))
        waiter = dist.submit(
            JobRequest(name="waiter", sim_duration=1.0, wallclock_timeout_s=10.0, cores_per_task=2)
        )
        assert waiter.state is JobState.QUEUED
        sim.run(until=50.0)
        assert waiter.state is JobState.TIMEOUT
        assert waiter.error == "wallclock timeout"
        assert waiter.started_at is None  # never ran
        assert dist.stats()["faults"]["wall_timeouts"] == 1
        assert hog.state is JobState.RUNNING  # unaffected

    def test_wallclock_timeout_kills_running_job(self):
        sim, grid, dist = des_distributor()
        job = dist.submit(
            JobRequest(name="long", sim_duration=100.0, wallclock_timeout_s=20.0)
        )
        sim.run(until=60.0)
        assert job.state is JobState.TIMEOUT
        assert job.error == "wallclock timeout"
        assert dist.stats()["faults"]["wall_timeouts"] == 1
        assert grid.cores_free == grid.cores_total

    def test_wallclock_budget_cuts_retry_budget(self):
        # Each attempt times out after 4s; the wall budget of 6s allows the
        # first retry decision but forbids the one after the second attempt.
        sim, grid, dist = des_distributor(
            retry=RetryPolicy(max_attempts=10, backoff_base_s=0.5, jitter=0.0)
        )
        job = dist.submit(
            JobRequest(name="w", sim_duration=100.0, timeout_s=4.0, wallclock_timeout_s=6.0)
        )
        sim.run(until=60.0)
        assert job.terminal
        assert job.state is JobState.TIMEOUT
        assert len(job.attempts) < 10  # wall budget stopped the retry loop


class TestReroute:
    def test_killed_node_job_reroutes_and_completes(self):
        sim, grid, dist = des_distributor(retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="victim", sim_duration=5.0))
        dead = next(iter(job.placement))
        rerouted = dist.fail_node(dead)
        assert rerouted == [job]
        assert job.state in (JobState.QUEUED, JobState.RUNNING)
        sim.run()
        assert job.state is JobState.COMPLETED
        assert dead not in job.placement  # completed on a survivor
        assert [a.outcome for a in job.attempts] == ["node_lost", "completed"]
        assert job.attempts[0].error == f"node {dead} failed"
        faults = dist.stats()["faults"]
        assert faults["node_failures"] == 1
        assert faults["jobs_orphaned"] == 1
        assert faults["reroutes"] == 1
        assert faults["retries"] == 1

    def test_node_loss_without_policy_seals_failed(self):
        sim, grid, dist = des_distributor()
        job = dist.submit(JobRequest(name="victim", sim_duration=5.0))
        dead = next(iter(job.placement))
        assert dist.fail_node(dead) == []
        assert job.state is JobState.FAILED
        assert job.attempts[0].outcome == "node_lost"
        assert dist.stats()["faults"]["reroutes"] == 0

    def test_fail_node_frees_co_allocations_on_survivors(self):
        # A parallel job spanning several nodes must release the cores it
        # holds on *surviving* nodes when one of its nodes dies.
        sim, grid, dist = des_distributor(slaves=4)
        from repro.cluster.job import JobKind

        job = dist.submit(
            JobRequest(name="wide", sim_duration=50.0, kind=JobKind.PARALLEL, n_tasks=6)
        )
        assert len(job.placement) >= 2
        dead = next(iter(job.placement))
        dist.fail_node(dead)
        assert job.state is JobState.FAILED
        for node in grid.compute_nodes():
            assert not node.holds(job.id)
        assert grid.cores_free == grid.cores_total - 2  # only the dead node missing

    def test_double_fail_and_double_recover_are_noops(self):
        # Idempotency contract: a duplicate fault/recovery delivery (spot
        # reclamation racing a health downing, a replayed RPC) must not
        # crash, double-requeue, or inflate the counters.
        sim, grid, dist = des_distributor()
        job = dist.submit(JobRequest(name="victim", sim_duration=50.0))
        dead = next(iter(job.placement))
        dist.fail_node(dead)
        assert dist.fail_node(dead) == []           # second fail: no-op
        assert dist.stats()["faults"]["node_failures"] == 1
        assert len(job.attempts) == 1               # no double-retirement
        dist.recover_node(dead)
        dist.recover_node(dead)                     # second recover: no-op
        assert dist.stats()["faults"]["nodes_recovered"] == 1
        assert grid.node(dead).state is NodeState.UP

    def test_kill_mid_array_never_strands_queued_siblings(self):
        # Regression: FaultInjector used to poke placements/_handles
        # directly; a kill between array dispatch rounds could leave the
        # queued siblings waiting forever.
        sim, grid, dist = des_distributor()
        jobs = dist.submit_array(JobRequest(name="arr", sim_duration=4.0), 10)
        running = [j for j in jobs if j.state is JobState.RUNNING]
        assert running and any(j.state is JobState.QUEUED for j in jobs)
        injector = FaultInjector(dist)
        injector.kill_node(next(iter(running[0].placement)))
        sim.run()
        states = {j.state for j in jobs}
        assert JobState.QUEUED not in states and JobState.RUNNING not in states
        assert all(j.terminal for j in jobs)
        # survivors absorbed the whole queue
        assert sum(1 for j in jobs if j.state is JobState.COMPLETED) >= 6

    def test_kill_mid_array_with_retry_completes_everything(self):
        sim, grid, dist = des_distributor(retry=FAST_RETRY)
        jobs = dist.submit_array(JobRequest(name="arr", sim_duration=4.0), 10)
        victim_node = next(iter(next(j for j in jobs if j.state is JobState.RUNNING).placement))
        FaultInjector(dist).kill_node(victim_node)
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_injector_delegates_to_distributor_api(self):
        sim, grid, dist = des_distributor(retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="v", sim_duration=5.0))
        dead = next(iter(job.placement))
        injector = FaultInjector(dist)
        assert injector.kill_node(dead) == [job.id]
        # first-class path: counted, rerouted, no direct resubmission
        assert dist.stats()["faults"]["node_failures"] == 1
        sim.run()
        assert job.state is JobState.COMPLETED
        assert len(dist.jobs) == 1  # rerouted in place, not cloned


class TestHealth:
    def test_repeated_failures_mark_node_suspect_and_skip_it(self):
        sim, grid, dist = des_distributor(
            health_policy=HealthPolicy(suspect_after=2, window_s=100.0, probation_s=1000.0)
        )
        # Two timed-out attempts on the same (first-fit) node flag it.
        for k in range(2):
            job = dist.submit(JobRequest(name=f"t{k}", sim_duration=50.0, timeout_s=1.0))
            node = next(iter(job.placement))
            sim.run(until=sim.now + 5.0)
            assert job.state is JobState.TIMEOUT
        assert grid.node(node).state is NodeState.SUSPECT
        assert dist.stats()["faults"]["nodes_suspected"] == 1
        assert grid.cores_up == grid.cores_total - 2  # suspect hides capacity
        # placement now avoids the suspect node
        ok = dist.submit(JobRequest(name="ok", sim_duration=1.0))
        assert node not in ok.placement
        sim.run(until=sim.now + 5.0)
        assert ok.state is JobState.COMPLETED

    def test_suspect_node_rejoins_after_probation(self):
        sim, grid, dist = des_distributor(
            health_policy=HealthPolicy(suspect_after=1, window_s=100.0, probation_s=30.0)
        )
        job = dist.submit(JobRequest(name="t", sim_duration=50.0, timeout_s=1.0))
        node = next(iter(job.placement))
        sim.run(until=5.0)
        assert grid.node(node).state is NodeState.SUSPECT
        # quiet period passes on virtual time; the next round rejoins it
        sim.run(until=40.0)
        dist.dispatch()
        assert grid.node(node).state is NodeState.UP
        assert dist.stats()["faults"]["nodes_rejoined"] == 1
        assert grid.cores_up == grid.cores_total

    def test_degraded_flag_tracks_surviving_capacity(self):
        sim, grid, dist = des_distributor(
            slaves=4, health_policy=HealthPolicy(degraded_below=0.5)
        )
        assert dist.health is not None and not dist.health.degraded
        dist.fail_node("seg-0-n00")
        dist.fail_node("seg-0-n01")
        assert dist.health.up_fraction == 0.5
        assert not dist.health.degraded  # strictly-below threshold
        dist.fail_node("seg-0-n02")
        snap = dist.stats()["health"]
        assert snap["degraded"] is True
        assert snap["cores_up"] == 2
        assert set(snap["down_nodes"]) == {"seg-0-n00", "seg-0-n01", "seg-0-n02"}
        dist.recover_node("seg-0-n00")
        assert not dist.health.degraded

    def test_success_heartbeats_clear_nothing_but_are_recorded(self):
        sim, grid, dist = des_distributor()
        job = dist.submit(JobRequest(name="ok", sim_duration=1.0))
        node = next(iter(job.placement))
        sim.run()
        assert job.state is JobState.COMPLETED
        health = dist.health
        assert health._nodes[node].last_heartbeat is not None

    def test_track_health_false_disables_monitor(self):
        sim, grid, dist = des_distributor(track_health=False)
        assert dist.health is None
        job = dist.submit(JobRequest(name="j", sim_duration=1.0))
        sim.run()
        assert job.state is JobState.COMPLETED
        assert dist.stats()["health"] is None

    def test_health_monitor_failure_window_slides(self):
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        hm = HealthMonitor(grid, HealthPolicy(suspect_after=3, window_s=10.0))
        assert not hm.record_failure("seg-0-n00", t=0.0)
        assert not hm.record_failure("seg-0-n00", t=1.0)
        # the early failures age out of the window: no trip yet
        assert not hm.record_failure("seg-0-n00", t=11.5)
        assert not hm.record_failure("seg-0-n00", t=12.0)
        # but three within the same 10s window trip it
        assert hm.record_failure("seg-0-n00", t=13.0)


class TestStressKillRevive:
    def test_randomized_kill_revive_keeps_index_equal_to_rescan(self):
        rng = np.random.default_rng(2024)
        sim, grid, dist = des_distributor(
            segments=2, slaves=4, cores=2,
            retry=RetryPolicy(max_attempts=6, backoff_base_s=0.5, jitter=0.0),
        )
        names = [n.name for n in grid.compute_nodes()]

        def check_invariants():
            nodes = list(grid.compute_nodes())
            assert grid.cores_free == sum(n.cores_free for n in nodes)
            assert grid.cores_up == sum(
                n.spec.cores for n in nodes if n.state is NodeState.UP
            )
            for seg in grid.segments:
                assert seg.cores_free == sum(n.cores_free for n in seg.slaves)
                assert seg.cores_up == sum(
                    n.spec.cores for n in seg.slaves if n.state is NodeState.UP
                )
            for job in dist.jobs.values():
                if job.state is JobState.RUNNING:
                    for node_name, cores in job.placement.items():
                        node = grid.node(node_name)
                        assert node.state is NodeState.UP
                        assert node._job_cores.get(job.id) == cores

        for step in range(60):
            op = rng.random()
            up = [n for n in names if grid.node(n).state is NodeState.UP]
            down = [n for n in names if grid.node(n).state is NodeState.DOWN]
            if op < 0.45:
                dist.submit(
                    JobRequest(name=f"s{step}", sim_duration=float(rng.uniform(0.5, 4.0)))
                )
            elif op < 0.65 and len(up) > 1:
                dist.fail_node(up[int(rng.integers(0, len(up)))])
            elif op < 0.8 and down:
                dist.recover_node(down[int(rng.integers(0, len(down)))])
            else:
                sim.run(until=sim.now + float(rng.uniform(0.5, 3.0)))
            check_invariants()

        for name in names:
            if grid.node(name).state is not NodeState.UP:
                dist.recover_node(name)
        sim.run()
        check_invariants()
        assert all(j.terminal for j in dist.jobs.values())
        assert grid.cores_free == grid.cores_total


class TestConcurrencySmoke:
    def test_wait_all_returns_under_concurrent_kill_revive(self):
        def on_alarm(signum, frame):  # pragma: no cover - only on deadlock
            raise TimeoutError("wait_all deadlocked under kill/revive churn")

        old = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(30)  # hard bound: a deadlock fails loudly, not forever
        try:
            grid = Grid(ClusterSpec.small(segments=2, slaves=3, cores=2))
            dist = JobDistributor(
                grid,
                CallableBackend(),
                retry=RetryPolicy(max_attempts=8, backoff_base_s=0.01, jitter=0.0),
            )
            jobs = [
                dist.submit(
                    JobRequest(name=f"c{i}", callable=lambda job: time.sleep(0.03))
                )
                for i in range(12)
            ]
            stop = threading.Event()

            def churn():
                rng = np.random.default_rng(7)
                names = [n.name for n in grid.compute_nodes()]
                while not stop.is_set():
                    name = names[int(rng.integers(0, len(names)))]
                    try:
                        dist.fail_node(name)
                        time.sleep(0.02)
                        dist.recover_node(name)
                    except ResourceError:
                        pass  # raced with ourselves; fine
                    time.sleep(0.01)

            t = threading.Thread(target=churn, daemon=True)
            t.start()
            try:
                finished = dist.wait_all(timeout=20.0)
            finally:
                stop.set()
                t.join(5.0)
            dist.dispatch()
            assert finished, dist.stats()
            assert all(j.terminal for j in jobs)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old)


class TestPortalSurfacing:
    def test_stats_exposes_faults_and_health(self):
        sim, grid, dist = des_distributor()
        stats = dist.stats()
        assert set(stats["faults"]) >= {
            "retries", "timeouts", "wall_timeouts", "reroutes",
            "node_failures", "jobs_orphaned", "nodes_suspected",
            "nodes_rejoined", "nodes_recovered",
        }
        assert stats["health"]["degraded"] is False
        assert stats["grid"]["cores_up"] == grid.cores_total

    def test_describe_and_job_page_show_attempt_lineage(self):
        sim, grid, dist = des_distributor(retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="victim", sim_duration=5.0))
        dead = next(iter(job.placement))
        dist.fail_node(dead)
        sim.run()
        desc = job.describe()
        assert desc["retries"] == 1
        assert [a["outcome"] for a in desc["attempts"]] == ["node_lost", "completed"]
        from repro.portal import templates

        page = templates.job_page(desc, "out", "")
        assert "Attempts" in page and "node_lost" in page

    def test_dashboard_banner_renders_when_degraded(self):
        from repro.portal import templates

        health = {
            "degraded": True, "up_fraction": 0.25, "cores_up": 2, "cores_total": 8,
            "suspect_nodes": ["seg-0-n01"], "down_nodes": ["seg-0-n00"],
            "failures_by_node": {},
        }
        page = templates.dashboard_page("alice", [], [], {"segments": {}}, health=health)
        assert "Cluster degraded" in page and "seg-0-n00" in page
        healthy = dict(health, degraded=False)
        page2 = templates.dashboard_page("alice", [], [], {"segments": {}}, health=healthy)
        assert "Cluster degraded" not in page2

    def test_output_fingerprint_moves_on_retry(self):
        sim, grid, dist = des_distributor(retry=FAST_RETRY)
        job = dist.submit(JobRequest(name="victim", sim_duration=5.0))
        from repro.portal.jobsvc import JobService

        fp_before = JobService.output_fingerprint(None, job)
        dist.fail_node(next(iter(job.placement)))
        fp_after = JobService.output_fingerprint(None, job)
        assert fp_before != fp_after  # pollers see the reroute immediately
        sim.run()
        assert job.state is JobState.COMPLETED


class TestPortalAcceptance:
    """End-to-end acceptance: a compiled job survives its node dying."""

    @pytest.mark.skipif(not __import__("shutil").which("gcc"), reason="gcc not available")
    def test_killed_node_job_reroutes_and_lineage_shows_in_portal(
        self, portal_app, student_client
    ):
        program = (
            '#include <stdio.h>\n#include <unistd.h>\n'
            'int main(void){ sleep(2); printf("survived\\n"); return 0; }\n'
        )
        student_client.write_file("survivor.c", program)
        job_id = student_client.submit_job("survivor.c", max_retries=2)["job"]["id"]

        dist = portal_app.jobsvc.distributor
        deadline = time.time() + 10.0
        while time.time() < deadline:
            desc = student_client.job(job_id)
            if desc["state"] == "running" and desc["placement"]:
                break
            time.sleep(0.02)
        else:
            pytest.fail(f"job never started: {student_client.job(job_id)}")

        victim = next(iter(desc["placement"]))
        dist.fail_node(victim)

        final = student_client.wait_for_job(job_id, timeout=30.0)
        assert final["state"] == "completed", final
        assert final["retries"] >= 1
        outcomes = [a["outcome"] for a in final["attempts"]]
        assert outcomes[0] == "node_lost" and outcomes[-1] == "completed"
        assert victim not in final["placement"]
        assert "survived" in student_client.job_output(job_id)["stdout"]
        faults = dist.stats()["faults"]
        assert faults["reroutes"] >= 1 and faults["jobs_orphaned"] >= 1
