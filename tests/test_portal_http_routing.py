"""HTTP layer and router units."""

import io

import pytest

from repro.portal.http import HttpError, Request, Response
from repro.portal.routing import Router


def make_environ(method="GET", path="/", query="", body=b"", content_type="", headers=None):
    env = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(body)),
        "CONTENT_TYPE": content_type,
        "wsgi.input": io.BytesIO(body),
    }
    for k, v in (headers or {}).items():
        env["HTTP_" + k.upper().replace("-", "_")] = v
    return env


class TestRequest:
    def test_query_parsing(self):
        req = Request(make_environ(query="a=1&b=two&b=three"))
        assert req.query == {"a": "1", "b": "three"}

    def test_json_body(self):
        req = Request(make_environ(method="POST", body=b'{"k": [1, 2]}'))
        assert req.json() == {"k": [1, 2]}

    def test_malformed_json_is_400(self):
        req = Request(make_environ(method="POST", body=b"{nope"))
        with pytest.raises(HttpError) as e:
            req.json()
        assert e.value.status == 400

    def test_empty_json_body_is_empty_dict(self):
        assert Request(make_environ()).json() == {}

    def test_form_parsing(self):
        req = Request(make_environ(method="POST", body=b"user=bob&pw=x%26y"))
        assert req.form() == {"user": "bob", "pw": "x&y"}

    def test_multipart_parsing(self):
        boundary = "XYZ"
        body = (
            f"--{boundary}\r\n"
            'Content-Disposition: form-data; name="f1"; filename="a.txt"\r\n'
            "Content-Type: text/plain\r\n\r\n"
            "file contents\r\n"
            f"--{boundary}--\r\n"
        ).encode()
        req = Request(
            make_environ(
                method="POST",
                body=body,
                content_type=f"multipart/form-data; boundary={boundary}",
            )
        )
        parts = req.multipart()
        assert parts["f1"] == ("a.txt", b"file contents")

    def test_multipart_requires_content_type(self):
        req = Request(make_environ(method="POST", body=b"x"))
        with pytest.raises(HttpError):
            req.multipart()

    def test_oversized_body_rejected(self):
        env = make_environ()
        env["CONTENT_LENGTH"] = str(100 * 1024 * 1024)
        with pytest.raises(HttpError) as e:
            _ = Request(env).body
        assert e.value.status == 413

    def test_cookie_parsing(self):
        req = Request(make_environ(headers={"Cookie": "a=1; b=two"}))
        assert req.cookies() == {"a": "1", "b": "two"}

    def test_header_lookup(self):
        req = Request(make_environ(headers={"Authorization": "Bearer tok"}))
        assert req.header("Authorization") == "Bearer tok"
        assert req.header("Missing", "dflt") == "dflt"


class TestResponse:
    def capture(self, resp):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = headers

        body = b"".join(resp.to_wsgi(start_response))
        return captured, body

    def test_json_response(self):
        cap, body = self.capture(Response.json({"ok": True}))
        assert cap["status"].startswith("200")
        assert b'"ok"' in body
        assert ("Content-Type", "application/json") in cap["headers"]

    def test_error_response(self):
        cap, body = self.capture(Response.error(404, "gone"))
        assert cap["status"].startswith("404")
        assert b"gone" in body

    def test_redirect(self):
        cap, _ = self.capture(Response.redirect("/login"))
        assert cap["status"].startswith("302")
        assert ("Location", "/login") in cap["headers"]

    def test_download_headers(self):
        cap, body = self.capture(Response.download(b"bytes", "f.bin"))
        assert body == b"bytes"
        assert any("attachment" in v for _, v in cap["headers"])

    def test_cookie_set_and_delete(self):
        resp = Response("x").set_cookie("sid", "abc", max_age=60)
        values = [v for k, v in resp.headers if k == "Set-Cookie"]
        assert any("sid=abc" in v and "Max-Age=60" in v and "HttpOnly" in v for v in values)
        resp.delete_cookie("sid")
        values = [v for k, v in resp.headers if k == "Set-Cookie"]
        assert any("Max-Age=0" in v for v in values)

    def test_content_length_set(self):
        cap, _ = self.capture(Response("hello"))
        assert ("Content-Length", "5") in cap["headers"]


class TestRouter:
    def make(self):
        router = Router()
        router.add("GET", "/things", lambda r: Response("list"))
        router.add("POST", "/things", lambda r: Response("created"))
        router.add("GET", "/things/<thing_id>", lambda r: Response(r.params["thing_id"]))
        router.add("GET", "/files/<path:rest>", lambda r: Response(r.params["rest"]))
        return router

    def dispatch(self, router, method, path):
        return router.dispatch(Request(make_environ(method=method, path=path)))

    def test_static_match(self):
        assert self.dispatch(self.make(), "GET", "/things").body == b"list"

    def test_method_dispatch(self):
        assert self.dispatch(self.make(), "POST", "/things").body == b"created"

    def test_param_extraction(self):
        assert self.dispatch(self.make(), "GET", "/things/42").body == b"42"

    def test_path_param_spans_slashes(self):
        assert self.dispatch(self.make(), "GET", "/files/a/b/c.txt").body == b"a/b/c.txt"

    def test_segment_param_rejects_slashes(self):
        with pytest.raises(HttpError) as e:
            self.dispatch(self.make(), "GET", "/things/1/2")
        assert e.value.status == 404

    def test_405_for_wrong_method(self):
        with pytest.raises(HttpError) as e:
            self.dispatch(self.make(), "DELETE", "/things")
        assert e.value.status == 405
        assert "GET" in e.value.message

    def test_404_for_unknown_path(self):
        with pytest.raises(HttpError) as e:
            self.dispatch(self.make(), "GET", "/nope")
        assert e.value.status == 404

    def test_duplicate_route_rejected(self):
        router = self.make()
        with pytest.raises(ValueError):
            router.add("GET", "/things", lambda r: Response("x"))

    def test_decorator_form(self):
        router = Router()

        @router.route("GET", "/deco")
        def handler(req):
            return Response("decorated")

        assert self.dispatch(router, "GET", "/deco").body == b"decorated"


class TestRouterOverlap405:
    """A method mismatch in one tier must never shadow a match in another."""

    def make(self):
        router = Router()
        router.add("GET", "/api/files", lambda r: Response("static-get"))
        router.add("POST", "/api/<section>", lambda r: Response(f"dyn-{r.params['section']}"))
        return router

    def dispatch(self, router, method, path):
        return router.dispatch(Request(make_environ(method=method, path=path)))

    def test_static_wins_for_its_method(self):
        assert self.dispatch(self.make(), "GET", "/api/files").body == b"static-get"

    def test_wrong_method_on_static_falls_through_to_dynamic(self):
        # Pre-fast-path routers that stopped at the first pattern match
        # would raise 405 here; the POST must reach the dynamic route.
        assert self.dispatch(self.make(), "POST", "/api/files").body == b"dyn-files"

    def test_405_lists_union_of_methods_across_tiers(self):
        with pytest.raises(HttpError) as e:
            self.dispatch(self.make(), "DELETE", "/api/files")
        assert e.value.status == 405
        assert "GET" in e.value.message and "POST" in e.value.message

    def test_dynamic_method_mismatch_does_not_shadow_prefix_route(self):
        router = Router()
        router.add("POST", "/files/<name>", lambda r: Response("upload"))
        router.add("GET", "/files/<path:rest>", lambda r: Response(r.params["rest"]))
        assert self.dispatch(router, "GET", "/files/report.txt").body == b"report.txt"
        assert self.dispatch(router, "POST", "/files/report.txt").body == b"upload"

    def test_tier_counters_track_static_vs_dynamic(self):
        router = self.make()
        self.dispatch(router, "GET", "/api/files")
        self.dispatch(router, "GET", "/api/files")
        self.dispatch(router, "POST", "/api/jobs")
        assert router.counters == {"routed_static": 2, "routed_dynamic": 1}
