"""Smaller behaviours not covered elsewhere: queues, requests, errors,
analytics edges, segment helpers."""

import pytest

from repro._errors import (
    AuthenticationError,
    CompilationError,
    DeadlockError,
    MPIError,
    PathTraversalError,
    PortalError,
    ReproError,
    SchedulingError,
)
from repro.cluster import Job, JobQueue, JobRequest, JobState, Segment, SegmentSpec
from repro.education.analytics import shape_agreement
from repro.minimpi import Request


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        for exc_cls in (AuthenticationError, CompilationError, DeadlockError,
                        MPIError, PathTraversalError, SchedulingError):
            assert issubclass(exc_cls, ReproError)

    def test_path_traversal_is_portal_error(self):
        assert issubclass(PathTraversalError, PortalError)

    def test_compilation_error_carries_diagnostics(self):
        exc = CompilationError("failed", diagnostics="line 3: boom")
        assert exc.diagnostics == "line 3: boom"

    def test_deadlock_error_carries_cycle(self):
        exc = DeadlockError("dl", cycle=[("a", "m1"), ("b", "m2")])
        assert exc.cycle == [("a", "m1"), ("b", "m2")]
        assert DeadlockError("dl").cycle == []


class TestJobQueue:
    def make_job(self, name="j"):
        job = Job(JobRequest(name=name, sim_duration=1.0))
        job.transition(JobState.QUEUED)
        return job

    def test_push_requires_queued_state(self):
        q = JobQueue()
        pending = Job(JobRequest(name="p", sim_duration=1.0))
        with pytest.raises(SchedulingError):
            q.push(pending)

    def test_head_and_order(self):
        q = JobQueue()
        a, b = self.make_job("a"), self.make_job("b")
        q.push(a)
        q.push(b)
        assert q.head() is a
        assert [j.request.name for j in q] == ["a", "b"]

    def test_remove_missing_returns_false(self):
        q = JobQueue()
        assert not q.remove(self.make_job())

    def test_purge_terminal(self):
        q = JobQueue()
        alive, dead = self.make_job("alive"), self.make_job("dead")
        q.push(alive)
        q.push(dead)
        dead.transition(JobState.CANCELLED)
        assert q.purge_terminal() == 1
        assert [j.request.name for j in q] == ["alive"]

    def test_empty_head_is_none(self):
        assert JobQueue().head() is None


class TestRequestHelpers:
    def test_testall_incomplete(self):
        reqs = [Request("irecv"), Request("irecv")]
        reqs[0]._complete("x")
        done, values = Request.testall(reqs)
        assert not done and values is None

    def test_testall_complete(self):
        reqs = [Request("irecv"), Request("irecv")]
        for i, r in enumerate(reqs):
            r._complete(i)
        done, values = Request.testall(reqs)
        assert done and values == [0, 1]

    def test_wait_timeout_raises(self):
        with pytest.raises(MPIError, match="timed out"):
            Request("irecv").wait(timeout=0.01)

    def test_failed_request_reraises_on_test(self):
        req = Request("irecv")
        req._complete(exc=ValueError("boom"))
        with pytest.raises(ValueError):
            req.test()

    def test_cancel_flag(self):
        req = Request("irecv")
        req.cancel()
        assert req._cancelled and not req.completed


class TestShapeAgreement:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            shape_agreement([1, 2], [1, 2, 3])

    def test_perfect_match(self):
        result = shape_agreement([0.1, 0.5, 0.9], [0.1, 0.5, 0.9])
        assert result["max_abs_deviation"] == 0.0
        assert result["exact_rank_match"]
        assert result["rank_correlation"] == pytest.approx(1.0)

    def test_inverted_ranks_detected(self):
        result = shape_agreement([0.1, 0.5, 0.9], [0.9, 0.5, 0.1])
        assert not result["exact_rank_match"]
        assert result["rank_correlation"] == pytest.approx(-1.0)

    def test_constant_series_rank_corr_defined(self):
        result = shape_agreement([0.5, 0.5], [0.4, 0.6])
        assert result["rank_correlation"] == pytest.approx(1.0)  # tie ranks still correlate


class TestSegment:
    def test_master_not_among_slaves(self):
        seg = Segment(SegmentSpec("s", n_slaves=3))
        assert len(seg) == 3
        assert seg.master.name not in {n.name for n in seg}

    def test_load_fraction(self):
        seg = Segment(SegmentSpec("s", n_slaves=2))
        assert seg.load == 0.0
        seg.slaves[0].allocate("j", 1)
        assert seg.load == pytest.approx(1 / 4)

    def test_up_slaves_excludes_down(self):
        seg = Segment(SegmentSpec("s", n_slaves=2))
        seg.slaves[0].mark_down()
        assert len(seg.up_slaves()) == 1


class TestSimulatorCounters:
    def test_processed_events_counts(self):
        from repro.desim import Simulator

        sim = Simulator()
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.processed_events == 5
