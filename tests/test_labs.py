"""The seven course labs: broken variants misbehave, fixed variants are correct."""

import pytest

from repro.labs import get_lab, lab_ids, registry
from repro.labs.lab5_bank import (
    EXPECTED,
    run_all_steps,
    step_i_sequential,
    step_iv_joined_threads,
    step_v_concurrent_threads,
    step_vi_mutex_threads,
)
from repro.labs.lab6_philosophers import (
    build_program,
    explore_fixed,
    find_deadlock_witness,
)

SEEDS = range(6)


class TestRegistry:
    def test_all_seven_labs_registered(self):
        assert lab_ids() == [f"lab{i}" for i in range(1, 8)]

    def test_lab_metadata(self):
        for lab in registry.values():
            assert lab.title and lab.chapter
            assert "broken" in lab.variants and "fixed" in lab.variants

    def test_unknown_lab_raises(self):
        from repro._errors import LabError

        with pytest.raises(LabError):
            get_lab("lab99")

    def test_unknown_variant_raises(self):
        from repro._errors import LabError

        with pytest.raises(LabError):
            get_lab("lab1").run("nonexistent")


@pytest.mark.parametrize("lab_id", [f"lab{i}" for i in range(1, 8)])
class TestFixedVariantsAlwaysPass:
    def test_fixed_passes_across_seeds(self, lab_id):
        lab = get_lab(lab_id)
        for seed in SEEDS:
            result = lab.run("fixed", seed)
            assert result.passed, f"{lab_id} fixed failed at seed {seed}: {result}"


class TestBrokenVariantsMisbehave:
    @pytest.mark.parametrize("lab_id", ["lab1", "lab2", "lab3", "lab4", "lab5"])
    def test_broken_fails_at_common_seeds(self, lab_id):
        lab = get_lab(lab_id)
        assert not all(lab.run("broken", s).passed for s in SEEDS)

    def test_lab6_broken_deadlocks_under_witness_search(self):
        assert find_deadlock_witness() is not None

    def test_lab7_broken_loses_or_reorders_items(self):
        lab = get_lab("lab7")
        assert not all(lab.run("broken", s).passed for s in range(8))


class TestLab1:
    def test_broken_loses_updates_and_reports_race(self):
        result = get_lab("lab1").run("broken", seed=0)
        assert result.observations["lost_updates"] > 0
        assert result.observations["races_detected"] >= 1

    def test_fixed_exact_count_no_races(self):
        result = get_lab("lab1").run("fixed", seed=0)
        assert result.observations["final_count"] == result.observations["expected"]
        assert result.observations["races_detected"] == 0


class TestLab2:
    def test_fixed_counts_coherence_traffic(self):
        result = get_lab("lab2").run("fixed", seed=1)
        assert result.passed
        assert result.observations["invalidations"] > 0
        assert result.observations["spins"] >= 0

    def test_ttas_reduces_invalidations_vs_tas(self):
        lab = get_lab("lab2")
        tas = lab.run("fixed", seed=1).observations["invalidations"]
        ttas = lab.run("fixed_ttas", seed=1).observations["invalidations"]
        assert ttas < tas

    def test_broken_detects_race_on_shared_data(self):
        result = get_lab("lab2").run("broken", seed=0)
        assert result.observations["races_detected"] >= 1


class TestLab3:
    def test_fixed_shows_numa_penalty(self):
        result = get_lab("lab3").run("fixed", seed=0)
        assert result.observations["numa_penalty"] > 1.5
        assert result.observations["remote_penalty"] > 1.0

    def test_broken_shows_no_penalty(self):
        result = get_lab("lab3").run("broken", seed=0)
        assert result.observations["numa_penalty"] == pytest.approx(1.0)


class TestLab4:
    def test_fixed_copies_file_faithfully(self, tmp_path):
        from repro.labs.lab4_prodcons import run_fixed

        result = run_fixed(seed=3)
        assert result.observations["faithful_copy"]

    def test_broken_corrupts_for_some_seed(self):
        from repro.labs.lab4_prodcons import run_broken

        assert any(not run_broken(s).observations["faithful_copy"] for s in SEEDS)

    def test_input_file_format(self, tmp_path):
        from repro.labs.lab4_prodcons import make_input_file

        path = make_input_file(tmp_path, numbers=[5, 6, 7])
        tokens = [int(t) for t in path.read_text().split()]
        assert tokens == [5, 6, 7, -1]


class TestLab5BankSteps:
    def test_sequential_always_correct(self):
        assert step_i_sequential() == EXPECTED

    def test_joined_threads_correct(self):
        assert all(step_iv_joined_threads(s) == EXPECTED for s in SEEDS)

    def test_concurrent_threads_wrong_somewhere(self):
        results = {step_v_concurrent_threads(s) for s in SEEDS}
        assert any(r != EXPECTED for r in results)

    def test_concurrent_varies_run_to_run(self):
        # The paper: "Run the program several times. Do you see different
        # result?" — yes.
        results = {step_v_concurrent_threads(s) for s in range(10)}
        assert len(results) > 1

    def test_mutex_restores_correctness(self):
        assert all(step_vi_mutex_threads(s) == EXPECTED for s in SEEDS)

    def test_run_all_steps_narrative(self):
        steps = run_all_steps(seed=1)
        assert steps["i_sequential"] == EXPECTED
        assert steps["iv_joined"] == EXPECTED
        assert steps["vi_mutex"] == EXPECTED


class TestLab6Philosophers:
    def test_fixed_exploration_is_clean(self):
        result = explore_fixed(max_schedules=300)
        assert result.clean

    def test_deadlock_cycle_names_philosophers(self):
        from repro.interleave import RandomPolicy

        seed = find_deadlock_witness()
        sched, _ = build_program(RandomPolicy(seed), ordered=False)
        run = sched.run()
        assert run.deadlocked
        assert len(run.deadlock.cycle) == 5  # all five in the hold-wait cycle

    def test_event_log_records_requests_and_allocations(self):
        from repro.interleave import RandomPolicy
        from repro.interleave.scheduler import Scheduler
        from repro.labs.lab6_philosophers import philosopher
        from repro.interleave.primitives import VMutex

        sched = Scheduler(policy=RandomPolicy(1), detect_races=False)
        forks = [VMutex(f"fork{i}") for i in range(5)]
        log = []
        for i in range(5):
            sched.spawn(philosopher(i, forks, log, 1, False), name=f"P{i}")
        run = sched.run()
        if run.ok:
            assert any("requests" in line for line in log)
            assert any("allocated" in line for line in log)
            assert any("releases" in line for line in log)


class TestLab7BoundedBuffer:
    def test_both_fixes_work(self):
        lab = get_lab("lab7")
        for variant in ("fixed", "fixed_semaphore"):
            for seed in SEEDS:
                assert lab.run(variant, seed).passed

    def test_fixed_delivers_in_order(self):
        result = get_lab("lab7").run("fixed", seed=2)
        assert result.observations["in_order"]

    def test_broken_observations_explain_failure(self):
        lab = get_lab("lab7")
        failing = [lab.run("broken", s) for s in range(8) if not lab.run("broken", s).passed]
        assert failing
        obs = failing[0].observations
        assert (not obs["in_order"]) or obs["deadlocked"] or obs["consumed"] < obs["expected"]


class TestDemonstrate:
    def test_demonstrate_runs_all_variants(self):
        demo = get_lab("lab1").demonstrate(seeds=range(3))
        assert set(demo) == {"broken", "fixed"}
        assert len(demo["broken"]) == 3
