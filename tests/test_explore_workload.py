"""Distributed schedule exploration: cluster workload + portal endpoints."""

import pytest

from repro._errors import JobError
from repro.cluster.job import JobRequest
from repro.cluster.workloads import ExploreJobSpec, run_exploration
from repro.interleave.explorer import explore
from repro.labs.explore import program
from repro.portal.client import PortalError


class TestRunExploration:
    @pytest.mark.parametrize(
        "lab_id,variant", [("lab6", "broken"), ("lab6", "fixed"), ("lab1", "broken")]
    )
    def test_matches_solo_dpor(self, callable_distributor, lab_id, variant):
        factory = program(lab_id, variant)
        spec = ExploreJobSpec(partitions=3, seed_schedules=2, wave_budget=128)
        dist = run_exploration(callable_distributor, factory, spec)
        solo = explore(factory, max_schedules=100_000, strategy="dpor")
        assert dist.exhausted and solo.exhausted
        assert dist.finding_set() == solo.finding_set()
        assert dist.schedules_run == solo.schedules_run

    def test_single_partition_degenerates_gracefully(self, callable_distributor):
        factory = program("lab1", "broken")
        spec = ExploreJobSpec(partitions=1, seed_schedules=1, wave_budget=128)
        result = run_exploration(callable_distributor, factory, spec)
        solo = explore(factory, max_schedules=100_000, strategy="dpor")
        assert result.finding_set() == solo.finding_set()

    def test_seed_exhausts_without_dispatch(self, callable_distributor):
        """A generous seed budget finishes on the coordinator alone."""
        factory = program("lab1", "fixed")
        spec = ExploreJobSpec(partitions=4, seed_schedules=1000)
        result = run_exploration(callable_distributor, factory, spec)
        assert result.exhausted
        assert not callable_distributor.jobs, "no worker jobs were needed"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ExploreJobSpec(partitions=0)
        with pytest.raises(ValueError):
            ExploreJobSpec(max_waves=0)

    def test_callable_routing_on_subprocess_backend(self, portal_app):
        """An argv-oriented distributor transparently runs callable jobs."""
        distributor = portal_app.jobsvc.distributor
        job = distributor.submit(JobRequest(name="c", callable=lambda job: 41 + 1))
        assert distributor.wait_all(10)
        assert job.result == 42


class TestPortalExplore:
    def _wait_report(self, client, job_id, timeout=30.0):
        client.wait_for_job(job_id, timeout=timeout)
        envelope = client.explore_report(job_id)
        assert envelope["ready"], envelope
        return envelope["report"]

    def test_dpor_explore_roundtrip(self, student_client):
        job = student_client.explore("lab6", "broken", max_schedules=500)
        report = self._wait_report(student_client, job["id"])
        assert report["algorithm"] == "dpor"
        assert report["stop_reason"] == "exhausted"
        assert report["deadlocks"], "the philosophers deadlock must be witnessed"

    def test_naive_explore_roundtrip(self, student_client):
        job = student_client.explore("lab1", "broken", algorithm="naive",
                                     max_schedules=500)
        report = self._wait_report(student_client, job["id"])
        assert report["algorithm"] == "dfs"
        assert report["violations"]

    def test_distributed_explore_roundtrip(self, admin_client):
        job = admin_client.explore("lab6", "fixed", algorithm="dpor-distributed",
                                   max_schedules=500)
        report = self._wait_report(admin_client, job["id"], timeout=60.0)
        assert report["stop_reason"] == "exhausted"
        assert report["clean"]

    def test_report_not_ready_before_completion(self, student_client):
        job = student_client.explore("lab6", "broken", max_schedules=500)
        envelope = student_client.explore_report(job["id"])
        assert set(envelope) >= {"state", "ready"}
        student_client.wait_for_job(job["id"], timeout=30.0)

    def test_ownership_enforced(self, student_client, admin_client):
        job = admin_client.explore("lab6", "broken", max_schedules=100)
        admin_client.wait_for_job(job["id"], timeout=30.0)
        with pytest.raises(PortalError):
            student_client.explore_report(job["id"])

    def test_unknown_lab_rejected(self, student_client):
        with pytest.raises(PortalError):
            student_client.explore("lab99")

    def test_unknown_algorithm_rejected(self, student_client):
        with pytest.raises(PortalError):
            student_client.explore("lab1", algorithm="quantum")

    def test_explore_job_listed_with_owner(self, student_client):
        job = student_client.explore("lab1", "fixed", max_schedules=200)
        student_client.wait_for_job(job["id"], timeout=30.0)
        listed = {j["id"]: j for j in student_client.jobs()}
        assert job["id"] in listed
        assert listed[job["id"]]["name"] == "explore-lab1-fixed"


class TestServiceValidation:
    def test_bad_max_schedules(self, portal_app):
        user = portal_app.users.get("admin")
        with pytest.raises(JobError):
            portal_app.jobsvc.explore(user, "lab1", max_schedules=0)
