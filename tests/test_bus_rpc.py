"""The message bus, RPC layer, and cluster back-end service."""

from __future__ import annotations

import threading
import time

import pytest

from repro._errors import (
    AuthorizationError,
    BusError,
    JobError,
    RpcRemoteError,
    RpcTimeout,
)
from repro.bus import (
    ClusterBackendService,
    ClusterProxy,
    MessageBus,
    RpcClient,
    RpcServer,
    available_backends,
    decode_wire,
    encode_wire,
)
from repro.cluster.backends import SubprocessBackend
from repro.cluster.distributor import JobDistributor
from repro.cluster.grid import Grid
from repro.cluster.job import JobKind, JobRequest, RetryPolicy
from repro.cluster.spec import ClusterSpec


class TestBusCore:
    def test_send_receive_fifo(self):
        bus = MessageBus()
        bus.send("q", "a")
        bus.send("q", "b")
        assert bus.receive("q", 0.1) == "a"
        assert bus.receive("q", 0.1) == "b"
        assert bus.receive("q", 0.01) is None

    def test_depth_and_counters(self):
        bus = MessageBus()
        bus.send("q", "x")
        assert bus.depth("q") == 1
        bus.receive("q", 0.1)
        assert bus.depth("q") == 0
        stats = bus.stats()
        assert stats["sent"] == 1 and stats["delivered"] == 1
        assert stats["backend"] == "memory"

    def test_blocking_receive_wakes_on_send(self):
        bus = MessageBus()
        got = []
        t = threading.Thread(target=lambda: got.append(bus.receive("q", 2.0)))
        t.start()
        time.sleep(0.02)
        bus.send("q", "wake")
        t.join(2.0)
        assert got == ["wake"]

    def test_publish_fans_out_to_all_subscribers(self):
        bus = MessageBus()
        seen: list = []
        bus.subscribe("t", lambda p: seen.append(("a", p)))
        bus.subscribe("t", lambda p: seen.append(("b", p)))
        assert bus.publish("t", "hello") == 2
        assert seen == [("a", "hello"), ("b", "hello")]
        assert bus.publish("empty-topic", "x") == 0

    def test_empty_queue_name_rejected(self):
        with pytest.raises(BusError):
            MessageBus().send("", "x")

    def test_external_broker_backends_are_gated(self):
        assert {"memory", "redis", "kafka"} <= set(available_backends())
        for name in ("redis", "kafka"):
            with pytest.raises(BusError, match="not available"):
                MessageBus(name)
        with pytest.raises(BusError, match="unknown bus backend"):
            MessageBus("rabbitmq")


class TestWireCodec:
    def test_roundtrip(self):
        payload = {"a": [1, 2], "b": "text", "c": None}
        assert decode_wire(encode_wire(payload)) == payload

    def test_unserialisable_payload_rejected(self):
        with pytest.raises(BusError, match="not wire-safe"):
            encode_wire({"f": lambda: None})

    def test_malformed_wire_rejected(self):
        with pytest.raises(BusError, match="malformed"):
            decode_wire("{not json")


class TestRpc:
    def _server(self, bus):
        server = RpcServer(bus, "svc")
        server.register("echo", lambda p: p)
        server.register("boom", lambda p: (_ for _ in ()).throw(ValueError("bad")))
        return server

    def test_request_reply_roundtrip(self):
        bus = MessageBus()
        server = self._server(bus)
        client = RpcClient(bus, "svc")
        done = threading.Thread(target=server.serve_step, args=(1.0,))
        done.start()
        assert client.call("echo", {"x": 1}, timeout=2.0) == {"x": 1}
        done.join()
        assert server.requests_served == 1

    def test_remote_error_carries_type(self):
        bus = MessageBus()
        server = self._server(bus)
        server.start()
        try:
            client = RpcClient(bus, "svc")
            with pytest.raises(RpcRemoteError) as exc_info:
                client.call("boom", timeout=2.0)
            assert exc_info.value.remote_type == "ValueError"
            with pytest.raises(RpcRemoteError) as exc_info:
                client.call("nope", timeout=2.0)
            assert exc_info.value.remote_type == "BusError"
        finally:
            server.stop()
        assert server.errors_returned == 2

    def test_timeout_when_nobody_serves(self):
        bus = MessageBus()
        client = RpcClient(bus, "svc")
        with pytest.raises(RpcTimeout):
            client.call("echo", timeout=0.05)
        assert client.timeouts == 1

    def test_stale_reply_from_timed_out_call_is_dropped(self):
        """A late reply to call N must not satisfy call N+1."""
        bus = MessageBus()
        client = RpcClient(bus, "svc")
        with pytest.raises(RpcTimeout):
            client.call("echo", {"n": 1}, timeout=0.05)
        # the late reply for corr=1 lands just before call 2 looks
        bus.send(client.reply_queue, encode_wire({"corr": 1, "ok": "stale"}))
        server = self._server(bus)
        server.start()
        try:
            assert client.call("echo", {"n": 2}, timeout=2.0) == {"n": 2}
        finally:
            server.stop()

    def test_clients_have_private_reply_queues(self):
        bus = MessageBus()
        a, b = RpcClient(bus, "svc"), RpcClient(bus, "svc")
        assert a.reply_queue != b.reply_queue

    def test_double_start_rejected(self):
        bus = MessageBus()
        server = self._server(bus)
        server.start()
        try:
            with pytest.raises(BusError):
                server.start()
        finally:
            server.stop()


class TestJobRequestWire:
    def test_roundtrip_preserves_everything(self):
        req = JobRequest(
            name="lab3",
            owner="alice",
            kind=JobKind.PARALLEL,
            argv=["./a.out", "--n", "4"],
            n_tasks=4,
            cores_per_task=2,
            memory_mb_per_task=256,
            priority=3,
            timeout_s=30.0,
            wallclock_timeout_s=120.0,
            est_runtime_s=10.0,
            after=("job-000001",),
            after_ok=True,
            stdin_data="5\n",
            env={"OMP_NUM_THREADS": "2"},
            retry=RetryPolicy(max_attempts=2, retry_on=frozenset({"failed"})),
        )
        back = JobRequest.from_wire(req.to_wire())
        assert back == req

    def test_callable_jobs_cannot_cross_the_bus(self):
        req = JobRequest(name="f", callable=lambda: None, kind=JobKind.SEQUENTIAL)
        with pytest.raises(JobError, match="cannot cross the bus"):
            req.to_wire()

    def test_from_wire_revalidates(self):
        wire = JobRequest(name="ok", argv=["true"]).to_wire()
        wire["n_tasks"] = 0
        with pytest.raises(JobError):
            JobRequest.from_wire(wire)


@pytest.fixture
def backend_service():
    grid = Grid(ClusterSpec.small(segments=2, slaves=2, cores=2))
    distributor = JobDistributor(grid, SubprocessBackend())
    bus = MessageBus()
    service = ClusterBackendService(bus, distributor)
    service.start()
    yield bus, service, distributor
    service.stop()


class TestClusterBackendService:
    def _wait(self, proxy, owner, job_id, timeout=10.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            desc = proxy.describe(owner, job_id)
            if desc["state"] in ("completed", "failed", "cancelled", "timeout"):
                return desc
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish")

    def test_submit_poll_output_over_the_bus(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        desc = proxy.submit(JobRequest(name="hi", owner="alice", argv=["echo", "hi"]))
        final = self._wait(proxy, "alice", desc["id"])
        assert final["state"] == "completed"
        out = proxy.output_since("alice", desc["id"])
        assert out["stdout"] == ["hi"]
        fp = proxy.output_fingerprint("alice", desc["id"])
        assert fp[0] == "completed"

    def test_ownership_enforced_at_the_service(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        desc = proxy.submit(JobRequest(name="hi", owner="alice", argv=["echo", "hi"]))
        with pytest.raises(AuthorizationError):
            proxy.describe("mallory", desc["id"])
        # view_all (instructor capability) bypasses
        assert proxy.describe("mallory", desc["id"], view_all=True)["id"] == desc["id"]

    def test_submissions_must_carry_an_owner(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        with pytest.raises(JobError, match="owner"):
            proxy.submit(JobRequest(name="anon", argv=["true"]))

    def test_control_state_tracks_distributor_version(self, backend_service):
        bus, _service, dist = backend_service
        proxy = ClusterProxy(bus)
        v0, free0 = proxy.control_state()
        assert (v0, free0) == (dist.version, dist.grid.cores_free)
        proxy.submit(JobRequest(name="hi", owner="alice", argv=["echo", "hi"]))
        v1, _ = proxy.control_state()
        assert v1 > v0

    def test_list_jobs_filters_by_owner(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        proxy.submit(JobRequest(name="a", owner="alice", argv=["true"]))
        proxy.submit(JobRequest(name="b", owner="bob", argv=["true"]))
        assert {j["owner"] for j in proxy.list_jobs("alice")} == {"alice"}
        assert len(proxy.list_jobs("alice", view_all=True)) == 2

    def test_service_stats_exposed(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        proxy.control_state()
        stats = proxy.service_stats()
        assert stats["requests_served"] >= 1
        assert stats["bus"]["backend"] == "memory"

    def test_remote_errors_map_to_local_classes(self, backend_service):
        bus, _service, _dist = backend_service
        proxy = ClusterProxy(bus)
        with pytest.raises(JobError):
            proxy.describe("alice", "job-999999")


class TestReplyLatencyModel:
    def test_replies_are_delayed_not_dropped(self):
        grid = Grid(ClusterSpec.small(segments=2, slaves=2, cores=2))
        distributor = JobDistributor(grid, SubprocessBackend())
        bus = MessageBus()
        service = ClusterBackendService(bus, distributor, reply_latency_s=0.05)
        service.start()
        try:
            proxy = ClusterProxy(bus)
            t0 = time.perf_counter()
            proxy.control_state()
            dt = time.perf_counter() - t0
            assert dt >= 0.045, f"latency model bypassed: RTT {dt * 1e3:.1f} ms"
        finally:
            service.stop()

    def test_n_clients_overlap_their_waits(self):
        """The scale-out premise: N waiters finish in ~1 RTT, not N RTTs."""
        grid = Grid(ClusterSpec.small(segments=2, slaves=2, cores=2))
        distributor = JobDistributor(grid, SubprocessBackend())
        bus = MessageBus()
        service = ClusterBackendService(bus, distributor, reply_latency_s=0.08)
        service.start()
        try:
            n = 4
            done = []

            def one():
                proxy = ClusterProxy(bus)
                proxy.control_state()
                done.append(1)

            threads = [threading.Thread(target=one) for _ in range(n)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            dt = time.perf_counter() - t0
            assert len(done) == n
            assert dt < n * 0.08, (
                f"{n} overlapped RTTs took {dt * 1e3:.0f} ms — waits serialised"
            )
        finally:
            service.stop()
