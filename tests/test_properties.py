"""Property-based tests (hypothesis) on core invariants."""

import string

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._errors import FileManagerError, ResourceError
from repro.cluster.node import Node
from repro.cluster.spec import NodeSpec
from repro.desim import Simulator, Store
from repro.interleave import RandomPolicy, Scheduler, SharedVar, VMutex, VSemaphore
from repro.memsim import CoherentSystem, NumaConfig, NumaMachine, PagePlacement
from repro.minimpi import run_mpi
from repro.portal.files import FileManager
from repro.portal.sessions import SessionStore

# hypothesis shares fixtures poorly with function-scoped tmp_path; build our own dirs.
settings.register_profile("repro", deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
settings.load_profile("repro")


class TestNodeAccountingProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 9), st.integers(1, 4)),
            max_size=60,
        )
    )
    def test_never_oversubscribed_never_negative(self, ops):
        node = Node("n", NodeSpec(cores=8, memory_mb=1024))
        held: set[str] = set()
        for kind, jid, cores in ops:
            job = f"job{jid}"
            if kind == "alloc":
                try:
                    node.allocate(job, cores)
                    held.add(job)
                except ResourceError:
                    pass
            else:
                try:
                    node.free(job)
                    held.discard(job)
                except ResourceError:
                    assert job not in held  # free only fails for non-holders
            assert 0 <= node.cores_used <= node.spec.cores
            assert set(node.running_jobs) == held


class TestMesiProperties:
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(0, 3),            # core
                st.integers(0, 15),           # line index
                st.booleans(),                # is_write
            ),
            max_size=200,
        )
    )
    def test_swmr_invariant_always_holds(self, accesses):
        system = CoherentSystem(4)
        for core, line, is_write in accesses:
            addr = line * 64
            if is_write:
                system.write(core, addr)
            else:
                system.read(core, addr)
            system.check_invariants()

    @given(
        accesses=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7), st.booleans()),
            min_size=1,
            max_size=100,
        )
    )
    def test_cycle_accounting_additive(self, accesses):
        system = CoherentSystem(4)
        total = 0
        for core, line, is_write in accesses:
            latency = system.write(core, line * 64) if is_write else system.read(core, line * 64)
            assert latency > 0
            total += latency
        assert system.cycles == total == sum(system.per_core_cycles)


class TestInterleaveProperties:
    @given(seed=st.integers(0, 10_000), threads=st.integers(2, 4), iters=st.integers(1, 15))
    @settings(max_examples=30)
    def test_mutex_counter_always_exact(self, seed, threads, iters):
        sched = Scheduler(policy=RandomPolicy(seed), detect_races=False)
        var = SharedVar("c", 0)
        lock = VMutex("m")

        def body(var, lock, n):
            for _ in range(n):
                yield lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield lock.release()

        for i in range(threads):
            sched.spawn(body(var, lock, iters), name=f"t{i}")
        run = sched.run()
        assert run.ok and var.value == threads * iters

    @given(seed=st.integers(0, 10_000), permits=st.integers(1, 3), threads=st.integers(2, 5))
    @settings(max_examples=30)
    def test_semaphore_never_exceeds_permits(self, seed, permits, threads):
        sched = Scheduler(policy=RandomPolicy(seed), detect_races=False)
        sem = VSemaphore("s", permits)
        inside = SharedVar("inside", 0)
        max_seen = []

        def body(sem, inside):
            yield sem.p()
            # Atomic instrumentation: a racy read/write pair here would
            # corrupt the measurement itself.
            before = yield inside.fetch_add(1)
            max_seen.append(before + 1)
            yield inside.fetch_add(-1)
            yield sem.v()

        for i in range(threads):
            sched.spawn(body(sem, inside), name=f"t{i}")
        run = sched.run()
        assert run.ok
        assert max(max_seen) <= permits


class TestStoreProperties:
    @given(items=st.lists(st.integers(), max_size=30), capacity=st.integers(1, 5))
    @settings(max_examples=40)
    def test_store_preserves_order_and_content(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        received = []

        def producer(sim, store):
            for item in items:
                yield store.put(item)

        def consumer(sim, store):
            for _ in range(len(items)):
                value = yield store.get()
                received.append(value)

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert received == items


class TestNumaProperties:
    @given(
        sockets=st.integers(1, 4),
        pages=st.lists(st.integers(0, 63), min_size=1, max_size=50),
        core=st.integers(0, 3),
    )
    @settings(max_examples=40)
    def test_latency_bounds(self, sockets, pages, core):
        cfg = NumaConfig(n_sockets=sockets, cores_per_socket=4, n_pages=64)
        machine = NumaMachine(cfg, PagePlacement.INTERLEAVED)
        lats = machine.access_block(core, np.array(pages))
        max_hops = sockets // 2
        assert (lats >= cfg.local_latency_ns).all()
        assert (lats <= cfg.local_latency_ns + max_hops * cfg.hop_latency_ns).all()


class TestMinimpiProperties:
    @given(
        values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=6),
    )
    @settings(max_examples=15)
    def test_allreduce_matches_python_sum(self, values):
        def program(comm, values):
            return comm.allreduce(values[comm.rank])

        results = run_mpi(program, len(values), args=(values,))
        assert results == [sum(values)] * len(values)

    @given(n=st.integers(1, 6), seed=st.integers(0, 100))
    @settings(max_examples=15)
    def test_allgather_is_identity_permutation(self, n, seed):
        def program(comm, seed):
            return comm.allgather((comm.rank, seed))

        results = run_mpi(program, n, args=(seed,))
        expected = [(r, seed) for r in range(n)]
        assert all(r == expected for r in results)


_SAFE_SEGMENT = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)


class TestFileManagerProperties:
    @given(
        segments=st.lists(_SAFE_SEGMENT, min_size=1, max_size=4),
        payload=st.binary(max_size=256),
    )
    @settings(max_examples=40)
    def test_write_read_roundtrip_stays_inside_home(self, tmp_path_factory, segments, payload):
        fm = FileManager(tmp_path_factory.mktemp("homes"))
        rel = "/".join(segments)
        entry = fm.write("user", rel, payload)
        assert fm.read("user", rel) == payload
        resolved = fm.resolve("user", rel)
        assert str(resolved).startswith(str(fm.home("user").resolve()))

    @given(
        hostile=st.lists(st.sampled_from(["..", "a", "b", "..."]), min_size=1, max_size=6),
    )
    @settings(max_examples=60)
    def test_dotdot_paths_never_escape(self, tmp_path_factory, hostile):
        fm = FileManager(tmp_path_factory.mktemp("homes"))
        rel = "/".join(hostile)
        try:
            resolved = fm.resolve("user", rel)
        except FileManagerError:
            return  # rejected: fine
        # accepted: must still be inside the home
        resolved.relative_to(fm.home("user").resolve())


class TestSessionProperties:
    @given(username=st.text(min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_any_payload_roundtrips(self, username):
        store = SessionStore()
        token = store.create({"username": username})
        assert store.get(token)["username"] == username

    @given(garbage=st.text(max_size=60))
    @settings(max_examples=60)
    def test_arbitrary_tokens_never_authenticate(self, garbage):
        store = SessionStore()
        store.create({"username": "real"})
        assert store.peek(garbage) is None


class TestRWLockProperties:
    @given(
        seed=st.integers(0, 5000),
        readers=st.integers(1, 4),
        writers=st.integers(1, 3),
    )
    @settings(max_examples=25)
    def test_no_reader_writer_overlap(self, seed, readers, writers):
        from repro.interleave import Nop, RandomPolicy, Scheduler, VRWLock

        sched = Scheduler(policy=RandomPolicy(seed), detect_races=False)
        rw = VRWLock()
        active_readers = SharedVar("ar", 0)
        active_writers = SharedVar("aw", 0)
        overlaps = []

        def reader(rw):
            yield from rw.acquire_read()
            yield active_readers.fetch_add(1)
            w = yield active_writers.read()
            if w:
                overlaps.append(("reader-saw-writer", w))
            yield Nop()
            yield active_readers.fetch_add(-1)
            yield from rw.release_read()

        def writer(rw):
            yield from rw.acquire_write()
            before_w = yield active_writers.fetch_add(1)
            r = yield active_readers.read()
            if before_w or r:
                overlaps.append(("writer-overlap", before_w, r))
            yield Nop()
            yield active_writers.fetch_add(-1)
            yield from rw.release_write()

        for i in range(readers):
            sched.spawn(reader(rw), name=f"r{i}")
        for i in range(writers):
            sched.spawn(writer(rw), name=f"w{i}")
        run = sched.run()
        assert run.ok, (run.failures, run.deadlock)
        assert overlaps == []


class TestVCollectiveProperties:
    @given(
        counts=st.lists(st.integers(0, 4), min_size=1, max_size=5),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=15)
    def test_scatterv_gatherv_identity(self, counts, seed):
        from repro.minimpi import run_mpi

        def program(comm, counts, seed):
            total = sum(counts)
            flat = [seed * 1000 + i for i in range(total)]
            mine = comm.scatterv(flat if comm.rank == 0 else None, counts)
            assert len(mine) == counts[comm.rank]
            return comm.gatherv(mine, root=0)

        vals = run_mpi(program, len(counts), args=(counts, seed))
        assert vals[0] == [seed * 1000 + i for i in range(sum(counts))]


class TestQuotaProperties:
    @given(sizes=st.lists(st.integers(1, 50), min_size=1, max_size=12))
    @settings(max_examples=30)
    def test_usage_never_exceeds_quota(self, tmp_path_factory, sizes):
        from repro._errors import FileManagerError
        from repro.portal.files import FileManager

        quota = 200
        fm = FileManager(tmp_path_factory.mktemp("q"), quota_bytes=quota)
        for i, size in enumerate(sizes):
            try:
                fm.write("u", f"f{i}.bin", b"x" * size)
            except FileManagerError:
                pass
            assert fm.usage_bytes("u") <= quota


class TestJobLifecycleProperties:
    """No transition sequence can escape the job state machine."""

    @given(
        targets=st.lists(
            st.sampled_from(
                [
                    "queued", "running", "retrying", "completed",
                    "failed", "cancelled", "timeout",
                ]
            ),
            max_size=16,
        )
    )
    def test_edges_enforced_and_terminal_states_are_sinks(self, targets):
        from repro.cluster.job import _ALLOWED, Job, JobRequest, JobState

        job = Job(JobRequest(name="p", sim_duration=1.0))
        for name in targets:
            to = JobState(name)
            before = job.state
            moved = job.try_transition(to)
            if moved:
                assert to in _ALLOWED.get(before, set())
                assert not before.value in ("completed", "failed", "cancelled", "timeout")
            else:
                assert to not in _ALLOWED.get(before, set())
                assert job.state is before  # refused moves leave state intact
        # RETRYING is reachable only via RUNNING: replay and check
        trace = [JobState("queued")]  # initial
        job2 = Job(JobRequest(name="p2", sim_duration=1.0))
        for name in targets:
            if job2.try_transition(JobState(name)):
                trace.append(job2.state)
        for prev, cur in zip(trace, trace[1:]):
            if cur is JobState.RETRYING:
                assert prev is JobState.RUNNING


class TestFaultToleranceProperties:
    """Random fail/recover/submit interleavings keep accounting exact."""

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["submit", "kill", "revive", "advance"]), st.integers(0, 7)),
            max_size=40,
        )
    )
    def test_no_double_free_and_no_placement_on_down_nodes(self, ops):
        from repro.cluster.backends import SimulatedBackend
        from repro.cluster.distributor import JobDistributor
        from repro.cluster.grid import Grid
        from repro.cluster.job import JobRequest, JobState, RetryPolicy
        from repro.cluster.node import NodeState
        from repro.cluster.spec import ClusterSpec

        sim = Simulator()
        grid = Grid(ClusterSpec.small(segments=2, slaves=3, cores=2))
        dist = JobDistributor(
            grid,
            SimulatedBackend(sim),
            now_fn=lambda: sim.now,
            retry=RetryPolicy(max_attempts=4, backoff_base_s=0.25, jitter=0.0),
        )
        names = [n.name for n in grid.compute_nodes()]
        for kind, pick in ops:
            if kind == "submit":
                dist.submit(JobRequest(name=f"j{pick}", sim_duration=1.0 + pick))
            elif kind == "kill":
                up = [n for n in names if grid.node(n).state is NodeState.UP]
                if len(up) > 1:
                    dist.fail_node(up[pick % len(up)])
            elif kind == "revive":
                down = [n for n in names if grid.node(n).state is NodeState.DOWN]
                if down:
                    dist.recover_node(down[pick % len(down)])
            else:
                sim.run(until=sim.now + 0.5 * (pick + 1))
            # a double free would raise inside Node.free; beyond that the
            # incremental indices must equal a full rescan at every step
            nodes = list(grid.compute_nodes())
            assert grid.cores_free == sum(n.cores_free for n in nodes)
            assert grid.cores_up == sum(
                n.spec.cores for n in nodes if n.state is NodeState.UP
            )
            for job in dist.jobs.values():
                if job.state is JobState.RUNNING:
                    for node_name in job.placement:
                        assert grid.node(node_name).state is NodeState.UP
                elif job.terminal and job.state is not JobState.RUNNING:
                    for node_name in job.placement:
                        # terminal placement is display-only; it must never
                        # still hold cores
                        assert not grid.node(node_name).holds(job.id)
        for name in names:
            if grid.node(name).state is NodeState.DOWN:
                dist.recover_node(name)
        sim.run()
        assert all(j.terminal for j in dist.jobs.values())
        assert grid.cores_free == grid.cores_total
