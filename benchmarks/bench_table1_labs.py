"""Experiment T1 — Table 1: lab/assignment passing rates.

Paper (Section III.C): 19 students, pass = score >= 70/100; reported
rates 50/67/39/44/61/50/56 % for the seven assignments.  The bench runs
the full grading pipeline — every synthetic student's submission is
graded by executing the real lab code — and prints our rates beside the
paper's, plus the shape-agreement summary DESIGN.md defines.
"""

from repro.education import SemesterSimulation
from repro.education.grading import PAPER_LAB_RATES
from repro.education.semester import DEFAULT_SEED


def run_table1(seed: int = DEFAULT_SEED):
    report = SemesterSimulation(seed).run()
    return report


def test_table1_lab_passing_rates(benchmark, report):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    agreement = result.agreement()["table1"]
    lines = [result.table1(), "", f"shape agreement: {agreement}"]
    report("table1_labs", "\n".join(lines))

    # Reproduction criterion: every rate within 15 points, ranks correlated.
    assert agreement["all_within_tolerance"]
    assert agreement["rank_correlation"] > 0.5
    # The paper's headline ordering: lab 3 (UMA/NUMA) is the hardest —
    # "The reason might be due to its difficulty."
    assert result.lab_rates["lab3"] == min(result.lab_rates.values())


def test_table1_expected_rates_over_replications(benchmark, report):
    """Average 10 cohorts: the calibrated model's expected rates."""

    def run():
        return SemesterSimulation(2012).run_replications(10)

    avg = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = "\n".join(
        f"  {lab_id}: paper {PAPER_LAB_RATES[lab_id]:.0%}  expected {avg['table1'][lab_id]:.0%}"
        for lab_id in sorted(PAPER_LAB_RATES)
    )
    report("table1_replications", "Table 1 expected rates (10 cohorts)\n" + rows)
    for lab_id, target in PAPER_LAB_RATES.items():
        assert abs(avg["table1"][lab_id] - target) < 0.12
