"""Experiment P4 — coherence-traffic ablation: TAS vs TTAS vs mutex.

Lab 2's design choice, swept over contention: how much invalidation
traffic does each lock flavour generate while the *same* amount of
useful work (counter increments) gets done?
"""

import pytest

from repro.interleave import RandomPolicy, Scheduler, SharedVar, TASLock, TTASLock, VMutex
from repro.memsim import CoherenceBridge


def run_contended_counter(lock_kind: str, threads: int, iters: int = 10, seed: int = 5):
    sched = Scheduler(policy=RandomPolicy(seed), detect_races=False)
    bridge = CoherenceBridge(n_cores=threads).attach(sched)
    var = SharedVar("ctr", 0)

    if lock_kind == "mutex":
        lock = VMutex("m")

        def body(var, lock):
            for _ in range(iters):
                yield lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield lock.release()

    else:
        lock = TASLock() if lock_kind == "tas" else TTASLock()

        def body(var, lock):
            for _ in range(iters):
                yield from lock.acquire()
                v = yield var.read()
                yield var.write(v + 1)
                yield from lock.release()

    for i in range(threads):
        sched.spawn(body(var, lock), name=f"t{i}")
    run = sched.run()
    assert run.ok and var.value == threads * iters
    return bridge.system.report()


@pytest.mark.parametrize("lock_kind", ["tas", "ttas", "mutex"])
def test_p4_lock_flavour_cost(benchmark, lock_kind):
    stats = benchmark.pedantic(
        lambda: run_contended_counter(lock_kind, threads=4), rounds=3, iterations=1
    )
    assert stats["invalidations"] >= 0


def test_p4_contention_sweep(benchmark, report):
    rows = ["P4 invalidations per useful increment (contention sweep)",
            f"{'threads':<8} {'TAS':>8} {'TTAS':>8} {'mutex':>8}"]
    def sweep():
        out = {}
        for threads in (2, 4, 8):
            per_kind = {}
            for kind in ("tas", "ttas", "mutex"):
                stats = run_contended_counter(kind, threads)
                per_kind[kind] = stats["invalidations"] / (threads * 10)
            out[threads] = per_kind
        return out

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for threads, per_kind in ratios.items():
        rows.append(
            f"{threads:<8} {per_kind['tas']:>8.2f} {per_kind['ttas']:>8.2f} {per_kind['mutex']:>8.2f}"
        )
    report("p4_contention", "\n".join(rows))
    # The lab's lesson at every contention level: TAS > TTAS, and the OS
    # mutex (blocking, no spinning) generates the least traffic.
    for threads, per_kind in ratios.items():
        # At 2 threads contention is too low for TTAS to separate; from 4
        # threads the gap is strict.
        if threads >= 4:
            assert per_kind["tas"] > per_kind["ttas"], f"at {threads} threads"
        else:
            assert per_kind["tas"] >= per_kind["ttas"], f"at {threads} threads"
        assert per_kind["ttas"] >= per_kind["mutex"] * 0.8, f"at {threads} threads"

    # Traffic grows with contention for spin locks.
    assert ratios[8]["tas"] > ratios[2]["tas"]


def test_p4_cycles_follow_invalidations(benchmark, report):
    tas = benchmark.pedantic(lambda: run_contended_counter("tas", threads=8), rounds=1, iterations=1)
    mutex = run_contended_counter("mutex", threads=8)
    report(
        "p4_cycles",
        "P4 modelled memory-system cycles (8 threads x 10 increments)\n"
        f"  TAS:   {tas['cycles']} cycles, {tas['invalidations']} invalidations\n"
        f"  mutex: {mutex['cycles']} cycles, {mutex['invalidations']} invalidations",
    )
    assert tas["cycles"] > mutex["cycles"]


def test_p4_msi_vs_mesi_protocol_ablation(benchmark, report):
    """What MESI's Exclusive state buys: silent upgrades on private data."""
    from repro.memsim import CoherentSystem

    def private_data_traffic(protocol: str) -> dict:
        system = CoherentSystem(4, protocol=protocol)
        # Each core reads then writes its own working set (no sharing).
        for core in range(4):
            for line in range(16):
                addr = (core * 16 + line) * 64
                system.read(core, addr)
                system.write(core, addr)
        return system.report()

    def sweep():
        return {p: private_data_traffic(p) for p in ("MESI", "MSI")}

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mesi, msi = stats["MESI"], stats["MSI"]
    report(
        "p4_msi_vs_mesi",
        "P4 protocol ablation on private read-then-write data (4 cores x 16 lines)\n"
        f"  MESI: {mesi['bus_upgr']} upgrades, {mesi['total_transactions']} bus transactions, "
        f"{mesi['cycles']} cycles\n"
        f"  MSI:  {msi['bus_upgr']} upgrades, {msi['total_transactions']} bus transactions, "
        f"{msi['cycles']} cycles",
    )
    assert mesi["bus_upgr"] == 0          # E -> M upgrades are silent
    assert msi["bus_upgr"] == 64          # every first write pays a BusUpgr
    assert msi["total_transactions"] > mesi["total_transactions"]
    assert msi["cycles"] > mesi["cycles"]
