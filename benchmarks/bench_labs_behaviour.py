"""Experiments L1–L7 — the labs' load-bearing behavioural claims.

Each bench reproduces one unnumbered but essential observation from
Section III.B and times the underlying simulation.
"""


from repro.labs import get_lab
from repro.labs.lab3_numa import measure_mpi, measure_threads
from repro.labs.lab5_bank import EXPECTED, run_all_steps
from repro.labs.lab6_philosophers import explore_fixed, find_deadlock_witness


def test_l1_synchronized_counter(benchmark, report):
    """Lab 1: the erroneous program loses updates; synchronized does not."""
    lab = get_lab("lab1")
    broken = [lab.run("broken", s) for s in range(10)]
    fixed = benchmark(lambda: lab.run("fixed", 3))
    lost = [r.observations["lost_updates"] for r in broken]
    report(
        "l1_sync",
        f"L1 lost updates over 10 seeds: {lost}\n"
        f"fixed final count: {fixed.observations['final_count']} / {fixed.observations['expected']}",
    )
    assert any(l > 0 for l in lost)
    assert fixed.passed


def test_l2_tas_vs_ttas_invalidations(benchmark, report):
    """Lab 2: TAS spinning causes an invalidation storm; TTAS tames it."""
    lab = get_lab("lab2")
    tas = benchmark(lambda: lab.run("fixed", 1))
    ttas = lab.run("fixed_ttas", 1)
    ratio = tas.observations["invalidations"] / max(1, ttas.observations["invalidations"])
    report(
        "l2_coherence",
        "L2 coherence traffic (4 cores x 15 increments)\n"
        f"  TAS : {tas.observations['invalidations']} invalidations, "
        f"{tas.observations['bus_transactions']} bus transactions\n"
        f"  TTAS: {ttas.observations['invalidations']} invalidations, "
        f"{ttas.observations['bus_transactions']} bus transactions\n"
        f"  TAS/TTAS invalidation ratio: {ratio:.2f}x",
    )
    assert tas.passed and ttas.passed
    assert ratio > 1.2


def test_l3_uma_numa_latency_gap(benchmark, report):
    """Lab 3: remote memory is measurably slower, in both measurement modes."""
    threads = benchmark(measure_threads)
    mpi = measure_mpi()
    report(
        "l3_numa",
        "L3 UMA vs NUMA access times\n"
        f"  threads: local {threads['uma_mean_ns']:.0f} ns, remote {threads['numa_mean_ns']:.0f} ns "
        f"(x{threads['numa_penalty']:.2f})\n"
        f"  MPI:     intra-segment RTT {mpi['near_rtt_us']:.2f} us, "
        f"inter-segment RTT {mpi['far_rtt_us']:.2f} us (x{mpi['remote_penalty']:.2f})",
    )
    assert threads["numa_penalty"] > 1.5
    assert mpi["remote_penalty"] > 1.0


def test_l4_producer_consumer_files(benchmark, report):
    """Lab 4: the unsynchronised pipeline corrupts the copied file."""
    lab = get_lab("lab4")
    outcomes = [lab.run("broken", s).observations["faithful_copy"] for s in range(8)]
    fixed = benchmark(lambda: lab.run("fixed", 0))
    report(
        "l4_prodcons",
        f"L4 faithful copies (broken, 8 seeds): {outcomes}\nfixed copy faithful: "
        f"{fixed.observations['faithful_copy']}",
    )
    assert not all(outcomes)
    assert fixed.passed


def test_l5_bank_account_steps(benchmark, report):
    """Lab 5: steps i/iv/vi give 900; step v varies run to run."""
    steps = benchmark(lambda: run_all_steps(seed=1))
    v_values = {run_all_steps(seed=s)["v_concurrent"] for s in range(10)}
    report(
        "l5_bank",
        f"L5 balances: {steps}\nstep v across 10 runs: {sorted(v_values)} (expected {EXPECTED})",
    )
    assert steps["i_sequential"] == steps["iv_joined"] == steps["vi_mutex"] == EXPECTED
    assert len(v_values) > 1


def test_l6_philosophers_deadlock_and_fix(benchmark, report):
    """Lab 6: the naive program deadlocks; the ordered one never does."""
    witness = find_deadlock_witness()
    exploration = benchmark.pedantic(lambda: explore_fixed(max_schedules=800), rounds=1, iterations=1)
    report(
        "l6_philosophers",
        f"L6 naive program: deadlock witness at seed {witness}\n"
        f"ordered program: {exploration.summary()}",
    )
    assert witness is not None
    assert exploration.clean


def test_l7_bounded_buffer_fixes(benchmark, report):
    """Lab 7: the handed-out buffer is wrong; both required fixes work."""
    lab = get_lab("lab7")
    broken_ok = [lab.run("broken", s).passed for s in range(8)]
    mutex_fix = benchmark(lambda: lab.run("fixed", 1))
    sem_fix = lab.run("fixed_semaphore", 1)
    report(
        "l7_bounded",
        f"L7 broken passes across 8 seeds: {broken_ok}\n"
        f"mutex+condition fix: {mutex_fix.passed}; semaphore fix: {sem_fix.passed}",
    )
    assert not all(broken_ok)
    assert mutex_fix.passed and sem_fix.passed


def test_l8_store_buffer_litmus(benchmark, report):
    """Memory-consistency module: SC forbids (0,0); TSO allows it."""
    from repro.memsim import run_store_buffer_litmus

    results = benchmark(run_store_buffer_litmus)
    report(
        "l8_litmus",
        f"{results['SC']}\n{results['TSO']}",
    )
    assert not results["SC"].allows_both_zero
    assert results["TSO"].allows_both_zero
