"""Shared benchmark plumbing.

Every bench prints its paper-vs-measured table through :func:`report`,
which also appends to ``benchmarks/results/<name>.txt`` so the tables
survive pytest's output capture.  When a bench passes structured
``metrics``, a machine-readable ``BENCH_<name>.json`` lands next to the
text table — one ``{metric, value, unit, threshold}`` row per guarded
number — so CI (and perf-regression tooling) can diff runs without
scraping tables.

:func:`write_result` is module-level on purpose: benches that double as
scripts (``python benchmarks/bench_scaleout.py --ci``) import it
directly, so script runs and pytest runs publish through one code path.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str, metrics: list | None = None) -> None:
    """Publish one bench result: text table + optional JSON metrics.

    ``metrics`` rows are dicts with ``metric`` (str), ``value``
    (number), ``unit`` (str) and optionally ``threshold`` (the guarded
    floor/ceiling, omitted for informational rows), ``op`` (guard
    direction, so the JSON is self-describing for ceilings), and
    ``node_seconds`` (the capacity spent earning the row's value — the
    fleet benches publish cost next to throughput/latency so regression
    tooling can diff the cost/latency frontier, not just req/s).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if metrics:
        payload = {
            "name": name,
            "metrics": [
                {
                    "metric": str(m["metric"]),
                    "value": m["value"],
                    "unit": str(m.get("unit", "")),
                    **({"threshold": m["threshold"]} if "threshold" in m else {}),
                    **({"op": m["op"]} if "op" in m else {}),
                    **(
                        {"node_seconds": m["node_seconds"]}
                        if "node_seconds" in m
                        else {}
                    ),
                }
                for m in metrics
            ],
        }
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    print(f"\n{text}\n", file=sys.stderr)


def check_guards(metrics: list | None) -> list[str]:
    """Evaluate guarded metric rows; returns human-readable failures.

    A row guards when it carries ``threshold``; ``op`` picks the
    direction (``">="`` floor — the default — or ``"<="`` ceiling).
    """
    failures = []
    for m in metrics or ():
        if "threshold" not in m:
            continue
        op = m.get("op", ">=")
        value, threshold = m["value"], m["threshold"]
        ok = value >= threshold if op == ">=" else value <= threshold
        if not ok:
            failures.append(
                f"{m['metric']}: {value:g} {m.get('unit', '')} violates "
                f"{op} {threshold:g}"
            )
    return failures


def report_and_guard(name: str, text: str, metrics: list | None = None) -> None:
    """Publish first, guard second.

    The text table and ``BENCH_<name>.json`` always land on disk — a
    failing guard must not eat the evidence CI needs to diagnose it —
    and only then do threshold rows get to raise.
    """
    write_result(name, text, metrics)
    failures = check_guards(metrics)
    assert not failures, f"{name}: " + "; ".join(failures)


@pytest.fixture
def report():
    """Emit a named result block to stderr and ``benchmarks/results/``."""
    return write_result


@pytest.fixture
def guarded_report():
    """Like ``report`` but enforces metric thresholds after publishing."""
    return report_and_guard
