"""Shared benchmark plumbing.

Every bench prints its paper-vs-measured table through :func:`report`,
which also appends to ``benchmarks/results/<name>.txt`` so the tables
survive pytest's output capture.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Emit a named result block to stderr and ``benchmarks/results/``."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n", file=sys.stderr)

    return _report
