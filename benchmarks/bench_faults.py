"""Fault-tolerance overhead benchmark.

Two questions, both tier-2 ``perf`` guards:

1. **Tracking overhead** — the health monitor, deadline heap and
   backoff-aware queue filtering ride in every dispatch round.  On the
   happy path (no faults at all) the fault-tolerant distributor must
   keep >= 95% of the throughput of the same engine with health
   tracking switched off (best-of-3 per side, same workload and seed).
2. **Recovery throughput** — with nodes dying and reviving mid-stream
   and a retry policy rerouting the orphans, the run must still drain
   completely; the table reports how throughput degrades with churn.
"""

from __future__ import annotations

import gc
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Grid,
    JobDistributor,
    NodeState,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator

from bench_dispatch import make_workload

pytestmark = pytest.mark.perf

N = 1000  # churn benchmark size
N_OVERHEAD = 3000  # longer runs average out scheduler noise for the A/B guard
SAMPLES = 5  # both-orders quads for the overhead ratio


def run_once(track_health: bool, n: int = N) -> float:
    """Happy-path drain; returns jobs/sec.

    The cycle collector is parked during the timed region (and run to
    completion just before it) so collection pauses land between runs
    instead of randomly penalising whichever variant is mid-flight.
    """
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    dist = JobDistributor(
        grid,
        SimulatedBackend(sim),
        now_fn=lambda: sim.now,
        track_health=track_health,
    )
    requests = make_workload(n)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for request in requests:
            dist.submit(request)
        sim.run()
        dt = time.perf_counter() - t0
    finally:
        gc.enable()
    assert dist.monitor.summary()["by_state"] == {"completed": n}
    assert grid.cores_free == grid.cores_total
    return n / dt


def measure_overhead() -> tuple[float, float, float]:
    """Paired A/B runs; returns (mean quad ratio, best tracked, best baseline).

    Measured order matters on a noisy machine: whichever variant runs
    first in a back-to-back pair loses several percent (allocator/GC
    state left by the previous run).  Each sample therefore runs the
    pair in BOTH orders and takes the geometric mean of the two ratios,
    cancelling the order bias; averaging over several quads then brings
    the standard error well under the 5% the floor allows."""
    run_once(True, 200)  # shared warm-up
    ratios, tracked, baseline = [], [], []
    for _ in range(SAMPLES):
        t1, f1 = run_once(True, N_OVERHEAD), run_once(False, N_OVERHEAD)
        f2, t2 = run_once(False, N_OVERHEAD), run_once(True, N_OVERHEAD)
        tracked += [t1, t2]
        baseline += [f1, f2]
        ratios.append(((t1 / f1) * (t2 / f2)) ** 0.5)
    return sum(ratios) / len(ratios), max(tracked), max(baseline)


def run_with_churn(kills: int, n: int = N, seed: int = 7) -> tuple[float, dict]:
    """Drain the workload while killing/reviving ``kills`` random nodes."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    dist = JobDistributor(
        grid,
        SimulatedBackend(sim),
        now_fn=lambda: sim.now,
        retry=RetryPolicy(max_attempts=5, backoff_base_s=0.1, jitter=0.0),
    )
    names = [node.name for node in grid.compute_nodes()]
    requests = make_workload(n)
    t0 = time.perf_counter()
    for request in requests:
        dist.submit(request)
    for _ in range(kills):
        sim.run(until=sim.now + float(rng.uniform(0.5, 2.0)))
        up = [name for name in names if grid.node(name).state is NodeState.UP]
        if len(up) > 1:
            victim = up[int(rng.integers(0, len(up)))]
            dist.fail_node(victim)
            sim.run(until=sim.now + float(rng.uniform(0.5, 2.0)))
            dist.recover_node(victim)
    sim.run()
    dt = time.perf_counter() - t0
    assert all(j.terminal for j in dist.jobs.values())
    assert grid.cores_free == grid.cores_total
    return n / dt, dist.stats()["faults"]


def test_health_tracking_overhead_under_5_percent(report):
    ratio, tracked, baseline = measure_overhead()
    report(
        "fault_overhead",
        "\n".join(
            [
                "Health-tracking overhead (happy path, no faults)",
                f"4x16 uhd grid, DES backend, N={N_OVERHEAD}, {SAMPLES} both-orders A/B quads",
                f"{'variant':<22} {'best jobs/sec':>14}",
                f"{'track_health=False':<22} {baseline:>14.0f}",
                f"{'track_health=True':<22} {tracked:>14.0f}",
                f"mean quad ratio: {ratio:.3f} (floor 0.95)",
            ]
        ),
    )
    assert ratio >= 0.95, (
        f"health tracking costs {100 * (1 - ratio):.1f}% throughput "
        f"({tracked:.0f} vs {baseline:.0f} jobs/sec)"
    )


def test_recovery_throughput_under_churn(report):
    lines = [
        "Throughput under node kill/revive churn (retry max_attempts=5)",
        f"4x16 uhd grid, DES backend, N={N}, seed 7",
        f"{'kills':>6} {'jobs/sec':>10} {'reroutes':>9} {'retries':>8} {'completed':>10}",
    ]
    for kills in (0, 4, 16):
        rate, faults = run_with_churn(kills)
        lines.append(
            f"{kills:>6} {rate:>10.0f} {faults['reroutes']:>9} "
            f"{faults['retries']:>8} {'yes':>10}"
        )
    report("fault_recovery", "\n".join(lines))
