"""Durability overhead benchmark: journaled vs bare dispatch throughput.

Replays PR 1's dispatch benchmark — the mixed 70/30 workload on the
4×16 uhd grid, per scheduling policy — twice per policy: once bare
(the historical in-memory distributor) and once with the write-ahead
journal attached (``fsync="interval"``, the production default).  The
guard asserts the journal keeps **≥0.9×** of the unjournaled baseline,
aggregated across the full PR 1 policy suite.

Measurement notes, earned the hard way on small virtualised runners:

* Runs are paired A/B/B/A quads (bare, journaled, journaled, bare) so
  slow machine drift cancels instead of biasing one side.
* The meter is ``time.process_time`` — CPU seconds, immune to steal
  time and scheduler hiccups on shared-core containers, which routinely
  swing wall-clock throughput by ±15% between back-to-back runs.
* The guarded ratio aggregates the whole policy suite (total jobs over
  total CPU) rather than guarding each policy alone: the journal's cost
  is a near-constant ~tens of µs per job, so per-policy ratios measure
  the *baseline's* speed more than the journal, and the cheapest policy
  would fail or pass on scheduler noise alone.  Per-policy ratios are
  still published as informational rows.

The journal directory lives on tmpfs when available so the guard pins
the journaling *engine* cost (encode + frame + write + bookkeeping),
not the speed of whatever disk backs the CI runner's tempdir.

Also measured (informational): journal bytes/records per job, one
checkpoint (snapshot + compaction) of the full job table, and a full
``recover_distributor`` boot from the journal the run left behind.
"""

from __future__ import annotations

import os
import sys
import tempfile
import shutil
import time
from pathlib import Path

import pytest

from repro.cluster import (
    BackfillScheduler,
    ClusterSpec,
    FIFOScheduler,
    Grid,
    JobDistributor,
    PriorityScheduler,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.durability import DurabilityStore, JobJournal, recover_distributor

from bench_dispatch import make_workload

pytestmark = pytest.mark.perf

POLICIES = (FIFOScheduler, PriorityScheduler, BackfillScheduler)

#: guarded floor for the aggregate journaled/bare throughput ratio.
RATIO_FLOOR = 0.9
#: CI smoke slice: smaller N on noisy shared runners, gentler floor.
CI_RATIO_FLOOR = 0.8

N_FULL = 1600
N_CI = 400


def _journal_dir() -> str:
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return tempfile.mkdtemp(prefix="bench-durability-", dir=base)


def _run_once(scheduler_cls, n: int, journal_dir: str | None) -> tuple[float, dict]:
    """One submit→drain pass; returns (cpu_seconds, info)."""
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    journal = None
    if journal_dir is not None:
        journal = JobJournal(DurabilityStore(journal_dir, fsync="interval"))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), scheduler_cls(),
        now_fn=lambda: sim.now, journal=journal,
    )
    requests = make_workload(n)
    c0 = time.process_time()
    for request in requests:
        dist.submit(request)
    sim.run()
    cpu = time.process_time() - c0
    summary = dist.monitor.summary()
    assert summary["by_state"] == {"completed": n}, summary["by_state"]
    info = {"dist": dist, "journal": journal}
    return cpu, info


def _measure_policy(scheduler_cls, n: int) -> dict:
    """Paired A/B/B/A quad for one policy; returns per-job CPU costs."""
    bare, journaled = [], []
    extras = {}
    for which in ("bare", "journaled", "journaled", "bare"):
        if which == "bare":
            cpu, _ = _run_once(scheduler_cls, n, None)
            bare.append(cpu)
            continue
        jdir = _journal_dir()
        try:
            cpu, info = _run_once(scheduler_cls, n, jdir)
            journaled.append(cpu)
            journal = info["journal"]
            if "journal_stats" not in extras:
                extras["journal_stats"] = dict(journal.store.stats)
                # checkpoint + recovery cost, once, on the first journaled run
                t0 = time.perf_counter()
                info["dist"].checkpoint()
                extras["checkpoint_s"] = time.perf_counter() - t0
                journal.store.close()
                rec_store = DurabilityStore(jdir, fsync="never")
                grid = Grid(ClusterSpec.uhd_default())
                sim = Simulator()
                rdist, report = recover_distributor(
                    rec_store, grid, SimulatedBackend(sim), now_fn=lambda: sim.now
                )
                assert report.jobs_restored == n, report.as_dict()
                extras["recovery_s"] = report.duration_s
                rec_store.close()
            else:
                journal.store.close()
        finally:
            shutil.rmtree(jdir, ignore_errors=True)
    return {
        "policy": scheduler_cls().name,
        "bare_s": min(bare),
        "journaled_s": min(journaled),
        "n": n,
        **extras,
    }


def _render(rows: list[dict], floor: float) -> tuple[str, list, float]:
    total_bare = sum(r["bare_s"] for r in rows)
    total_j = sum(r["journaled_s"] for r in rows)
    ratio = total_bare / total_j
    n = rows[0]["n"]
    lines = [
        "Durability overhead: journaled vs bare dispatch (CPU time, paired quads)",
        f"4x16 uhd grid, DES backend, mixed 70/30 workload, N={n}, "
        'fsync="interval"',
        f"{'policy':<10} {'bare us/job':>12} {'journaled us/job':>17} {'ratio':>7}",
    ]
    metrics = []
    for r in rows:
        b = r["bare_s"] / r["n"] * 1e6
        j = r["journaled_s"] / r["n"] * 1e6
        lines.append(f"{r['policy']:<10} {b:>12.0f} {j:>17.0f} {b / j:>7.3f}")
        metrics.append({
            "metric": f"ratio_{r['policy']}", "value": round(b / j, 4), "unit": "x",
        })
    lines.append(
        f"{'aggregate':<10} {total_bare / len(rows) / n * 1e6:>12.0f} "
        f"{total_j / len(rows) / n * 1e6:>17.0f} {ratio:>7.3f}  (floor {floor})"
    )
    metrics.append({
        "metric": "throughput_ratio_aggregate", "value": round(ratio, 4),
        "unit": "x", "threshold": floor,
    })
    stats = next((r["journal_stats"] for r in rows if "journal_stats" in r), None)
    if stats:
        per_job = stats["bytes"] / n
        lines.append(
            f"journal: {stats['records'] / n:.1f} records/job, "
            f"{per_job:.0f} bytes/job, {stats['fsyncs']} fsyncs"
        )
        metrics.append({"metric": "journal_bytes_per_job", "value": round(per_job, 1),
                        "unit": "B"})
    for key, unit in (("checkpoint_s", "s"), ("recovery_s", "s")):
        val = next((r[key] for r in rows if key in r), None)
        if val is not None:
            lines.append(f"{key.removesuffix('_s')}: {val * 1e3:.1f} ms for {n} jobs")
            metrics.append({"metric": key, "value": round(val, 5), "unit": unit})
    return "\n".join(lines), metrics, ratio


def _warmup() -> None:
    """Run both configs once so adaptive-interpreter warm-up and lazy
    imports land outside the measured quads."""
    _run_once(FIFOScheduler, 200, None)
    jdir = _journal_dir()
    try:
        _, info = _run_once(FIFOScheduler, 200, jdir)
        info["journal"].store.close()
    finally:
        shutil.rmtree(jdir, ignore_errors=True)


def _collect(n: int) -> list[dict]:
    _warmup()
    return [_measure_policy(p, n) for p in POLICIES]


def test_durability_throughput_guard(guarded_report):
    rows = _collect(N_FULL)
    text, metrics, _ = _render(rows, RATIO_FLOOR)
    guarded_report("durability", text, metrics)


# -- CLI ----------------------------------------------------------------------


def _publish(name: str, text: str, metrics: list) -> None:
    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import write_result

    write_result(name, text, metrics)


def main(argv: list | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true",
                        help="smoke slice: smaller N, gentler ratio floor")
    args = parser.parse_args(argv)
    n = N_CI if args.ci else N_FULL
    floor = CI_RATIO_FLOOR if args.ci else RATIO_FLOOR
    rows = _collect(n)
    text, metrics, ratio = _render(rows, floor)
    _publish("durability", text, metrics)
    print(text)
    if ratio < floor:
        print(f"FAIL: aggregate journaled/bare ratio {ratio:.3f} < {floor}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
