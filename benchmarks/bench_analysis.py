"""Static analyzer latency + happens-before detector overhead.

Two guards from the analysis-subsystem contract (DESIGN §11):

1. **Pre-submit latency** — the static analyzer sits on the portal's
   ``POST /api/jobs`` path, so it must stay interactive: every lab
   fixture (all seven labs, broken and fixed variants) must analyze in
   under 250 ms.

2. **Happens-before overhead** — the FastTrack vector-clock detector
   must keep at least 0.9× the lockset detector's access throughput on
   a lock-disciplined workload (the common no-findings case), so the
   more precise detector is affordable as the explorer's default
   upgrade.  Same paired A/B quad methodology as ``bench_telemetry.py``:
   both orders per sample, geometric mean of the two ratios.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.analysis import CORPUS, analyze_source, fixture_path
from repro.interleave import Scheduler, SharedVar, VMutex

pytestmark = pytest.mark.perf

LATENCY_BUDGET_S = 0.250
HB_FLOOR = 0.9

N_THREADS = 8
N_ITERS = 400  # per thread: ~3 ops per iteration through the detector
SAMPLES = 5


# -- static analyzer latency ---------------------------------------------------
def test_every_lab_fixture_analyzes_under_250ms(report):
    sources = {
        f"{case.lab_id}/{case.variant}": open(fixture_path(case), encoding="utf-8").read()
        for case in CORPUS
    }
    # warm-up: first call pays import/compile costs that a live portal
    # has already amortised
    analyze_source(next(iter(sources.values())))
    timings: dict[str, float] = {}
    for name, source in sources.items():
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            analyze_source(source)
            best = min(best, time.perf_counter() - t0)
        timings[name] = best
    lines = [
        "Static analyzer latency per lab fixture (best of 3)",
        f"budget: {1000 * LATENCY_BUDGET_S:.0f} ms per program",
        f"{'fixture':<16} {'ms':>8}",
    ]
    for name, dt in sorted(timings.items()):
        lines.append(f"{name:<16} {1000 * dt:>8.2f}")
    lines.append(f"{'total':<16} {1000 * sum(timings.values()):>8.2f}")
    report("analysis_latency", "\n".join(lines))
    slow = {n: dt for n, dt in timings.items() if dt >= LATENCY_BUDGET_S}
    assert not slow, f"over budget: { {n: f'{1000 * dt:.0f}ms' for n, dt in slow.items()} }"
    total = sum(timings.values())
    assert total < LATENCY_BUDGET_S, f"all labs together took {1000 * total:.0f}ms"


# -- happens-before vs lockset throughput -------------------------------------
def _locked_workload(var: SharedVar, lock: VMutex, iters: int):
    for _ in range(iters):
        yield lock.acquire()
        v = yield var.read()
        yield var.write(v + 1)
        yield lock.release()


def run_once(happens_before: bool) -> float:
    """Drive the lock-disciplined workload; returns scheduler steps/sec."""
    sched = Scheduler(seed=1, detect_races=True, happens_before=happens_before)
    var = SharedVar("counter", 0)
    lock = VMutex("m")
    for i in range(N_THREADS):
        sched.spawn(_locked_workload(var, lock, N_ITERS), name=f"w{i}")
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = sched.run()
        dt = time.perf_counter() - t0
    finally:
        gc.enable()
    assert result.completed and result.races == []
    assert var.value == N_THREADS * N_ITERS
    return result.steps / dt


def test_happens_before_keeps_090x_lockset_throughput(report):
    run_once(True)  # shared warm-up
    ratios, hb_best, ls_best = [], 0.0, 0.0
    for _ in range(SAMPLES):
        h1, l1 = run_once(True), run_once(False)
        l2, h2 = run_once(False), run_once(True)
        hb_best = max(hb_best, h1, h2)
        ls_best = max(ls_best, l1, l2)
        ratios.append(((h1 / l1) * (h2 / l2)) ** 0.5)
    ratio = sum(ratios) / len(ratios)
    report(
        "analysis_hb_overhead",
        "\n".join(
            [
                "Happens-before vs lockset detector throughput",
                f"{N_THREADS} threads x {N_ITERS} locked increments, "
                f"{SAMPLES} both-orders A/B quads",
                f"{'detector':<22} {'best steps/sec':>15}",
                f"{'LocksetDetector':<22} {ls_best:>15.0f}",
                f"{'HappensBeforeDetector':<22} {hb_best:>15.0f}",
                f"mean quad ratio: {ratio:.3f} (floor {HB_FLOOR})",
            ]
        ),
    )
    assert ratio >= HB_FLOOR, (
        f"happens-before costs {100 * (1 - ratio):.1f}% throughput "
        f"({hb_best:.0f} vs {ls_best:.0f} steps/sec)"
    )
