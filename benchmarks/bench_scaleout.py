"""Experiment P3 — horizontal front-end scale-out capacity model.

The scale-out claim behind DESIGN §13: splitting the portal into N
front-end workers that reach one cluster back-end over the message bus
raises aggregate capacity on the cached read mix, because each worker
spends most of a request *waiting* on the cluster control-plane round
trip, and N workers overlap those waits.

The bench builds a :class:`~repro.portal.frontend.FrontendFleet` whose
back-end service models a 2 ms control-plane RTT (the due-heap delivery
thread — no per-request sleeps), drives each worker with a closed-loop
client hammering the cached status/listing mix, and publishes req/s and
p99 latency for 1 → 2 → 4 → 8 workers.

Guard: **aggregate throughput at 4 workers ≥ 2× a single worker.**
p99 is reported per worker count so the saturation knee is visible in
the table (latency rises once the single CPU, not the RTT, is the
bottleneck).

Run under pytest (tier-2: ``-m perf``) or as a script:

    PYTHONPATH=src python benchmarks/bench_scaleout.py [--ci]
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.backends import CallableBackend
from repro.cluster.distributor import JobDistributor
from repro.cluster.grid import Grid
from repro.cluster.spec import ClusterSpec
from repro.portal import PortalClient
from repro.portal.frontend import FrontendFleet

pytestmark = pytest.mark.perf

SPEEDUP_FLOOR = 2.0       # 4 workers vs 1, cached read mix
CI_SPEEDUP_FLOOR = 1.2    # gentler smoke floor (noisy shared runners)
REPLY_LATENCY_S = 0.002   # modeled cluster control-plane RTT
WORKER_COUNTS = (1, 2, 4, 8)
MAX_SAMPLES_PER_WORKER = 50_000


def _make_distributor() -> JobDistributor:
    grid = Grid(ClusterSpec.small(segments=2, slaves=4, cores=2))
    return JobDistributor(grid, CallableBackend())


def _drive_worker(worker, deadline: float, counts: list, samples: list, start: threading.Event):
    """Closed loop: one client per worker on the cached read mix.

    90% cluster-status polls, 10% job listings — both revalidate via a
    tiny RPC and serve 304/body from the worker's own response cache.
    """
    client = PortalClient(app=worker, conditional=True)
    client.login("bench", "bench-pass")
    for _ in range(5):  # warm the cache + client validators
        client.cluster_status()
        client.jobs()
    start.wait()
    n = 0
    lat: list = []
    while time.perf_counter() < deadline:
        t0 = time.perf_counter()
        if n % 10 == 9:
            client.jobs()
        else:
            client.cluster_status()
        if len(lat) < MAX_SAMPLES_PER_WORKER:
            lat.append(time.perf_counter() - t0)
        n += 1
    counts.append(n)
    samples.extend(lat)


def _measure(n_workers: int, duration_s: float) -> tuple[float, float]:
    """Aggregate req/s and p99 (ms) for one fleet size."""
    fleet = FrontendFleet(
        _make_distributor(), n_workers=n_workers, reply_latency_s=REPLY_LATENCY_S
    ).start()
    try:
        fleet.users.add_user("bench", "bench-pass")
        counts: list = []
        samples: list = []
        start = threading.Event()
        deadline = time.perf_counter() + duration_s + 0.25
        threads = [
            threading.Thread(
                target=_drive_worker,
                args=(worker, deadline, counts, samples, start),
                daemon=True,
            )
            for worker in fleet.workers
        ]
        for t in threads:
            t.start()
        time.sleep(0.25)  # let every thread finish logging in + warming
        start.set()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        rps = sum(counts) / elapsed
        p99_ms = float(np.percentile(np.array(samples), 99) * 1e3)
        return rps, p99_ms
    finally:
        fleet.stop()


def _capacity_table(worker_counts=WORKER_COUNTS, duration_s: float = 1.5):
    rows = []
    for n in worker_counts:
        rps, p99 = _measure(n, duration_s)
        rows.append((n, rps, p99))
    return rows


def _render(rows, floor: float) -> tuple[str, list]:
    base = rows[0][1]
    lines = [
        "Front-end scale-out capacity (cached read mix, "
        f"{REPLY_LATENCY_S * 1e3:.0f} ms modeled cluster RTT)",
        f"guard: multi-worker aggregate req/s >= {floor:.1f}x single worker",
        f"{'workers':>8} {'req/s':>10} {'speedup':>8} {'p99 ms':>8}",
    ]
    metrics = []
    for n, rps, p99 in rows:
        lines.append(f"{n:>8} {rps:>10.0f} {rps / base:>7.2f}x {p99:>8.2f}")
        metrics.append({"metric": f"rps_{n}w", "value": round(rps, 1), "unit": "req/s"})
        metrics.append({"metric": f"p99_{n}w", "value": round(p99, 3), "unit": "ms"})
    by_n = {n: rps for n, rps, _ in rows}
    if 4 in by_n:
        metrics.append(
            {
                "metric": "speedup_4w_over_1w",
                "value": round(by_n[4] / base, 3),
                "unit": "x",
                "threshold": floor,
            }
        )
    return "\n".join(lines), metrics


def test_p3_scaleout_capacity(report):
    rows = _capacity_table()
    text, metrics = _render(rows, SPEEDUP_FLOOR)
    report("p3_scaleout_capacity", text, metrics)
    by_n = {n: rps for n, rps, _ in rows}
    speedup = by_n[4] / by_n[1]
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-worker aggregate {by_n[4]:.0f} req/s is only {speedup:.2f}x the "
        f"single worker's {by_n[1]:.0f} req/s (floor {SPEEDUP_FLOOR}x)"
    )


def test_p3_overload_sheds_not_collapses(report):
    """Saturate one worker's admission tier: throughput must hold.

    A worker with a tiny concurrency budget fed by an aggressive client
    must keep answering — shed requests get fast 503/429 + Retry-After,
    admitted ones complete — instead of queueing without bound.
    """
    from repro.portal.admission import AdmissionController

    fleet = FrontendFleet(
        _make_distributor(),
        n_workers=1,
        reply_latency_s=REPLY_LATENCY_S,
        admission_factory=lambda i: AdmissionController(
            rate_per_s=200.0, burst=50.0, max_inflight=1, queue_limit=1
        ),
    ).start()
    try:
        fleet.users.add_user("bench", "bench-pass")
        worker = fleet.workers[0]
        client = PortalClient(app=worker, conditional=True)
        client.login("bench", "bench-pass")
        served = shed = 0
        hdrs = {"Authorization": f"Bearer {client._token}"}
        deadline = time.perf_counter() + 1.0
        transport = client._transport
        while time.perf_counter() < deadline:
            status, rh, _ = transport.request("GET", "/api/cluster/status", b"", hdrs)
            if status in (429, 503):
                shed += 1
                assert rh.get("Retry-After"), "shed responses must carry Retry-After"
            else:
                served += 1
        stats = worker.stats()["admission"]
        report(
            "p3_overload_shedding",
            "Overload behaviour at max_inflight=1, queue_limit=1 (1s closed loop)\n"
            f"served {served}, shed {shed} "
            f"(429: {stats['rejected_429']}, 503: {stats['rejected_503']}), "
            f"last Retry-After {stats['retry_after_s']:.2f}s",
            [
                {"metric": "served_under_overload", "value": served, "unit": "req",
                 "threshold": 1},
                {"metric": "shed_under_overload", "value": shed, "unit": "req"},
            ],
        )
        assert served > 0, "admission must keep serving under overload"
        assert stats["rejected_429_503"] == shed
    finally:
        fleet.stop()


# -- CLI ----------------------------------------------------------------------


def _publish(name: str, text: str, metrics: list) -> None:
    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import write_result

    write_result(name, text, metrics)


def _ci_slice() -> int:
    """Smoke slice for CI: 1 vs 2 workers, short windows, gentle floor."""
    rows = _capacity_table(worker_counts=(1, 2), duration_s=0.6)
    text, metrics = _render(rows, CI_SPEEDUP_FLOOR)
    _publish("p3_scaleout_ci", text, metrics)
    print(text)
    speedup = rows[1][1] / rows[0][1]
    if speedup < CI_SPEEDUP_FLOOR:
        print(f"FAIL: 2-worker speedup {speedup:.2f}x < {CI_SPEEDUP_FLOOR}x")
        return 1
    print(f"scaleout ci slice: 2-worker speedup {speedup:.2f}x (floor "
          f"{CI_SPEEDUP_FLOOR}x)")
    return 0


def main(argv: list | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true",
                        help="fast smoke slice (1 vs 2 workers)")
    args = parser.parse_args(argv)
    if args.ci:
        return _ci_slice()
    rows = _capacity_table()
    text, metrics = _render(rows, SPEEDUP_FLOOR)
    _publish("p3_scaleout_capacity", text, metrics)
    print(text)
    by_n = {n: rps for n, rps, _ in rows}
    speedup = by_n[4] / by_n[1]
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: 4-worker speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
