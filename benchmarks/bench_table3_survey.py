"""Experiment T3 — Table 3: entrance/exit survey means (Q1–Q6).

Paper means: Q1 3.00→2.00, Q2 2.56→2.38, Q3 1.33→1.29, Q4 1.44→1.38,
Q5 2.00→2.75, Q6 2.22→3.00.  The bench checks every mean within half a
Likert point and the qualitative directions the paper reads off the
table (knowledge items improve; attitude items barely move).
"""

from repro.education import SemesterSimulation
from repro.education.semester import DEFAULT_SEED
from repro.education.survey import PAPER_SURVEY_MEANS


def test_table3_survey_means(benchmark, report):
    result = benchmark.pedantic(lambda: SemesterSimulation(DEFAULT_SEED).run(), rounds=1, iterations=1)
    report("table3_survey", result.table3())
    agreement = result.agreement()["table3"]
    assert agreement["all_within_tolerance"]

    means = result.survey_means
    # Q1 (inverse scale): self-assessed ignorance decreases.
    assert means["Q1"][1] < means["Q1"][0]
    # Q5/Q6 (direct scales): knowledge self-ratings increase.
    assert means["Q5"][1] > means["Q5"][0]
    assert means["Q6"][1] > means["Q6"][0]
    # Attitude items move less than half a point (the paper calls the
    # shifts possibly "due to randomness").
    for q in ("Q2", "Q3", "Q4"):
        assert abs(means[q][1] - means[q][0]) < 0.5


def test_table3_paper_deltas_have_matching_signs(benchmark, report):
    result = benchmark.pedantic(lambda: SemesterSimulation(DEFAULT_SEED).run(), rounds=1, iterations=1)
    rows = []
    sign_matches = 0
    for qid, (p_in, p_out) in PAPER_SURVEY_MEANS.items():
        m_in, m_out = result.survey_means[qid]
        paper_delta = p_out - p_in
        ours_delta = m_out - m_in
        same = (paper_delta == 0) or (paper_delta * ours_delta >= 0)
        sign_matches += same
        rows.append(f"  {qid}: paper Δ{paper_delta:+.2f}  measured Δ{ours_delta:+.2f}  {'✓' if same else '✗'}")
    report("table3_deltas", "Survey entrance→exit deltas\n" + "\n".join(rows))
    assert sign_matches >= 5  # at least 5 of 6 move the paper's way
