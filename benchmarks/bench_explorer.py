"""Schedule-exploration throughput and DPOR reduction guards.

The perf contract behind DESIGN §12:

1. **Reduction** — DPOR + sleep sets must cover the schedule space of
   lab 6 (dining philosophers) and lab 7 (bounded buffer) with at least
   10× fewer schedules than naive enumeration at equal bounds, while
   witnessing the *identical* finding set.

2. **Feasibility** — the default-size broken bounded buffer is
   infeasible for naive enumeration (>1,000,000 schedules); DPOR must
   exhaust it outright in a handful of runs.

3. **Throughput** — the DPOR driver must sustain a healthy
   states-per-second rate (it re-executes programs, so per-step
   overhead is the whole game).

4. **Distributed driver** — partitioning the frontier across cluster
   jobs must preserve the findings at every partition count.

Run as a script for the tables, or ``--ci`` for the fast equivalence
slice wired into the lint job:

    PYTHONPATH=src python benchmarks/bench_explorer.py [--ci]
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.cluster.backends import CallableBackend
from repro.cluster.distributor import JobDistributor
from repro.cluster.grid import Grid
from repro.cluster.spec import ClusterSpec
from repro.cluster.workloads import ExploreJobSpec, run_exploration
from repro.interleave.explorer import explore
from repro.labs.explore import program, program_ids

pytestmark = pytest.mark.perf

REDUCTION_FLOOR = 10.0
STATES_PER_S_FLOOR = 5_000.0
NAIVE_INFEASIBLE_BUDGET = 20_000
BOUND = 100_000

#: equal-bound reduction cases: naive finishes, DPOR must beat it >= 10x.
REDUCTION_CASES = (
    ("lab6", "broken"),
    ("lab6", "fixed"),
    ("lab7", "fixed"),
    ("lab7", "fixed_semaphore"),
)


def _pair(lab_id: str, variant: str, bound: int = BOUND):
    naive = explore(program(lab_id, variant), max_schedules=bound)
    dpor = explore(program(lab_id, variant), max_schedules=bound, strategy="dpor")
    return naive, dpor


def test_dpor_reduction_on_lab6_and_lab7(report):
    rows = []
    for lab_id, variant in REDUCTION_CASES:
        naive, dpor = _pair(lab_id, variant)
        assert naive.exhausted and dpor.exhausted
        assert dpor.finding_set() == naive.finding_set(), (
            f"{lab_id}/{variant}: DPOR must find exactly what naive finds"
        )
        ratio = naive.schedules_run / dpor.schedules_run
        assert ratio >= REDUCTION_FLOOR, (
            f"{lab_id}/{variant}: {ratio:.1f}x < {REDUCTION_FLOOR}x floor"
        )
        rows.append((f"{lab_id}/{variant}", naive.schedules_run,
                     dpor.schedules_run, ratio))
    lines = [
        "DPOR vs naive enumeration at equal bounds (identical findings)",
        f"floor: {REDUCTION_FLOOR:.0f}x fewer schedules",
        f"{'program':<24} {'naive':>8} {'dpor':>6} {'reduction':>10}",
    ]
    for name, n, d, r in rows:
        lines.append(f"{name:<24} {n:>8} {d:>6} {r:>9.1f}x")
    report("explorer_reduction", "\n".join(lines))


def test_naive_infeasible_lab7_completes_under_dpor(report):
    """The headline: exhaustive proof where enumeration cannot finish."""
    naive = explore(program("lab7", "broken"),
                    max_schedules=NAIVE_INFEASIBLE_BUDGET)
    assert not naive.exhausted, (
        "lab7/broken should exceed the naive budget (it needs >1e6 schedules)"
    )
    dpor = explore(program("lab7", "broken"), max_schedules=BOUND, strategy="dpor")
    assert dpor.exhausted, "DPOR must exhaust the same instance outright"
    assert dpor.schedules_run < 100
    report(
        "explorer_feasibility",
        "Exhaustive exploration of lab7/broken (default size)\n"
        f"naive:  >{NAIVE_INFEASIBLE_BUDGET} schedules, gave up "
        f"({naive.stop_reason})\n"
        f"dpor:   {dpor.schedules_run} schedules, exhausted in "
        f"{dpor.elapsed_s * 1000:.0f} ms",
    )


def test_dpor_states_per_second(report):
    dpor = explore(program("lab7", "fixed"), max_schedules=BOUND, strategy="dpor")
    assert dpor.exhausted
    rate = dpor.states_explored / max(dpor.elapsed_s, 1e-9)
    assert rate >= STATES_PER_S_FLOOR, (
        f"{rate:.0f} states/s < {STATES_PER_S_FLOOR:.0f} floor"
    )
    report(
        "explorer_throughput",
        "DPOR replay throughput on lab7/fixed\n"
        f"{dpor.states_explored} scheduler steps over {dpor.schedules_run} "
        f"schedules in {dpor.elapsed_s * 1000:.0f} ms = {rate:,.0f} states/s",
    )


def test_parallel_driver_scaling(report):
    factory = program("lab7", "fixed")
    solo = explore(factory, max_schedules=BOUND, strategy="dpor")
    rows = []
    for partitions in (1, 2, 4):
        distributor = JobDistributor(
            Grid(ClusterSpec.small(segments=2, slaves=4, cores=2)), CallableBackend()
        )
        spec = ExploreJobSpec(partitions=partitions, seed_schedules=4,
                              wave_budget=BOUND)
        t0 = time.perf_counter()
        result = run_exploration(distributor, factory, spec)
        wall = time.perf_counter() - t0
        assert result.exhausted
        assert result.finding_set() == solo.finding_set()
        rows.append((partitions, result.schedules_run, wall))
    lines = [
        "Distributed DPOR driver on lab7/fixed (findings identical throughout)",
        f"{'partitions':>10} {'schedules':>10} {'wall ms':>8}",
    ]
    for partitions, n, wall in rows:
        lines.append(f"{partitions:>10} {n:>10} {wall * 1000:>7.0f}")
    report("explorer_scaling", "\n".join(lines))


# -- CLI ----------------------------------------------------------------------


def _ci_slice() -> int:
    """Fast equivalence gate for CI: every lab program, small sizes."""
    from repro.analysis.corpus import check_dynamic_corpus

    failures = 0
    for case, result, problems in check_dynamic_corpus("dpor"):
        for problem in problems:
            print(f"FAIL {case.lab_id}/{case.variant}: {problem}")
            failures += 1
    naive, dpor = _pair("lab6", "broken")
    if dpor.finding_set() != naive.finding_set():
        print("FAIL lab6/broken: DPOR and naive disagree on findings")
        failures += 1
    ratio = naive.schedules_run / dpor.schedules_run
    if ratio < REDUCTION_FLOOR:
        print(f"FAIL lab6/broken: reduction {ratio:.1f}x < {REDUCTION_FLOOR}x")
        failures += 1
    print(
        f"explorer ci slice: 15 programs equivalent, lab6 reduction "
        f"{naive.schedules_run}->{dpor.schedules_run} ({ratio:.1f}x), "
        f"{failures} failure(s)"
    )
    return 1 if failures else 0


def _full_table() -> int:
    print(f"{'program':<24} {'naive':>8} {'dpor':>6} {'reduction':>10} {'findings':>9}")
    for pid in program_ids():
        lab_id, variant = pid.split(":")
        if pid == "lab7:broken":
            naive = explore(program(lab_id, variant),
                            max_schedules=NAIVE_INFEASIBLE_BUDGET)
            dpor = explore(program(lab_id, variant), max_schedules=BOUND,
                           strategy="dpor")
            print(f"{pid:<24} {'>20000':>8} {dpor.schedules_run:>6} "
                  f"{'(naive gave up)':>10} {'same':>9}")
            continue
        naive, dpor = _pair(lab_id, variant)
        same = "same" if dpor.finding_set() == naive.finding_set() else "DIFFER"
        ratio = naive.schedules_run / dpor.schedules_run
        print(f"{pid:<24} {naive.schedules_run:>8} {dpor.schedules_run:>6} "
              f"{ratio:>9.1f}x {same:>9}")
    return 0


def main(argv: list | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true",
                        help="fast DPOR-vs-naive equivalence slice (lint gate)")
    args = parser.parse_args(argv)
    return _ci_slice() if args.ci else _full_table()


if __name__ == "__main__":
    sys.exit(main())
