"""Telemetry overhead benchmark.

The observability contract (README "Observability"): a fully
instrumented distributor — counters, queue-wait/run-time histograms,
round timings, monitor aggregates — must keep >= 95% of the throughput
of the same engine running against a :class:`NullRegistry`.  (Job span
trees are derived on demand from the attempt lineage, so they are free
here by construction.)  Same paired A/B
quad methodology as ``bench_faults.py``: each sample runs both variants
in both orders and takes the geometric mean of the two ratios, so
allocator/GC order bias cancels instead of landing on one side.

A second table reports the cost of a ``/metrics``-style scrape
(snapshot + Prometheus render) against a registry populated by a real
workload, to show reads stay off the hot path.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.cluster import ClusterSpec, Grid, JobDistributor, SimulatedBackend
from repro.desim import Simulator
from repro.telemetry import NullRegistry, render_prometheus

from bench_dispatch import make_workload

pytestmark = pytest.mark.perf

N_OVERHEAD = 3000  # long runs average out scheduler noise for the A/B guard
SAMPLES = 5  # both-orders quads for the overhead ratio
SCRAPES = 200


def build_distributor(instrumented: bool) -> tuple[Simulator, JobDistributor]:
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    dist = JobDistributor(
        grid,
        SimulatedBackend(sim),
        now_fn=lambda: sim.now,
        registry=None if instrumented else NullRegistry(),
    )
    return sim, dist


def run_once(instrumented: bool, n: int = N_OVERHEAD) -> float:
    """Drain ``n`` jobs through submit→complete; returns jobs/sec."""
    sim, dist = build_distributor(instrumented)
    requests = make_workload(n)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for request in requests:
            dist.submit(request)
        sim.run()
        dt = time.perf_counter() - t0
    finally:
        gc.enable()
    assert dist.monitor.summary()["by_state"] == {"completed": n}
    if instrumented:
        # the telemetry actually fired — this is not a null-vs-null race
        assert dist.telemetry.h_queue_wait.value.count == n
    else:
        assert dist.telemetry.on is False
    return n / dt


def measure_overhead() -> tuple[float, float, float]:
    """Paired A/B quads; returns (mean ratio, best instrumented, best null)."""
    run_once(True, 200)  # shared warm-up
    ratios, instrumented, null = [], [], []
    for _ in range(SAMPLES):
        i1, n1 = run_once(True), run_once(False)
        n2, i2 = run_once(False), run_once(True)
        instrumented += [i1, i2]
        null += [n1, n2]
        ratios.append(((i1 / n1) * (i2 / n2)) ** 0.5)
    return sum(ratios) / len(ratios), max(instrumented), max(null)


def test_instrumentation_overhead_under_5_percent(report):
    ratio, instrumented, null = measure_overhead()
    report(
        "telemetry_overhead",
        "\n".join(
            [
                "Telemetry overhead (full registry vs NullRegistry)",
                f"4x16 uhd grid, DES backend, N={N_OVERHEAD}, {SAMPLES} both-orders A/B quads",
                f"{'variant':<22} {'best jobs/sec':>14}",
                f"{'NullRegistry':<22} {null:>14.0f}",
                f"{'MetricsRegistry':<22} {instrumented:>14.0f}",
                f"mean quad ratio: {ratio:.3f} (floor 0.95)",
            ]
        ),
    )
    assert ratio >= 0.95, (
        f"telemetry costs {100 * (1 - ratio):.1f}% throughput "
        f"({instrumented:.0f} vs {null:.0f} jobs/sec)"
    )


def test_scrape_cost_is_off_hot_path(report):
    """Snapshot + Prometheus render of a populated registry stays cheap."""
    sim, dist = build_distributor(True)
    for request in make_workload(1000):
        dist.submit(request)
    sim.run()
    registry = dist.telemetry.registry
    render_prometheus(registry.snapshot())  # warm-up
    t0 = time.perf_counter()
    for _ in range(SCRAPES):
        text = render_prometheus(registry.snapshot())
    dt = time.perf_counter() - t0
    per_scrape_ms = 1000 * dt / SCRAPES
    report(
        "telemetry_scrape",
        "\n".join(
            [
                "Prometheus scrape cost (snapshot + render, registry after 1000 jobs)",
                f"{SCRAPES} scrapes, {len(text.splitlines())} exposition lines each",
                f"per scrape: {per_scrape_ms:.3f} ms",
            ]
        ),
    )
    assert per_scrape_ms < 50, f"scrape took {per_scrape_ms:.1f} ms"
