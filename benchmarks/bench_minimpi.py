"""Experiment P3 — minimpi collective costs across topology and scale.

The Computer Organization module teaches "topology, latency, and
routing"; this bench makes the lessons quantitative: virtual-time cost
of collectives vs world size and message size, and topology's effect on
the same traffic pattern.
"""

import pytest

from repro.minimpi import NetworkModel, Topology, run_mpi


def collective_cost(collective: str, size: int, payload: int, topology=Topology.FLAT):
    net = NetworkModel(topology=topology)

    def program(comm):
        data = b"x" * payload
        if collective == "bcast":
            comm.bcast(data if comm.rank == 0 else None)
        elif collective == "allreduce":
            comm.allreduce(comm.rank)
        elif collective == "allgather":
            comm.allgather(data)
        elif collective == "barrier":
            comm.barrier()
        return comm.virtual_time_us()

    values = run_mpi(program, size, network=net)
    return max(values)  # completion time = slowest rank


@pytest.mark.parametrize("collective", ["bcast", "allreduce", "allgather", "barrier"])
def test_p3_collective_wallclock(benchmark, collective):
    cost = benchmark.pedantic(
        lambda: collective_cost(collective, size=8, payload=1024), rounds=3, iterations=1
    )
    assert cost > 0


def test_p3_bcast_scales_logarithmically(benchmark, report):
    """Binomial bcast: virtual cost grows ~log2(p), far below linear."""
    costs = benchmark.pedantic(
        lambda: {p: collective_cost("bcast", p, payload=1024) for p in (2, 4, 8, 16)},
        rounds=1, iterations=1,
    )
    rows = "\n".join(f"  p={p:<3} cost={c:8.1f} us" for p, c in costs.items())
    report("p3_bcast_scaling", "P3 bcast cost vs world size (binomial tree)\n" + rows)
    # Doubling p must cost far less than doubling the time (log growth).
    assert costs[16] < costs[2] * 8
    assert costs[16] > costs[2]


def test_p3_allgather_scales_linearly(benchmark, report):
    """Ring allgather: p−1 steps — cost roughly linear in p."""
    costs = benchmark.pedantic(
        lambda: {p: collective_cost("allgather", p, payload=1024) for p in (2, 4, 8, 16)},
        rounds=1, iterations=1,
    )
    rows = "\n".join(f"  p={p:<3} cost={c:8.1f} us" for p, c in costs.items())
    report("p3_allgather_scaling", "P3 allgather cost vs world size (ring)\n" + rows)
    assert costs[16] > costs[8] > costs[4]
    # Ratio p=16 / p=4 should be near 15/3 = 5 for a ring (±2x slack).
    ratio = costs[16] / costs[4]
    assert 2.0 < ratio < 10.0


def test_p3_message_size_dominates_at_scale(benchmark, report):
    costs = benchmark.pedantic(
        lambda: {n: collective_cost("bcast", 8, payload=n) for n in (100, 10_000, 1_000_000)},
        rounds=1, iterations=1,
    )
    rows = "\n".join(f"  {n:>9} B: {c:10.1f} us" for n, c in costs.items())
    report("p3_payload", "P3 bcast cost vs payload (8 ranks)\n" + rows)
    assert costs[1_000_000] > costs[100] * 20


def test_p3_topology_ablation(benchmark, report):
    """Same alltoall traffic, different wires."""
    def alltoall_cost(topology):
        net = NetworkModel(topology=topology, segment_size=4)

        def program(comm):
            comm.alltoall([b"x" * 512] * comm.size)
            return comm.virtual_time_us()

        return max(run_mpi(program, 8, network=net))

    costs = benchmark.pedantic(
        lambda: {t.value: alltoall_cost(t) for t in (Topology.FLAT, Topology.RING, Topology.SEGMENTED, Topology.HYPERCUBE)},
        rounds=1, iterations=1,
    )
    rows = "\n".join(f"  {name:<10} {cost:8.1f} us" for name, cost in costs.items())
    report("p3_topology", "P3 alltoall (8 ranks, 512B) by topology\n" + rows)
    # A flat crossbar beats a ring for all-to-all traffic; the segmented
    # cluster sits above flat because 3-hop inter-segment routes dominate.
    assert costs["flat"] <= costs["ring"]
    assert costs["segmented"] >= costs["flat"]


def test_p3_parallel_pi_speedup_model(benchmark, report):
    """The classic cpi.py example: compute model + comm cost vs ranks."""
    N = 100_000

    def program(comm):
        # Model computation: each rank integrates N/p slices at 0.01 us each.
        slices = N // comm.size
        comm.charge_compute_us(slices * 0.01)
        local = sum(
            4.0 / (1.0 + ((i + 0.5) / N) ** 2) for i in range(comm.rank, N, comm.size * 997)
        )  # sparse sample keeps the real loop cheap
        comm.allreduce(local)
        return comm.virtual_time_us()

    times = benchmark.pedantic(
        lambda: {p: max(run_mpi(program, p)) for p in (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    speedups = {p: times[1] / t for p, t in times.items()}
    rows = "\n".join(f"  p={p:<3} t={t:9.1f} us  speedup={speedups[p]:.2f}x" for p, t in times.items())
    report("p3_pi_speedup", "P3 parallel-pi virtual-time speedup\n" + rows)
    assert speedups[8] > 4  # decent but sub-linear (comm overhead)
    assert speedups[8] < 8.5
