"""Spec engine benchmark: collect-all validation and diff planning.

Two guarded experiments over a realistic document — 4 segments x 16
slaves (the paper's UHD shape) plus 3 elastic pools, scheduler queues,
retry/health/admission/toolchain stanzas:

* **validate**: one full three-pass collect-all validation must stay
  under **50 ms** — the portal runs it inline on every
  ``POST /api/cluster/validate`` and before every reconfigure;
* **diff plan**: ``plan_reconfigure`` across a mixed change set
  (grow + shrink + retype + knob swaps) must also stay under **50 ms**
  — it runs on every ``POST /api/cluster/reconfigure``, including
  plan-only dry runs.

An informational row tracks the invalid path (the kitchen-sink corpus
fixture), which exercises every pass's error accumulation.
"""

from __future__ import annotations

import copy
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.spec import plan_reconfigure, validate
from repro.spec.fixtures import _kitchen_sink

pytestmark = pytest.mark.perf

#: guarded ceiling for one validate() of the reference document (ms).
VALIDATE_MS_CEIL = 50.0
#: guarded ceiling for one plan_reconfigure() across the change set (ms).
PLAN_MS_CEIL = 50.0

REPS = 200


def reference_spec() -> dict:
    """4 segments x 16 slaves, 3 pools, every stanza populated."""
    return {
        "cluster": {
            "name": "bench",
            "node_types": {
                "duo": {"cores": 2, "memory_mb": 2048, "cpu_ghz": 2.0},
                "quad": {"cores": 4, "memory_mb": 4096, "cpu_ghz": 2.6},
                "quad-gpu": {"cores": 4, "memory_mb": 4096, "cpu_ghz": 2.6,
                             "has_gpu": True, "node_type": "gpu"},
            },
            "segments": [
                {"name": "seg-a", "slaves": 16, "slave_type": "duo"},
                {"name": "seg-b", "slaves": 16, "slave_type": "duo"},
                {"name": "seg-c", "slaves": 16, "slave_type": "quad"},
                {"name": "seg-d", "slaves": 16, "slave_type": "quad-gpu"},
            ],
        },
        "scheduler": {
            "policy": "backfill",
            "queues": [
                {"name": "interactive", "priority": 10},
                {"name": "batch", "priority": 0},
                {"name": "gpuq", "node_type": "quad-gpu", "priority": 5},
            ],
        },
        "retry": {"max_attempts": 3, "retry_on": ["failed", "timeout", "node_lost"]},
        "health": {"suspect_after": 3, "window_s": 60.0},
        "fleet": {
            "pools": [
                {"name": "base", "segment": "seg-c", "node_type": "quad",
                 "min_nodes": 2, "max_nodes": 8, "warmup_s": 10.0},
                {"name": "burst", "segment": "seg-a", "node_type": "duo",
                 "min_nodes": 0, "max_nodes": 16, "spot": True, "warmup_s": 20.0},
                {"name": "gpu", "segment": "seg-d", "node_type": "quad-gpu",
                 "min_nodes": 0, "max_nodes": 4, "warmup_s": 30.0},
            ],
            "scaling": {"policy": "queue-wait-p95", "out_wait_s": 30.0,
                        "in_wait_s": 2.0, "step": 2,
                        "scale_out_cooldown_s": 15.0,
                        "scale_in_cooldown_s": 60.0, "idle_s": 30.0},
        },
        "admission": {"rate_per_s": 50.0, "burst": 100.0, "max_inflight": 64,
                      "queue_limit": 128, "max_users": 500},
        "toolchains": {"prefer_real": True,
                       "languages": ["c", "cpp", "java", "python"]},
    }


def changed_spec(base: dict) -> dict:
    """A mixed desired state: grow, shrink, retype, knob swaps."""
    doc = copy.deepcopy(base)
    doc["cluster"]["segments"][0]["slaves"] = 24          # grow
    doc["cluster"]["segments"][1]["slaves"] = 8           # shrink
    doc["cluster"]["node_types"]["quad"]["cores"] = 8     # retype seg-c
    doc["scheduler"]["policy"] = "priority"
    doc["fleet"]["pools"][0]["max_nodes"] = 4             # shrink pool
    doc["fleet"]["pools"][1]["max_nodes"] = 32            # update pool
    doc["fleet"]["scaling"]["out_wait_s"] = 20.0
    doc["admission"]["max_inflight"] = 32
    return doc


def _time_ms(fn, reps: int) -> list[float]:
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return samples


def _collect(reps: int) -> tuple[str, list]:
    base = reference_spec()
    desired = changed_spec(base)
    report = validate(base)
    assert report.findings == [], [str(f) for f in report.findings]
    plan = plan_reconfigure(base, desired)
    assert len(plan.actions) >= 7

    valid_ms = _time_ms(lambda: validate(base), reps)
    invalid_doc = _kitchen_sink()
    invalid_ms = _time_ms(lambda: validate(invalid_doc), reps)
    plan_ms = _time_ms(lambda: plan_reconfigure(base, desired), reps)

    rows = [
        ("validate (clean)", valid_ms, VALIDATE_MS_CEIL),
        ("validate (kitchen-sink)", invalid_ms, None),
        ("plan_reconfigure", plan_ms, PLAN_MS_CEIL),
    ]
    lines = [
        f"Spec engine: 4-segment / 3-pool document, {reps} reps "
        f"({len(plan.actions)} planned actions across the change set)",
        f"{'operation':<26} {'median ms':>10} {'p95 ms':>8} {'ceil ms':>8}",
    ]
    metrics = []
    for label, samples, ceil in rows:
        med = statistics.median(samples)
        p95 = statistics.quantiles(samples, n=20)[-1]
        lines.append(
            f"{label:<26} {med:>10.3f} {p95:>8.3f} "
            f"{ceil if ceil is not None else '-':>8}"
        )
        key = label.replace(" ", "_").replace("(", "").replace(")", "").replace("-", "_")
        entry = {"metric": f"{key}_median_ms", "value": round(med, 4), "unit": "ms"}
        if ceil is not None:
            entry.update({"threshold": ceil, "op": "<="})
        metrics.append(entry)
    return "\n".join(lines), metrics


# -- pytest entry -------------------------------------------------------------


def test_spec_validate_and_plan_guards(guarded_report):
    text, metrics = _collect(REPS)
    guarded_report("spec", text, metrics)


# -- CLI ----------------------------------------------------------------------


def main(argv: list | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true",
                        help="smoke slice: fewer repetitions")
    args = parser.parse_args(argv)
    text, metrics = _collect(50 if args.ci else REPS)

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import check_guards, write_result

    write_result("spec", text, metrics)
    print(text)
    failures = check_guards(metrics)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
