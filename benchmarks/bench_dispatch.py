"""Dispatch-engine microbenchmark: jobs/sec through submit→complete.

Drives N ∈ {100, 400, 1600} jobs of the standard mixed stream (70%
sequential, 30% parallel at 2–16 tasks) through the full distributor
pipeline on the paper's 4×16 grid with the DES backend, per scheduling
policy, and reports end-to-end throughput plus the engine's round
counters.  The ``perf`` guards assert the incremental-index engine keeps
its asymptotics: a generous wall-clock ceiling at N=1600 and O(1)
amortised dispatch rounds per job.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import (
    BackfillScheduler,
    ClusterSpec,
    FIFOScheduler,
    Grid,
    JobKind,
    JobRequest,
    JobDistributor,
    PriorityScheduler,
    SimulatedBackend,
)
from repro.desim import Simulator

pytestmark = pytest.mark.perf

POLICIES = [FIFOScheduler, PriorityScheduler, BackfillScheduler]
SIZES = (100, 400, 1600)


def make_workload(n: int, seed: int = 42) -> list[JobRequest]:
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        parallel = rng.random() < 0.3
        n_tasks = int(rng.integers(2, 17)) if parallel else 1
        duration = float(rng.lognormal(1.0, 0.8))
        out.append(
            JobRequest(
                name=f"b{i}",
                kind=JobKind.PARALLEL if parallel else JobKind.SEQUENTIAL,
                n_tasks=n_tasks,
                sim_duration=duration,
                est_runtime_s=duration * float(rng.uniform(1.0, 1.5)),
                priority=int(rng.integers(0, 3)),
            )
        )
    return out


def run_policy(scheduler_cls, n: int) -> tuple[float, dict]:
    """Submit n jobs, drain the simulation, return (jobs/sec, counters)."""
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    dist = JobDistributor(
        grid, SimulatedBackend(sim), scheduler_cls(), now_fn=lambda: sim.now
    )
    requests = make_workload(n)
    t0 = time.perf_counter()
    for request in requests:
        dist.submit(request)
    sim.run()
    dt = time.perf_counter() - t0
    summary = dist.monitor.summary()
    assert summary["by_state"] == {"completed": n}, summary["by_state"]
    assert grid.cores_free == grid.cores_total
    return n / dt, dist.stats()["dispatch"]


def test_dispatch_throughput(report):
    lines = [
        "Dispatch engine throughput (jobs/sec, submit -> all completed)",
        "4x16 uhd grid, DES backend, mixed 70/30 workload, seed 42",
        f"{'policy':<10} " + " ".join(f"{f'N={n}':>10}" for n in SIZES)
        + f" {'rounds/job@1600':>16}",
    ]
    for scheduler_cls in POLICIES:
        rates, counters = [], None
        for n in SIZES:
            rate, counters = run_policy(scheduler_cls, n)
            rates.append(rate)
        rounds_per_job = counters["rounds"] / SIZES[-1]
        lines.append(
            f"{scheduler_cls().name:<10} "
            + " ".join(f"{r:>10.0f}" for r in rates)
            + f" {rounds_per_job:>16.2f}"
        )
    report("dispatch_throughput", "\n".join(lines))


@pytest.mark.parametrize(
    "scheduler_cls,ceiling_s",
    [(FIFOScheduler, 15.0), (PriorityScheduler, 60.0), (BackfillScheduler, 30.0)],
)
def test_dispatch_guard_1600(scheduler_cls, ceiling_s):
    """Tier-2 guard: N=1600 stays under a generous wall-clock ceiling and
    dispatch rounds stay O(1) amortised per job (no per-event full rescans)."""
    n = 1600
    t0 = time.perf_counter()
    rate, counters = run_policy(scheduler_cls, n)
    wall = time.perf_counter() - t0
    assert wall < ceiling_s, f"{scheduler_cls().name}: {wall:.1f}s >= {ceiling_s}s"
    # Each job triggers ~1 round on submit and ~1 on completion; coalescing
    # must keep the total linear in N with a small constant.
    assert counters["rounds"] <= 4 * n, counters
    assert counters["jobs_started"] == n
