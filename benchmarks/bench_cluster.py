"""Experiment P2 — scheduler/distributor behaviour on the paper's 4×16 grid.

Ablates the scheduling policy (FIFO vs priority vs EASY backfill) on a
mixed sequential/parallel workload and reports mean/95p queue wait and
utilisation.  Absolute numbers are synthetic; the *ordering* (backfill
≤ FIFO mean wait; priority favours high-priority jobs) is the claim.
"""

import numpy as np
import pytest

from repro.cluster import (
    BackfillScheduler,
    ClusterSpec,
    FIFOScheduler,
    Grid,
    JobDistributor,
    JobKind,
    JobRequest,
    PriorityScheduler,
    SimulatedBackend,
)
from repro.desim import Simulator

N_JOBS = 400


def make_workload(seed=42):
    """A mixed stream: 70% sequential, 30% parallel (2-16 tasks)."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(N_JOBS):
        parallel = rng.random() < 0.3
        n_tasks = int(rng.integers(2, 17)) if parallel else 1
        duration = float(rng.lognormal(1.0, 0.8))
        jobs.append(
            JobRequest(
                name=f"j{i}",
                kind=JobKind.PARALLEL if parallel else JobKind.SEQUENTIAL,
                n_tasks=n_tasks,
                sim_duration=duration,
                est_runtime_s=duration * float(rng.uniform(1.0, 1.5)),
                priority=int(rng.integers(0, 3)),
            )
        )
    return jobs


def run_policy(scheduler):
    sim = Simulator()
    grid = Grid(ClusterSpec.uhd_default())
    dist = JobDistributor(grid, SimulatedBackend(sim), scheduler, now_fn=lambda: sim.now)
    for request in make_workload():
        dist.submit(request)
    sim.run()
    summary = dist.monitor.summary()
    assert summary["by_state"] == {"completed": N_JOBS}
    return summary


@pytest.mark.parametrize("scheduler_cls", [FIFOScheduler, PriorityScheduler, BackfillScheduler])
def test_p2_policy_throughput(benchmark, scheduler_cls):
    summary = benchmark.pedantic(lambda: run_policy(scheduler_cls()), rounds=1, iterations=1)
    assert summary["jobs_finished"] == N_JOBS


def test_p2_policy_ablation_table(benchmark, report):
    rows = ["P2 scheduling-policy ablation (400 jobs, 4x16 grid)",
            f"{'policy':<10} {'mean wait':>10} {'p95 wait':>10} {'core-s':>10}"]
    def sweep():
        out = {}
        for scheduler in (FIFOScheduler(), PriorityScheduler(), BackfillScheduler()):
            out[scheduler.name] = run_policy(scheduler)
        return out

    summaries = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, s in summaries.items():
        rows.append(
            f"{name:<10} {s['mean_wait_s']:>10.2f} {s['p95_wait_s']:>10.2f} "
            f"{s['core_seconds']:>10.0f}"
        )
    report("p2_policies", "\n".join(rows))
    # Backfill must not be worse than FIFO on mean wait (EASY guarantees
    # the head is never delayed, so queue time can only improve).
    assert summaries["backfill"]["mean_wait_s"] <= summaries["fifo"]["mean_wait_s"] + 1e-9


def test_p2_priority_favours_high_priority(benchmark, report):
    def run():
        sim = Simulator()
        grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
        dist = JobDistributor(grid, SimulatedBackend(sim), PriorityScheduler(), now_fn=lambda: sim.now)
        rng = np.random.default_rng(1)
        jobs = []
        for i in range(60):
            jobs.append(
                dist.submit(
                    JobRequest(name=f"j{i}", sim_duration=float(rng.uniform(1, 4)),
                               priority=i % 2)  # alternate low/high
                )
            )
        sim.run()
        return jobs

    jobs = benchmark.pedantic(run, rounds=1, iterations=1)
    high = np.mean([j.wait_s for j in jobs if j.request.priority == 1])
    low = np.mean([j.wait_s for j in jobs if j.request.priority == 0])
    report("p2_priority", f"P2 priority ablation: high-prio mean wait {high:.2f}s, low-prio {low:.2f}s")
    assert high < low


def test_p2_locality_preference(benchmark, report):
    """Parallel jobs pack into one segment when they fit."""
    def run():
        sim = Simulator()
        grid = Grid(ClusterSpec.uhd_default())
        dist = JobDistributor(grid, SimulatedBackend(sim), now_fn=lambda: sim.now)
        job = dist.submit(
            JobRequest(name="p", kind=JobKind.PARALLEL, n_tasks=8, sim_duration=1.0)
        )
        sim.run()
        return job

    job = benchmark.pedantic(run, rounds=1, iterations=1)
    segments = {name.rsplit("-n", 1)[0] for name in job.placement}
    report("p2_locality", f"P2 8-task job placed on segments: {sorted(segments)}")
    assert len(segments) == 1


def test_p2_utilisation_under_saturation(benchmark, report):
    def run():
        sim = Simulator()
        grid = Grid(ClusterSpec.uhd_default())
        dist = JobDistributor(grid, SimulatedBackend(sim), BackfillScheduler(), now_fn=lambda: sim.now)
        # Saturating stream of single-core jobs.
        for i in range(1000):
            dist.submit(JobRequest(name=f"j{i}", sim_duration=2.0, est_runtime_s=2.0))
        sim.run()
        return dist.monitor.mean_load()

    mean_load = benchmark.pedantic(run, rounds=1, iterations=1)
    report("p2_utilisation", f"P2 mean sampled load under saturation: {mean_load:.0%}")
    assert mean_load > 0.5


def test_p2_queueing_curve(benchmark, report):
    """Mean wait vs offered load: the classic hockey-stick, on our grid."""
    from repro.cluster.workloads import WorkloadSpec, run_workload

    def sweep():
        out = {}
        for rate in (1.0, 3.0, 6.0, 12.0):
            sim = Simulator()
            dist = JobDistributor(
                Grid(ClusterSpec.uhd_default()), SimulatedBackend(sim),
                BackfillScheduler(), now_fn=lambda: sim.now,
            )
            spec = WorkloadSpec(n_jobs=300, arrival_rate_per_s=rate)
            out[rate] = run_workload(dist, sim, spec, seed=7)
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["P2 queueing curve (300 Poisson jobs, EASY backfill)",
            f"{'rate/s':>7} {'offered core-s/s':>17} {'mean wait':>10} {'p95 wait':>10}"]
    for rate, s in curves.items():
        rows.append(
            f"{rate:>7.1f} {s['offered_load_core_s_per_s']:>17.1f} "
            f"{s['mean_wait_s']:>9.2f}s {s['p95_wait_s']:>9.2f}s"
        )
    report("p2_queueing", "\n".join(rows))
    waits = [s["mean_wait_s"] for s in curves.values()]
    assert waits == sorted(waits), "wait must be monotone in offered load"
    assert waits[-1] > waits[0], "saturation must hurt"


def test_p2_priority_aging_prevents_starvation(benchmark, report):
    """Ablation: pure priority starves; aging bounds the worst wait."""
    from repro.cluster.workloads import WorkloadSpec, run_workload

    def sweep():
        out = {}
        for rate in (0.0, 0.5, 2.0):
            sim = Simulator()
            dist = JobDistributor(
                Grid(ClusterSpec.small(segments=2, slaves=4, cores=2)),
                SimulatedBackend(sim), PriorityScheduler(aging_rate=rate),
                now_fn=lambda: sim.now,
            )
            spec = WorkloadSpec(n_jobs=200, arrival_rate_per_s=6.0, priority_levels=3)
            summary = run_workload(dist, sim, spec, seed=11)
            # Worst wait among the lowest-priority jobs is the starvation metric.
            low_waits = [
                j.wait_s for j in dist.jobs.values()
                if j.request.priority == 0 and j.wait_s is not None
            ]
            out[rate] = {"max_low_wait": max(low_waits), "mean_wait": summary["mean_wait_s"]}
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["P2 priority-aging ablation (200 jobs, 3 priority levels)",
            f"{'aging':>6} {'worst low-prio wait':>20} {'mean wait':>10}"]
    for rate, r in results.items():
        rows.append(f"{rate:>6.1f} {r['max_low_wait']:>19.2f}s {r['mean_wait']:>9.2f}s")
    report("p2_aging", "\n".join(rows))
    assert results[2.0]["max_low_wait"] <= results[0.0]["max_low_wait"]
