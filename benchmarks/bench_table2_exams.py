"""Experiment T2 — Table 2: multicore exam-question passing rates.

Paper: midterm 17 % (all) / 33 % (course passers), final 22 % / 80 %.
The signature shape — modest cohort-wide movement but a dramatic jump
among course passers — is what the bench asserts.
"""

from repro.education import SemesterSimulation
from repro.education.exams import PAPER_EXAM_RATES
from repro.education.semester import DEFAULT_SEED


def test_table2_exam_passing_rates(benchmark, report):
    result = benchmark.pedantic(lambda: SemesterSimulation(DEFAULT_SEED).run(), rounds=1, iterations=1)
    rates = result.exam_rates
    report("table2_exams", result.table2())

    # Qualitative claims the paper makes:
    assert rates.midterm_all < 0.35, "midterm multicore questions are hard for everyone"
    assert rates.final_all >= rates.midterm_all, "cohort improves by the final"
    assert rates.final_passers >= 0.6, "course passers master the material by the final"
    assert rates.final_passers > rates.midterm_passers + 0.2, "passers improve drastically"
    assert rates.midterm_passers > rates.midterm_all, "passers outperform the class"


def test_table2_expected_rates_over_replications(benchmark, report):
    def run():
        return SemesterSimulation(2012).run_replications(10)

    avg = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = "\n".join(
        f"  {k}: paper {PAPER_EXAM_RATES[k]:.0%}  expected {avg['table2'][k]:.0%}"
        for k in PAPER_EXAM_RATES
    )
    report("table2_replications", "Table 2 expected rates (10 cohorts)\n" + rows)
    assert abs(avg["table2"]["midterm_all"] - PAPER_EXAM_RATES["midterm_all"]) < 0.10
    assert abs(avg["table2"]["final_all"] - PAPER_EXAM_RATES["final_all"]) < 0.10
    assert avg["table2"]["final_passers"] > 0.55
