"""Ablation — the instructor's grading harness.

DESIGN.md calls out a design choice: broken student submissions are
caught by running them under *several* scheduling seeds (plus a random
witness hunt for the deadlock lab).  How many seeds does reliable
detection actually need?  This bench measures per-lab defect-detection
rate as a function of the seed budget — the evidence behind the
harness's default of 3 seeds (and the special-casing of lab 6).
"""

import pytest

from repro.labs import get_lab
from repro.labs.lab6_philosophers import find_deadlock_witness

#: labs whose broken variant misbehaves under ordinary seed sampling
_SEED_CAUGHT_LABS = ["lab1", "lab2", "lab3", "lab4", "lab5", "lab7"]
_TRIALS = 12  # disjoint seed windows per budget


def detection_rate(lab_id: str, n_seeds: int, trials: int = _TRIALS) -> float:
    """Fraction of seed-windows in which the defect is exposed."""
    lab = get_lab(lab_id)
    caught = 0
    for trial in range(trials):
        base = trial * n_seeds
        if not all(lab.run("broken", base + k).passed for k in range(n_seeds)):
            caught += 1
    return caught / trials


@pytest.mark.parametrize("lab_id", _SEED_CAUGHT_LABS)
def test_g1_three_seeds_suffice(benchmark, lab_id):
    rate = benchmark.pedantic(lambda: detection_rate(lab_id, 3), rounds=1, iterations=1)
    assert rate >= 0.9, f"{lab_id}: 3-seed harness caught only {rate:.0%}"


def test_g1_detection_curve(benchmark, report):
    def sweep():
        out = {}
        for lab_id in _SEED_CAUGHT_LABS:
            out[lab_id] = {n: detection_rate(lab_id, n) for n in (1, 2, 3)}
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = ["G1 defect-detection rate vs grading-seed budget",
            f"{'lab':<6} {'1 seed':>8} {'2 seeds':>8} {'3 seeds':>8}"]
    for lab_id, by_n in curves.items():
        rows.append(f"{lab_id:<6} {by_n[1]:>8.0%} {by_n[2]:>8.0%} {by_n[3]:>8.0%}")
    report("g1_detection", "\n".join(rows))
    for lab_id, by_n in curves.items():
        assert by_n[1] <= by_n[2] + 1e-9 and by_n[2] <= by_n[3] + 1e-9, (
            f"{lab_id}: more seeds must never detect less"
        )
        assert by_n[3] >= 0.9, f"{lab_id}: the default budget must be reliable"


def test_g1_lab6_needs_witness_search(benchmark, report):
    """Lab 6's deadlock escapes small seed budgets — hence the hunt."""
    lab = get_lab("lab6")

    def three_seed_rate():
        return detection_rate("lab6", 3, trials=8)

    seed_rate = benchmark.pedantic(three_seed_rate, rounds=1, iterations=1)
    witness = find_deadlock_witness()
    report(
        "g1_lab6",
        f"G1 lab6: 3-seed detection rate {seed_rate:.0%}; "
        f"witness hunt (64 random schedules) found seed {witness}",
    )
    assert witness is not None  # the hunt always lands
    # The point of the special case: plain 3-seed sampling is unreliable here.
    assert seed_rate < 0.9
