"""Experiment P1 — portal round-trip latency and throughput.

Section II's claim is architectural: the portal mediates the full
login → upload → compile → dispatch → execute → monitor path.  The bench
measures that path end-to-end (in-process WSGI, real gcc when present,
simulated toolchain otherwise), plus the cheap read endpoints.

Experiment P2 (tier-2, ``-m perf``) benchmarks the portal fast path:
the four hot read endpoints a polling classroom hammers (cluster
status, job output, directory listing, file download) are measured
against a cache-disabled baseline portal, and the guard asserts the
conditional-GET fast path sustains ≥ 5× the baseline's requests/sec.
"""

import tempfile
import time

import pytest

from repro.cluster.spec import ClusterSpec
from repro.portal import PortalClient, make_default_app

C_SOURCE = '#include <stdio.h>\nint main(void){ printf("bench\\n"); return 0; }\n'


@pytest.fixture(scope="module")
def bench_portal():
    root = tempfile.mkdtemp(prefix="bench_portal_")
    app = make_default_app(root, cluster_spec=ClusterSpec.small(segments=2, slaves=4))
    admin = PortalClient(app=app)
    admin.login("admin", "admin-pass")
    admin.create_user("bench", "bench-pass")
    client = PortalClient(app=app)
    client.login("bench", "bench-pass")
    client.write_file("prog.c", C_SOURCE)
    return app, client


def test_p1_login_roundtrip(benchmark, bench_portal):
    app, _ = bench_portal

    def login():
        c = PortalClient(app=app)
        c.login("bench", "bench-pass")
        return c.whoami()

    result = benchmark(login)
    assert result["username"] == "bench"


def test_p1_file_write_read(benchmark, bench_portal):
    _, client = bench_portal

    def roundtrip():
        client.write_file("scratch.txt", "x" * 1024)
        return client.read_file("scratch.txt")

    assert len(benchmark(roundtrip)) == 1024


def test_p1_compile_endpoint(benchmark, bench_portal):
    _, client = bench_portal
    result = benchmark(lambda: client.compile("prog.c"))
    assert result["ok"]


def test_p1_full_submit_run_monitor(benchmark, bench_portal, report):
    _, client = bench_portal

    def round_trip():
        resp = client.submit_job("prog.c")
        desc = client.wait_for_job(resp["job"]["id"], timeout=60)
        out = client.job_output(resp["job"]["id"])
        return desc, out

    desc, out = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    report(
        "p1_portal",
        f"P1 submit→run→monitor: state={desc['state']} stdout={out['stdout']}",
    )
    assert desc["state"] == "completed"
    assert out["stdout"] == ["bench"]


def test_p1_cluster_status_under_job_history(benchmark, bench_portal):
    _, client = bench_portal
    status = benchmark(client.cluster_status)
    assert status["grid"]["cores_total"] == 16


# ---------------------------------------------------------------------------
# Experiment P2 — portal fast path (tier-2: run with  pytest -m perf)
#
# A semester's worth of polling is read-dominated: every dashboard tab
# refreshes cluster status, every open job page polls output, the file
# manager re-lists directories.  P2 measures those four endpoints on a
# deliberately heavy portal state (wide grid, job history, long output,
# populated home, multi-MB artifact) twice:
#
#   baseline — response cache disabled (cache_size=0), plain client;
#              every request re-renders and re-sends the full body;
#   fast     — default cached app + a conditional client (If-None-Match),
#              so unchanged reads cost a cache probe and a 304.
#
# The pre-PR portal had no cache, no conditional GET, rendered listings
# through per-entry pathlib stats and re-walked quotas per request — the
# cache-disabled baseline here is therefore *faster* than the true
# pre-PR portal (listing measured ~40 req/s then), making the ≥ 5×
# guard conservative.
# ---------------------------------------------------------------------------

#: wide stress grid: 64 segments × 8 slaves = 512 nodes.  The status
#: snapshot is rendered per segment, so a wide layout gives the render
#: the weight it would have on a big federated cluster.
WIDE_SPEC = dict(segments=64, slaves=8, cores=2)
N_LIST_FILES = 250
DOWNLOAD_BYTES = 4 * 1024 * 1024
OUTPUT_LINES = 2000
HISTORY_JOBS = 60
SPEEDUP_FLOOR = 5.0

LOOP_SOURCE = (
    "#include <stdio.h>\n"
    "int main(void) {\n"
    f"    for (int i = 0; i < {OUTPUT_LINES}; i++)\n"
    '        printf("line %d of benchmark output\\n", i);\n'
    "    return 0;\n"
    "}\n"
)


def _populated_portal(cache_size: int, conditional: bool):
    """A portal under classroom-scale state, plus a logged-in client."""
    root = tempfile.mkdtemp(prefix="bench_fastpath_")
    app = make_default_app(
        root, cluster_spec=ClusterSpec.small(**WIDE_SPEC), cache_size=cache_size
    )
    client = PortalClient(app=app, conditional=conditional)
    client.login("admin", "admin-pass")
    client.mkdir("data")
    for i in range(N_LIST_FILES):
        client.write_file(f"data/f{i:03}.txt", "x" * 64)
    client.write_file("big.bin", b"\xab" * DOWNLOAD_BYTES)
    client.write_file("quick.c", C_SOURCE)
    client.write_file("loop.c", LOOP_SOURCE)
    for _ in range(HISTORY_JOBS):
        client.submit_job("quick.c")
    job_id = client.submit_job("loop.c")["job"]["id"]
    for job in client.jobs():
        client.wait_for_job(job["id"], timeout=120)
    return app, client, job_id


@pytest.fixture(scope="module")
def fastpath_pair():
    baseline = _populated_portal(cache_size=0, conditional=False)
    fast = _populated_portal(cache_size=256, conditional=True)
    return baseline, fast


def _rps(fn, n: int) -> float:
    fn()  # warm up (primes the conditional client's validator)
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return n / (time.perf_counter() - t0)


def _endpoints(client: PortalClient, job_id: str):
    return [
        ("cluster status", lambda: client.cluster_status(), 300),
        ("job output", lambda: client.job_output(job_id), 300),
        ("dir listing", lambda: client.list_files("data"), 300),
        ("download 4MiB", lambda: client.download_file("big.bin"), 60),
    ]


@pytest.mark.perf
def test_p2_fastpath_speedup_guard(fastpath_pair, report):
    """Tier-2 guard: ≥ 5× req/s on every hot endpoint, cache actually hit."""
    (_, slow_client, slow_jid), (fast_app, fast_client, fast_jid) = fastpath_pair
    lines = [
        "Portal fast path: req/s, cache-disabled baseline vs conditional GET",
        f"512-node grid, {HISTORY_JOBS}-job history, {OUTPUT_LINES}-line output, "
        f"{N_LIST_FILES}-entry listing, {DOWNLOAD_BYTES // (1024 * 1024)} MiB download",
        f"{'endpoint':<16} {'baseline':>10} {'fast':>10} {'speedup':>9}",
    ]
    ratios = {}
    slow_eps = _endpoints(slow_client, slow_jid)
    fast_eps = _endpoints(fast_client, fast_jid)
    for (name, slow_fn, n), (_, fast_fn, _) in zip(slow_eps, fast_eps):
        slow_rps = _rps(slow_fn, n)
        fast_rps = _rps(fast_fn, n)
        ratios[name] = fast_rps / slow_rps
        lines.append(f"{name:<16} {slow_rps:>10.0f} {fast_rps:>10.0f} {ratios[name]:>8.1f}x")
    report("p2_portal_fastpath", "\n".join(lines))

    for name, ratio in ratios.items():
        assert ratio >= SPEEDUP_FLOOR, (
            f"{name}: {ratio:.1f}x < {SPEEDUP_FLOOR}x fast-path speedup floor"
        )

    stats = fast_app.stats()["portal"]
    cache = stats["response_cache"]
    assert cache["hits"] > 0 and stats["not_modified"] > 0, stats
    hit_rate = cache["hits"] / (cache["hits"] + cache["misses"])
    assert hit_rate > 0.5, f"cache hit-rate {hit_rate:.2f} too low under polling: {stats}"
    assert stats["bytes_streamed"] >= DOWNLOAD_BYTES, stats  # download streamed, not buffered
    assert stats["routed_static"] > 0 and stats["routed_dynamic"] > 0, stats


@pytest.mark.perf
def test_p2_fastpath_invalidation_keeps_reads_fresh(fastpath_pair):
    """The cache never serves stale reads: a write is visible immediately."""
    _, (fast_app, client, job_id) = fastpath_pair
    for _ in range(3):
        client.list_files("data")  # ensure the listing is cached
    client.write_file("data/fresh.txt", "new")
    names = {e["name"] for e in client.list_files("data")}
    assert "fresh.txt" in names
    client.delete("data/fresh.txt")
    names = {e["name"] for e in client.list_files("data")}
    assert "fresh.txt" not in names
    assert fast_app.cache.stats()["invalidations"] > 0
