"""Experiment P1 — portal round-trip latency and throughput.

Section II's claim is architectural: the portal mediates the full
login → upload → compile → dispatch → execute → monitor path.  The bench
measures that path end-to-end (in-process WSGI, real gcc when present,
simulated toolchain otherwise), plus the cheap read endpoints.
"""

import tempfile

import pytest

from repro.cluster.spec import ClusterSpec
from repro.portal import PortalClient, make_default_app

C_SOURCE = '#include <stdio.h>\nint main(void){ printf("bench\\n"); return 0; }\n'


@pytest.fixture(scope="module")
def bench_portal():
    root = tempfile.mkdtemp(prefix="bench_portal_")
    app = make_default_app(root, cluster_spec=ClusterSpec.small(segments=2, slaves=4))
    admin = PortalClient(app=app)
    admin.login("admin", "admin-pass")
    admin.create_user("bench", "bench-pass")
    client = PortalClient(app=app)
    client.login("bench", "bench-pass")
    client.write_file("prog.c", C_SOURCE)
    return app, client


def test_p1_login_roundtrip(benchmark, bench_portal):
    app, _ = bench_portal

    def login():
        c = PortalClient(app=app)
        c.login("bench", "bench-pass")
        return c.whoami()

    result = benchmark(login)
    assert result["username"] == "bench"


def test_p1_file_write_read(benchmark, bench_portal):
    _, client = bench_portal

    def roundtrip():
        client.write_file("scratch.txt", "x" * 1024)
        return client.read_file("scratch.txt")

    assert len(benchmark(roundtrip)) == 1024


def test_p1_compile_endpoint(benchmark, bench_portal):
    _, client = bench_portal
    result = benchmark(lambda: client.compile("prog.c"))
    assert result["ok"]


def test_p1_full_submit_run_monitor(benchmark, bench_portal, report):
    _, client = bench_portal

    def round_trip():
        resp = client.submit_job("prog.c")
        desc = client.wait_for_job(resp["job"]["id"], timeout=60)
        out = client.job_output(resp["job"]["id"])
        return desc, out

    desc, out = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    report(
        "p1_portal",
        f"P1 submit→run→monitor: state={desc['state']} stdout={out['stdout']}",
    )
    assert desc["state"] == "completed"
    assert out["stdout"] == ["bench"]


def test_p1_cluster_status_under_job_history(benchmark, bench_portal):
    _, client = bench_portal
    status = benchmark(client.cluster_status)
    assert status["grid"]["cores_total"] == 16
