"""Elastic-fleet benchmark: burst drain, cost frontier, spot churn.

Three experiments on the DES backend (virtual time, so every number is
deterministic — no pairing or CPU-time tricks needed):

* **Burst drain** (guarded): a 10k-job burst lands at t=0 on a small
  fixed fleet, on the same fleet with autoscaling enabled, and on an
  *oracle* fixed fleet pre-sized to the autoscaler's ceiling.  Guards:
  the autoscaled drain finishes in **≤ 0.5×** the fixed-fleet
  wall-clock, while spending **≤ 1.2×** the node-seconds of the oracle
  (the autoscaler pays warm-up lag on the way up and cooldown idle on
  the way down; 20% is the allowed price of not knowing the future).
* **Spot churn** (guarded): the same workload on a preemptible pool
  with a reclamation every 40 virtual seconds; every acknowledged job
  must reach a terminal state — **zero acked-job loss**.
* **Cost/latency frontier** (informational, full mode): a
  ``repro.loadgen`` semester workload — deadline spikes included —
  replayed against increasing fleet ceilings, publishing node-seconds
  against p99 queue wait so the scaling knob's shape is visible in one
  table.

Node-seconds accounting: the base grid is charged ``nodes × drain``;
elastic capacity is charged exactly what the manager accrued tick by
tick, including the post-drain scale-in tail (honesty about the
cooldown cost is the point of the 1.2× guard).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Grid,
    JobDistributor,
    JobRequest,
    NodeSpec,
    RetryPolicy,
    SimulatedBackend,
)
from repro.desim import Simulator
from repro.fleet import NodePool, ScalingManager, TargetQueueDepthPolicy
from repro.loadgen import SemesterWorkload

pytestmark = pytest.mark.perf

#: guarded ceiling: autoscaled drain / fixed-fleet drain.
DRAIN_RATIO_CEIL = 0.5
#: guarded ceiling: autoscaled node-seconds / oracle node-seconds.
COST_RATIO_CEIL = 1.2
#: CI smoke slice: the fixed warm-up/cooldown tails amortise over a
#: much shorter drain, so the cost ceiling is proportionally gentler.
CI_COST_RATIO_CEIL = 1.35

N_FULL = 10_000
N_CI = 1_500

BASE_SLAVES = 4          # fixed-small fleet: 4 nodes x 2 cores
FLEET_MAX = 28           # elastic ceiling (nodes); oracle gets these fixed
MEAN_JOB_S = 8.0         # mean virtual job duration
TICK_S = 5.0             # manager tick interval (virtual seconds)

RETRY = RetryPolicy(
    max_attempts=8,
    backoff_base_s=0.5,
    jitter=0.0,
    retry_on=("node_lost",),
)


def _burst_requests(n: int, seed: int = 7) -> list[JobRequest]:
    rng = np.random.default_rng(seed)
    durations = rng.exponential(MEAN_JOB_S - 0.5, size=n) + 0.5
    return [
        JobRequest(name=f"b{i}", owner="bench", sim_duration=float(d))
        for i, d in enumerate(durations)
    ]


def _run_burst(n: int, *, fleet_max: int = 0, extra_fixed: int = 0) -> dict:
    """One burst drain; returns virtual drain time and node-seconds."""
    sim = Simulator()
    grid = Grid(
        ClusterSpec.small(segments=1, slaves=BASE_SLAVES + extra_fixed, cores=2)
    )
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, retry=RETRY
    )
    jobs = [dist.submit(r) for r in _burst_requests(n)]
    mgr = None
    peak = [0]
    if fleet_max:
        mgr = ScalingManager(
            dist,
            [NodePool("burst", NodeSpec(cores=2), segment="seg-0",
                      max_nodes=fleet_max, warmup_s=10.0)],
            TargetQueueDepthPolicy(out_depth_per_node=4, in_depth_per_node=0.5, step=8),
            scale_out_cooldown_s=8.0,
            scale_in_cooldown_s=15.0,
            idle_s=10.0,
        )

        def driver(sim):
            while True:
                yield sim.timeout(TICK_S)
                mgr.tick()
                peak[0] = max(peak[0], len(mgr.managed_nodes()))
                if (
                    all(j.terminal for j in jobs)
                    and not mgr.managed_nodes()
                    and not mgr.pending()
                ):
                    return

        sim.process(driver(sim))
    t0 = time.process_time()
    dist.dispatch()
    sim.run()
    cpu_s = time.process_time() - t0
    assert all(j.state.value == "completed" for j in jobs)
    drain = max(j.finished_at for j in jobs)
    base_nodes = BASE_SLAVES + extra_fixed
    node_seconds = base_nodes * drain
    if mgr is not None:
        node_seconds += sum(mgr.node_seconds.values())
    return {
        "drain_s": drain,
        "node_seconds": node_seconds,
        # overflow bucket -> +inf; no wait can exceed the run horizon
        "p99_wait_s": min(
            dist.telemetry.h_queue_wait.value.quantile(0.99), drain
        ),
        "cpu_s": cpu_s,
        "peak_fleet": peak[0],
    }


def _run_spot_churn(n: int) -> dict:
    """Burst on a preemptible pool with periodic reclamations."""
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=1, slaves=BASE_SLAVES, cores=2))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, retry=RETRY
    )
    acked = [dist.submit(r).id for r in _burst_requests(n, seed=11)]
    mgr = ScalingManager(
        dist,
        [NodePool("spot", NodeSpec(cores=2), segment="seg-0",
                  max_nodes=12, spot=True)],
        TargetQueueDepthPolicy(out_depth_per_node=4, in_depth_per_node=0.5, step=4),
        scale_out_cooldown_s=8.0,
        scale_in_cooldown_s=30.0,
        idle_s=20.0,
    )
    rng = np.random.default_rng(13)
    reclaimed = [0]

    def driver(sim):
        since_reclaim = 0.0
        while True:
            yield sim.timeout(TICK_S)
            mgr.tick()
            since_reclaim += TICK_S
            spot = mgr.spot_nodes()
            if spot and since_reclaim >= 40.0:
                mgr.reclaim(spot[int(rng.integers(0, len(spot)))])
                reclaimed[0] += 1
                since_reclaim = 0.0
            if (
                all(dist.jobs[j].terminal for j in acked)
                and not mgr.managed_nodes()
                and not mgr.pending()
            ):
                return

    sim.process(driver(sim))
    dist.dispatch()
    sim.run()
    lost = sum(
        1 for j in acked
        if j not in dist.jobs or not dist.jobs[j].terminal
    )
    completed = sum(1 for j in acked if dist.jobs[j].state.value == "completed")
    return {
        "n": n,
        "reclaims": reclaimed[0],
        "acked_lost": lost,
        "completed": completed,
        "rerouted": dist.stats()["faults"]["reroutes"],
    }


def _run_frontier_point(fleet_max: int, n_students: int = 60) -> dict:
    """One loadgen-driven point: semester arrivals vs a fleet ceiling."""
    sim = Simulator()
    grid = Grid(ClusterSpec.small(segments=1, slaves=2, cores=2))
    dist = JobDistributor(
        grid, SimulatedBackend(sim), now_fn=lambda: sim.now, retry=RETRY
    )
    mgr = None
    if fleet_max:
        mgr = ScalingManager(
            dist,
            [NodePool("burst", NodeSpec(cores=2), segment="seg-0",
                      max_nodes=fleet_max, warmup_s=10.0)],
            TargetQueueDepthPolicy(out_depth_per_node=2, in_depth_per_node=0.4, step=2),
            scale_out_cooldown_s=8.0,
            scale_in_cooldown_s=30.0,
            idle_s=20.0,
        )
    workload = SemesterWorkload(
        n_students, seed=2012, duration_s=1800.0, base_rate_per_student=0.01
    )
    jobs: list = []

    def submitter(sim):
        for i, arrival in enumerate(workload.arrivals()):
            if arrival.t > sim.now:
                yield sim.timeout(arrival.t - sim.now)
            # loadgen service times are front-end milliseconds; stretch
            # them into cluster-job durations that oversubscribe the
            # 2-node base grid (~2x) so the ceiling knob has a queue
            # to eat into
            jobs.append(dist.submit(JobRequest(
                name=f"l{i}", owner="bench",
                sim_duration=5.0 + 3000.0 * arrival.service_s,
            )))

    def ticker(sim):
        while True:
            yield sim.timeout(TICK_S)
            if mgr is not None:
                mgr.tick()
            if sim.now >= workload.duration_s and all(j.terminal for j in jobs):
                if mgr is None or (not mgr.managed_nodes() and not mgr.pending()):
                    return

    sim.process(submitter(sim))
    sim.process(ticker(sim))
    sim.run()
    horizon = max(j.finished_at for j in jobs)
    node_seconds = 2 * horizon  # base grid
    if mgr is not None:
        node_seconds += sum(mgr.node_seconds.values())
    return {
        "fleet_max": fleet_max,
        "jobs": len(jobs),
        "node_seconds": node_seconds,
        "p99_wait_s": min(
            dist.telemetry.h_queue_wait.value.quantile(0.99), horizon
        ),
    }


# -- rendering ----------------------------------------------------------------


def _render_burst(
    n: int, fixed: dict, auto: dict, oracle: dict, cost_ceil: float
) -> tuple[str, list]:
    drain_ratio = auto["drain_s"] / fixed["drain_s"]
    cost_ratio = auto["node_seconds"] / oracle["node_seconds"]
    lines = [
        f"Fleet burst drain: {n} jobs at t=0, {BASE_SLAVES}-node base, "
        f"elastic ceiling {FLEET_MAX} (virtual time, deterministic)",
        f"{'config':<14} {'drain s':>10} {'node-s':>10} {'p99 wait s':>11}",
    ]
    for label, row in (("fixed-small", fixed), ("autoscaled", auto),
                       ("oracle-fixed", oracle)):
        lines.append(
            f"{label:<14} {row['drain_s']:>10.0f} {row['node_seconds']:>10.0f} "
            f"{row['p99_wait_s']:>11.1f}"
        )
    lines.append(
        f"drain ratio auto/fixed {drain_ratio:.3f} (ceil {DRAIN_RATIO_CEIL}); "
        f"cost ratio auto/oracle {cost_ratio:.3f} (ceil {cost_ceil}); "
        f"peak fleet {auto['peak_fleet']} nodes"
    )
    metrics = [
        {"metric": "burst_drain_ratio", "value": round(drain_ratio, 4), "unit": "x",
         "threshold": DRAIN_RATIO_CEIL, "op": "<=",
         "node_seconds": round(auto["node_seconds"], 1)},
        {"metric": "burst_cost_ratio", "value": round(cost_ratio, 4), "unit": "x",
         "threshold": cost_ceil, "op": "<=",
         "node_seconds": round(oracle["node_seconds"], 1)},
        {"metric": "fixed_drain_s", "value": round(fixed["drain_s"], 1), "unit": "s",
         "node_seconds": round(fixed["node_seconds"], 1)},
        {"metric": "auto_drain_s", "value": round(auto["drain_s"], 1), "unit": "s",
         "node_seconds": round(auto["node_seconds"], 1)},
        {"metric": "auto_p99_wait_s", "value": round(auto["p99_wait_s"], 2),
         "unit": "s"},
    ]
    return "\n".join(lines), metrics


def _render_spot(spot: dict) -> tuple[str, list]:
    lines = [
        f"Spot churn: {spot['n']} jobs, one reclamation per 40 virtual s "
        f"({spot['reclaims']} total, {spot['rerouted']} attempts rerouted)",
        f"acked jobs lost: {spot['acked_lost']} (must be 0); "
        f"completed {spot['completed']}/{spot['n']}",
    ]
    metrics = [
        {"metric": "spot_acked_lost", "value": spot["acked_lost"], "unit": "jobs",
         "threshold": 0, "op": "<="},
        {"metric": "spot_reclaims", "value": spot["reclaims"], "unit": ""},
    ]
    return "\n".join(lines), metrics


def _render_frontier(points: list[dict]) -> tuple[str, list]:
    lines = [
        "Cost/latency frontier: loadgen semester (deadline spikes) vs fleet ceiling",
        f"{'ceiling':>8} {'jobs':>6} {'node-s':>10} {'p99 wait s':>11}",
    ]
    metrics = []
    for p in points:
        lines.append(
            f"{p['fleet_max']:>8} {p['jobs']:>6} {p['node_seconds']:>10.0f} "
            f"{p['p99_wait_s']:>11.1f}"
        )
        metrics.append({
            "metric": f"frontier_p99_wait_max{p['fleet_max']}",
            "value": round(p["p99_wait_s"], 2), "unit": "s",
            "node_seconds": round(p["node_seconds"], 1),
        })
    return "\n".join(lines), metrics


def _collect(
    n: int, frontier: bool, cost_ceil: float = COST_RATIO_CEIL
) -> tuple[str, list]:
    fixed = _run_burst(n)
    auto = _run_burst(n, fleet_max=FLEET_MAX)
    oracle = _run_burst(n, extra_fixed=FLEET_MAX)
    text, metrics = _render_burst(n, fixed, auto, oracle, cost_ceil)
    spot_text, spot_metrics = _render_spot(_run_spot_churn(min(n, 2000)))
    text += "\n\n" + spot_text
    metrics += spot_metrics
    if frontier:
        points = [_run_frontier_point(m) for m in (0, 4, 12, 24)]
        f_text, f_metrics = _render_frontier(points)
        text += "\n\n" + f_text
        metrics += f_metrics
    return text, metrics


# -- pytest entry -------------------------------------------------------------


def test_fleet_burst_and_spot_guards(guarded_report):
    text, metrics = _collect(N_FULL, frontier=True)
    guarded_report("fleet", text, metrics)


# -- CLI ----------------------------------------------------------------------


def main(argv: list | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true",
                        help="smoke slice: smaller burst, no frontier sweep")
    args = parser.parse_args(argv)
    n = N_CI if args.ci else N_FULL
    cost_ceil = CI_COST_RATIO_CEIL if args.ci else COST_RATIO_CEIL
    text, metrics = _collect(n, frontier=not args.ci, cost_ceil=cost_ceil)

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import check_guards, write_result

    write_result("fleet", text, metrics)
    print(text)
    failures = check_guards(metrics)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
