"""Unified observability: metrics registry, span tracing, export surface.

The subsystem the rest of the reproduction reports into:

* :mod:`repro.telemetry.registry` — counters, gauges, log-bucketed
  histograms, labelled families, ``NullRegistry`` to switch it all off;
* :mod:`repro.telemetry.tracing` — explicit-context span trees (job
  lifecycles, portal requests);
* :mod:`repro.telemetry.events` — bounded structured event log;
* :mod:`repro.telemetry.export` — Prometheus text / JSON renderers;
* :mod:`repro.telemetry.instruments` — per-subsystem shims with
  backward-compatible ``stats()`` adapters.

See README "Observability" and the DESIGN.md telemetry note for the
naming convention and the overhead contract.
"""

from repro.telemetry.events import Event, EventLog
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_prometheus,
)
from repro.telemetry.instruments import DispatchTelemetry, PortalTelemetry
from repro.telemetry.registry import (
    Clock,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    WallClock,
    default_buckets,
    get_registry,
    set_registry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "DispatchTelemetry",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "PortalTelemetry",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Tracer",
    "WallClock",
    "default_buckets",
    "get_registry",
    "render_json",
    "render_prometheus",
    "set_registry",
]
