"""Span trees with explicit-context propagation.

A :class:`Span` is one timed operation; its children are sub-operations.
The portal records each request as one trace (``request`` with route,
status and the cache outcome as attributes).  Job traces are *not*
recorded anywhere: the distributor already stamps every lifecycle
timestamp on the job object, so
:meth:`DispatchTelemetry.job_trace` derives the span tree (root ``job``
with ``queue_wait`` and per-``attempt`` children — retries appear as
sibling attempt spans, mirroring the PR 3 attempt lineage) on demand,
at zero cost to the dispatch hot path.

Context is propagated *explicitly*: callers hold the span object and
pass it where it is needed.  There are deliberately no thread-locals —
the DES simulator runs thousands of interleaved virtual timelines on
one thread, so ambient context would attribute children to whichever
trace touched the thread last.

:class:`Tracer` is a bounded LRU of recent traces keyed by trace id
(job id, request id).  It exists for *debugging*, not accounting: the
cap keeps a long-running portal from accumulating one span tree per
job forever, and aggregate numbers belong in the metrics registry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed operation inside a trace.

    ``end is None`` means still open.  Attribute dict and child list are
    created lazily so short-lived spans on hot paths cost one small
    object.
    """

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Optional[dict] = None
        self.children: Optional[list["Span"]] = None

    def child(self, name: str, start: float, end: Optional[float] = None) -> "Span":
        """Open (or record a fully-formed) sub-span."""
        span = Span(name, start)
        span.end = end
        if self.children is None:
            self.children = []
        self.children.append(span)
        return span

    def set(self, **attrs) -> "Span":
        """Attach key/value annotations (cache outcome, node names, …)."""
        if self.attrs is None:
            self.attrs = attrs  # the kwargs dict is fresh — adopt it
        else:
            self.attrs.update(attrs)
        return self

    def finish(self, t: float) -> "Span":
        self.end = t
        return self

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-ready recursive view (the /debug/trace payload)."""
        out: dict = {"name": self.name, "start": self.start, "end": self.end}
        if self.end is not None:
            out["duration_s"] = self.end - self.start
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class Tracer:
    """Bounded keep-latest store of root spans, keyed by trace id."""

    def __init__(self, clock: Callable[[], float], capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._traces: "OrderedDict[str, Span]" = OrderedDict()

    def start(self, name: str, trace_id: str, t: Optional[float] = None) -> Span:
        """Open a new root span under ``trace_id``, evicting the oldest."""
        span = Span(name, self.clock() if t is None else t)
        traces = self._traces
        traces[trace_id] = span
        if len(traces) > self.capacity:
            traces.popitem(last=False)
        return span

    def get(self, trace_id: str) -> Optional[Span]:
        return self._traces.get(trace_id)

    def ids(self) -> list[str]:
        """Known trace ids, oldest first."""
        return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)
