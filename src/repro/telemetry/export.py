"""Renderers over registry snapshots: Prometheus text format and JSON.

Both operate on the plain-dict output of ``MetricsRegistry.snapshot()``
so they stay decoupled from the registry internals and can render a
merged snapshot assembled from several registries.
"""

from __future__ import annotations

import math

from repro.telemetry.registry import HistogramSnapshot

__all__ = ["render_prometheus", "render_json", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROM_TYPES = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, "g")


def render_prometheus(snapshot: dict) -> str:
    """Prometheus 0.0.4 text exposition of a registry snapshot."""
    lines: list[str] = []
    for name, fam in snapshot.items():
        lines.append(f"# HELP {name} {_escape_help(fam.get('help') or name)}")
        lines.append(f"# TYPE {name} {_PROM_TYPES[fam['kind']]}")
        labelnames = fam.get("labels") or ()
        for labelvalues, value in fam["series"]:
            if isinstance(value, HistogramSnapshot):
                for le, cumulative in value.cumulative():
                    le_text = "+Inf" if math.isinf(le) else format(le, "g")
                    le_label = 'le="%s"' % le_text
                    bucket_labels = _labels_text(labelnames, labelvalues, le_label)
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                suffix_labels = _labels_text(labelnames, labelvalues)
                lines.append(f"{name}_sum{suffix_labels} {_format_value(value.sum)}")
                lines.append(f"{name}_count{suffix_labels} {value.count}")
            else:
                lines.append(
                    f"{name}{_labels_text(labelnames, labelvalues)}"
                    f" {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict) -> dict:
    """JSON-ready mirror of the snapshot (histograms expanded)."""
    out: dict = {}
    for name, fam in snapshot.items():
        series = []
        labelnames = fam.get("labels") or ()
        for labelvalues, value in fam["series"]:
            entry: dict = {"labels": dict(zip(labelnames, labelvalues))}
            if isinstance(value, HistogramSnapshot):
                entry["histogram"] = value.as_dict()
            else:
                entry["value"] = value
            series.append(entry)
        out[name] = {"kind": fam["kind"], "help": fam.get("help", ""), "series": series}
    return out
