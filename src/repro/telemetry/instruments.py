"""Instrumentation shims: the bridge between subsystems and the registry.

Each shim owns the metric families for one subsystem and pre-binds the
hot-path children at construction time (so recording is one attribute
access + one method call, never a registry lookup).  The highest-rate
counters — the dispatch loop's per-round tallies — stay *plain ints*
that the registry reads through ``set_fn`` callbacks at scrape time, so
the scheduling hot path pays nothing for being exported.  The legacy
``stats()`` dict shapes survive as thin adapters, so PR 1–3 consumers
keep working unchanged.

Everything degrades to near-zero cost under a
:class:`~repro.telemetry.registry.NullRegistry`: the pre-bound children
are shared no-op singletons, and the span/event paths are gated on the
single ``on`` flag so no clock is read and no object allocated.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "AnalysisTelemetry",
    "DispatchTelemetry",
    "DurabilityTelemetry",
    "ExploreTelemetry",
    "FleetTelemetry",
    "PortalTelemetry",
]

#: ``JobDistributor.stats()["dispatch"]`` keys, in their legacy order.
DISPATCH_KEYS = (
    "requests",
    "coalesced",
    "rounds",
    "jobs_examined",
    "placements_tried",
    "jobs_started",
)

#: ``JobDistributor.stats()["faults"]`` keys, in their legacy order.
FAULT_KINDS = (
    "retries",
    "timeouts",
    "wall_timeouts",
    "reroutes",
    "node_failures",
    "jobs_orphaned",
    "nodes_suspected",
    "nodes_rejoined",
    "nodes_recovered",
    "nodes_joined",
    "nodes_removed",
)

_DISPATCH_HELP = {
    "requests": "dispatch() calls (submit/completion/fault)",
    "coalesced": "dispatch requests merged into a drain in flight",
    "rounds": "scheduling rounds actually run",
    "jobs_examined": "queue entries handed to the policy",
    "placements_tried": "candidate packings attempted",
    "jobs_started": "jobs handed to the execution backend",
}


class DispatchTelemetry:
    """Metrics + traces + events for one :class:`JobDistributor`.

    Owns a *per-distributor* registry by default so counters never bleed
    between instances (the dispatch benchmarks assert exact per-run
    deltas); pass a shared registry to aggregate several distributors.
    ``clock`` is the distributor's ``now_fn`` — under the DES backend
    every event is stamped with *virtual* time, and so are job traces:
    they are derived on demand (:meth:`job_trace`) from the timestamps
    the distributor already stamps on the job, never recorded inline.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        policy: str = "unknown",
    ) -> None:
        if registry is None:
            registry = MetricsRegistry(clock=clock)
        self.registry = registry
        #: single gate for the optional work (observations, timing reads).
        self.on = registry.enabled
        self.clock = clock if clock is not None else registry.clock
        self.events = EventLog(self.clock, capacity=1024)

        reg = registry
        #: the distributor's hot-path counters: plain ints it bumps with
        #: ``+=`` inside the scheduling loop.  The registry families read
        #: them through ``set_fn`` callbacks at scrape time (the respcache
        #: pattern), so counting costs the same with telemetry on or off.
        self.counters = dict.fromkeys(DISPATCH_KEYS, 0)
        self.faults = dict.fromkeys(FAULT_KINDS, 0)
        for key in DISPATCH_KEYS:
            reg.counter(f"repro_dispatch_{key}_total", _DISPATCH_HELP[key]).set_fn(
                lambda k=key: self.counters[k]
            )
        fault_family = reg.counter(
            "repro_faults_events_total",
            "fault-tolerance recovery actions by kind",
            labels=("kind",),
        )
        for kind in FAULT_KINDS:
            fault_family.labels(kind).set_fn(lambda k=kind: self.faults[k])
        self.h_queue_wait = reg.histogram(
            "repro_dispatch_queue_wait_seconds",
            "time from submit (or previous attempt end) to attempt start",
        )
        self.h_run = reg.histogram(
            "repro_dispatch_run_seconds", "per-attempt run time"
        )
        self.h_round = reg.histogram(
            "repro_dispatch_round_seconds",
            "wall time of one scheduling round",
            labels=("policy",),
        ).labels(policy)
        self.g_queued = reg.gauge(
            "repro_dispatch_jobs_queued", "jobs queued or dependency-held"
        )
        self.g_running = reg.gauge("repro_dispatch_jobs_running", "jobs running")

    # -- job lifecycle ------------------------------------------------------
    def job_started(self, job) -> None:
        """Attempt is launching: record its queue wait.

        The wait reference is the previous attempt's end for retries
        (the backoff + requeue interval), the submit time for attempt 1.
        All timestamps are reused from the job object — no clock reads.
        """
        if not self.on:
            return
        ref = job.attempts[-1].finished_at if job.attempts else job.submitted_at
        if ref is not None and job.started_at is not None:
            self.h_queue_wait.observe(job.started_at - ref)

    def attempt_finished(self, job, outcome: str, t: float) -> None:
        """Record the finished attempt's run time."""
        if not self.on:
            return
        if job.started_at is not None:
            self.h_run.observe(t - job.started_at)

    # -- traces --------------------------------------------------------------
    @staticmethod
    def job_trace(job) -> Span:
        """Materialise the job's span tree from its attempt lineage.

        Nothing is *recorded* on the dispatch path: the job object
        already carries every timestamp a trace needs (stamped with the
        distributor's ``now_fn``, so virtual seconds under the DES
        backend), and the PR 3 attempt lineage is exactly the sibling
        attempt-span structure.  The tree is built only when a debugging
        surface (``GET /debug/trace/<job_id>``) asks for it — which is
        also why it works even with a :class:`NullRegistry`: a pure
        derivation has no hot-path cost to switch off.
        """
        root = Span("job", job.submitted_at)
        root.set(name=job.request.name, owner=job.request.owner, state=job.state.value)
        prev_end = job.submitted_at
        for a in job.attempts:
            if a.started_at is not None:
                root.child("queue_wait", prev_end, a.started_at)
            attempt = root.child(f"attempt-{a.no}", a.started_at, a.finished_at)
            attempt.set(outcome=a.outcome, nodes=sorted(a.placement))
            if a.error:
                attempt.set(error=a.error)
            if a.finished_at is not None:
                prev_end = a.finished_at
        state = job.state.value
        if state == "running":
            root.child("queue_wait", prev_end, job.started_at)
            root.child(f"attempt-{job.attempt_epoch}", job.started_at).set(
                nodes=sorted(job.placement)
            )
        elif state in ("queued", "retrying"):
            root.child("queue_wait", prev_end)  # still waiting (or backing off)
        if job.finished_at is not None:
            root.finish(job.finished_at)
        return root

    # -- legacy stats() adapters -------------------------------------------
    def dispatch_counters(self) -> dict:
        """The PR 1 ``stats()["dispatch"]`` dict (a defensive copy)."""
        return dict(self.counters)

    def fault_counters(self) -> dict:
        """The PR 3 ``stats()["faults"]`` dict (a defensive copy)."""
        return dict(self.faults)


#: ``DurabilityStore.stats`` keys exported as counters, in export order.
DURABILITY_KEYS = (
    "records",
    "bytes",
    "fsyncs",
    "snapshots",
    "compactions",
    "segments_deleted",
    "torn_tail_dropped_bytes",
)

_DURABILITY_HELP = {
    "records": "journal records appended",
    "bytes": "journal bytes written (frames incl. headers)",
    "fsyncs": "fsync calls issued by the journal",
    "snapshots": "state snapshots written",
    "compactions": "log compactions performed",
    "segments_deleted": "journal segments removed by compaction",
    "torn_tail_dropped_bytes": "bytes dropped from torn journal tails",
}


class DurabilityTelemetry:
    """Metrics for the write-ahead journal and recovery path.

    The store's hot-path tallies stay plain ints read through ``set_fn``
    at scrape time (the dispatch-counter pattern); only the fsync
    latency histogram records inline — an fsync already costs a syscall,
    so one observation alongside it is noise.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.on = registry.enabled
        family = registry.counter(
            "repro_durability_journal_total",
            "write-ahead journal activity by kind",
            labels=("kind",),
        )
        self._children = {key: family.labels(key) for key in DURABILITY_KEYS}
        self.h_fsync = registry.histogram(
            "repro_durability_fsync_seconds", "journal fsync latency"
        )
        self.g_snapshot_lsn = registry.gauge(
            "repro_durability_snapshot_lsn", "LSN covered by the latest snapshot"
        )
        self.g_recovery_s = registry.gauge(
            "repro_durability_recovery_seconds", "duration of the last recovery"
        )
        self.c_recoveries = registry.counter(
            "repro_durability_recoveries_total", "recover_distributor boots"
        )

    def bind_store(self, store) -> None:
        """Export ``store.stats`` and hook its fsync latency observer."""
        for key in DURABILITY_KEYS:
            self._children[key].set_fn(lambda k=key, s=store: s.stats[k])
        if self.on:
            store.observe_fsync = self.h_fsync.observe

    def recovery_done(self, report) -> None:
        """Tally one finished :class:`RecoveryReport`."""
        self.c_recoveries.inc()
        self.g_recovery_s.set(report.duration_s)


#: ``ScalingManager`` action kinds exported as labeled counters.
FLEET_ACTIONS = ("scale_out", "scale_in", "reclaim", "rejected")


class FleetTelemetry:
    """Metrics for the elastic fleet manager.

    Node-seconds are the fleet's cost currency: every manager tick
    accrues ``(nodes alive in pool) × (seconds since last tick)`` into a
    per-pool counter, which is exactly what the bench's cost/latency
    frontier integrates.  The fleet-size and pending-scale gauges read
    manager state through ``set_fn`` at scrape time, so steady-state
    ticks do no registry work; the scaling-lag histogram records how
    long a scale-out decision took to become usable capacity (warm-up
    included).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.on = registry.enabled
        self.c_node_seconds = registry.counter(
            "repro_fleet_node_seconds_total",
            "node-seconds accrued by fleet pool (the cost axis)",
            labels=("pool",),
        )
        self.c_actions = registry.counter(
            "repro_fleet_actions_total",
            "scaling decisions executed, by kind",
            labels=("kind",),
        )
        self._actions = {kind: self.c_actions.labels(kind) for kind in FLEET_ACTIONS}
        self.g_size = registry.gauge(
            "repro_fleet_nodes", "nodes currently joined through the fleet manager"
        )
        self.g_pending = registry.gauge(
            "repro_fleet_pending_scale",
            "scale-outs decided but still warming up (not yet capacity)",
        )
        self.h_lag = registry.histogram(
            "repro_fleet_scaling_lag_seconds",
            "time from a scale-out decision to the node joining the grid",
        )

    def bind_manager(self, manager) -> None:
        """Point gauges and node-seconds at live manager state.

        The manager accrues node-seconds into plain floats on its tick
        path; the counter children read them through ``set_fn`` at
        scrape time (the dispatch-counter pattern).
        """
        self.g_size.set_fn(lambda: len(manager.managed_nodes()))
        self.g_pending.set_fn(lambda: len(manager.pending()))
        for pool in manager.pools:
            self.c_node_seconds.labels(pool.name).set_fn(
                lambda p=pool.name: manager.node_seconds[p]
            )

    def action(self, kind: str) -> None:
        self._actions[kind].inc()

    def joined(self, lag_s: float) -> None:
        if self.on:
            self.h_lag.observe(lag_s)


class AnalysisTelemetry:
    """Counters for the static concurrency analyzer's portal surfaces.

    ``surface`` distinguishes explicit ``POST /api/lint`` calls from the
    implicit pre-submit pass on ``POST /api/jobs``; findings are counted
    by severity so a dashboard can watch the error/warning mix students
    are producing over a semester.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.on = registry.enabled
        self.c_runs = registry.counter(
            "repro_analysis_runs_total",
            "static analysis runs by portal surface",
            labels=("surface",),
        )
        self.c_findings = registry.counter(
            "repro_analysis_findings_total",
            "static analysis findings by severity",
            labels=("severity",),
        )

    def report_done(self, surface: str, report) -> None:
        """Tally one finished :class:`~repro.analysis.model.AnalysisReport`."""
        self.c_runs.labels(surface).inc()
        for diag in report.diagnostics:
            self.c_findings.labels(str(diag.severity)).inc()


class ExploreTelemetry:
    """Counters for the systematic schedule explorer.

    ``repro_explore_states_total`` counts scheduler steps executed (the
    throughput the states/sec bench reports), ``..._pruned_total`` the
    sleep-set-blocked runs DPOR abandoned, and the reduction-ratio gauge
    holds the latest exploration's online estimate of "naive schedules
    per DPOR schedule" (a lower bound — it only counts branch points at
    states DPOR actually visited; ``bench_explorer.py`` measures the
    exact ratio by running both algorithms).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.on = registry.enabled
        self.c_schedules = registry.counter(
            "repro_explore_schedules_total",
            "schedules executed by the explorer, by algorithm",
            labels=("algorithm",),
        )
        self.c_states = registry.counter(
            "repro_explore_states_total",
            "scheduler steps executed during exploration",
        )
        self.c_pruned = registry.counter(
            "repro_explore_pruned_total",
            "runs abandoned by the DPOR sleep set as redundant",
        )
        self.g_ratio = registry.gauge(
            "repro_explore_reduction_ratio",
            "estimated naive/DPOR schedule ratio of the last exploration",
        )

    def record(self, result) -> None:
        """Tally one finished :class:`~repro.interleave.explorer.ExplorationResult`."""
        if not self.on:
            return
        self.c_schedules.labels(result.algorithm).inc(result.schedules_run)
        self.c_states.inc(result.states_explored)
        self.c_pruned.inc(result.pruned)
        if result.algorithm == "dpor" and result.schedules_run:
            self.g_ratio.set(
                (1 + result.naive_branch_points) / result.schedules_run
            )


class PortalTelemetry:
    """Metrics + request traces for one :class:`PortalApp`.

    Shares the distributor's registry by default so ``GET /metrics``
    serves one unified snapshot: dispatch, faults, health, cluster,
    cache and portal families side by side.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.on = registry.enabled
        self.clock = registry.clock
        self.tracer = Tracer(self.clock, capacity=256)
        self._req_ids = itertools.count(1)

        reg = registry
        conditional = reg.counter(
            "repro_portal_conditional_total",
            "conditional-GET outcomes against the response cache",
            labels=("result",),
        )
        #: legacy portal counter key → pre-bound child.
        self.c = {
            "requests": reg.counter(
                "repro_portal_requests_total", "WSGI requests received"
            ),
            "cache_hits": conditional.labels("hit"),
            "cache_misses": conditional.labels("miss"),
            "not_modified": conditional.labels("not_modified"),
            "bytes_streamed": reg.counter(
                "repro_portal_streamed_bytes_total", "bytes served via streaming"
            ),
            "sessions_swept": reg.counter(
                "repro_portal_sessions_swept_total", "expired sessions removed"
            ),
        }
        self.h_request = reg.histogram(
            "repro_portal_request_seconds",
            "request latency by route pattern",
            labels=("route",),
        )
        self.c_responses = reg.counter(
            "repro_portal_responses_total", "responses by status code", labels=("status",)
        )
        self.g_inflight = reg.gauge(
            "repro_portal_inflight_requests", "requests currently being handled"
        )

    def bind_router(self, router) -> None:
        """Export the router's tier counters without touching its hot path."""
        routed = self.registry.counter(
            "repro_portal_routed_total", "dispatches by router tier", labels=("tier",)
        )
        counters = router.counters
        routed.labels("static").set_fn(lambda: counters["routed_static"])
        routed.labels("dynamic").set_fn(lambda: counters["routed_dynamic"])

    def bind_sessions(self, sessions) -> None:
        self.registry.gauge(
            "repro_portal_active_sessions", "live portal sessions"
        ).set_fn(lambda: len(sessions))

    # -- request lifecycle --------------------------------------------------
    def request_started(self, request) -> Optional[Span]:
        """Open the request trace; returns the root span (None when off).

        The span is also stashed on ``request.tspan`` so downstream
        layers (the conditional-GET path) can annotate it without a
        tracer lookup.
        """
        self.g_inflight.inc()
        if not self.on:
            return None
        span = self.tracer.start("request", f"req-{next(self._req_ids)}")
        span.set(method=request.method, path=request.path)
        request.tspan = span
        return span

    def request_done(self, span: Optional[Span], route: str, status: int, dt: float) -> None:
        """Close the books on one request."""
        self.g_inflight.dec()
        self.h_request.labels(route).observe(dt)
        self.c_responses.labels(status).inc()
        if span is not None:
            span.finish(span.start + dt).set(route=route, status=status)

    def portal_counters(self) -> dict:
        """The PR 2 ``stats()["portal"]`` counter block."""
        return {key: int(child.value) for key, child in self.c.items()}
