"""Process-wide metrics registry: counters, gauges, log-bucketed histograms.

The registry is the single schema behind every ``stats()`` dict in the
reproduction: the dispatch engine, the portal, the response cache and
the health monitor all register *metric families* here and the
Prometheus/JSON exporters (:mod:`repro.telemetry.export`) render one
snapshot of everything.

Design constraints, in order:

1. **Hot-path cost.**  ``Counter.inc`` / ``Gauge.set`` are a single
   attribute add/store; ``Histogram.observe`` is one :func:`bisect`
   probe over a fixed tuple of log-spaced bucket bounds plus three adds
   — O(1), allocation-free.  Instrumented code paths must stay within
   5% of their un-instrumented throughput (``bench_telemetry.py``
   guards this), so there is no per-sample locking: CPython's GIL makes
   the individual ``+=`` effectively atomic for our purposes, and
   metric reads are advisory snapshots, not ledgers.  Registration
   (creating families/children) *is* locked — it happens once, off the
   hot path.
2. **Null implementation.**  :class:`NullRegistry` satisfies the same
   interface with shared no-op singletons and ``enabled = False`` so
   call sites can skip clock reads and span allocation entirely.
3. **Pluggable clock.**  A registry carries a zero-arg ``clock``
   callable used by tracers/event logs built on top of it: DES runs
   pass ``lambda: sim.now`` and stamp *virtual* time; live runs keep
   the wall clock.  The metrics themselves are clock-free — callers
   observe durations they measured with whatever clock owns the code
   path.
4. **Mergeable snapshots.**  ``Histogram`` snapshots carry their bucket
   bounds and can be merged across registries (e.g. per-distributor
   registries aggregated for a fleet view) as long as the bounds agree.

Naming convention (enforced socially, documented in DESIGN.md):
``repro_<subsystem>_<name>``, with ``_total`` for counters and
``_seconds`` for time histograms.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "Clock",
    "WallClock",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "default_buckets",
    "get_registry",
    "set_registry",
]


# -- clocks -----------------------------------------------------------------
class Clock:
    """Zero-arg time source. Subclass or wrap any callable."""

    def __call__(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time (the live-portal default)."""

    def __call__(self) -> float:
        return time.monotonic()


def _resolve_clock(clock) -> Callable[[], float]:
    if clock is None:
        return time.monotonic
    return clock


# -- histogram buckets -------------------------------------------------------
def default_buckets() -> tuple[float, ...]:
    """Fixed log-spaced upper bounds: 1µs → 1000s, half-decade steps.

    19 bounds + an implicit ``+Inf`` overflow bucket.  Wide enough for
    microsecond cache probes and hour-long virtual-time queue waits in
    the same family.
    """
    return tuple(10.0 ** (k / 2.0) for k in range(-12, 7))


_DEFAULT_BUCKETS = default_buckets()


class HistogramSnapshot:
    """Immutable histogram state: bounds, per-bucket counts, sum, count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        bounds: tuple[float, ...],
        counts: tuple[int, ...],
        total: float,
        count: int,
    ) -> None:
        self.bounds = bounds
        self.counts = counts  # len(bounds) + 1; last bucket is +Inf
        self.sum = total
        self.count = count

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots of the same bucket layout."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        return HistogramSnapshot(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.sum + other.sum,
            self.count + other.count,
        )

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= target:
                return bound
        return math.inf

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                {"le": ("+Inf" if math.isinf(le) else le), "cumulative": c}
                for le, c in self.cumulative()
            ],
        }


# -- children ----------------------------------------------------------------
class Counter:
    """Monotone counter child.  ``inc`` is one unlocked add."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Derive the value from ``fn`` at read time (adapter pattern).

        Lets an existing cheap counter (a plain int on some object) be
        *exported* through the registry without double-counting on its
        hot path: the registry child reads it only when snapshotted.
        """
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Gauge:
    """Point-in-time value child; supports callback-derived values."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value: float = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Log-bucketed histogram child: O(1) record, mergeable snapshot."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # bisect_left(bounds, v) = first bound >= v, i.e. the smallest
        # le-bucket containing v; len(bounds) = the +Inf overflow bucket.
        self._counts[bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def value(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            self._bounds, tuple(self._counts), self._sum, self._count
        )

    # keep a uniform child surface for the exporters
    snapshot = value


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labelled children.

    ``labels(*values)`` resolves (and caches) the child for one label
    combination; with no label names the family has a single default
    child and the family itself proxies ``inc``/``set``/``observe`` to
    it, so zero-label call sites stay one attribute access away.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_children", "_lock", "_buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Optional[tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, *values) -> object:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values "
                f"{self.labelnames}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # -- zero-label conveniences ------------------------------------------
    def inc(self, amount: float = 1) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def dec(self, amount: float = 1) -> None:
        self._children[()].dec(amount)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._children[()].set_fn(fn)

    @property
    def value(self):
        return self._children[()].value

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """(label values, current value) per child, insertion-ordered."""
        with self._lock:
            items = list(self._children.items())
        return [(k, child.value) for k, child in items]


class MetricsRegistry:
    """Named metric families + a pluggable clock.  See module docstring."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = _resolve_clock(clock)
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Iterable[str],
        buckets: Optional[tuple[float, ...]] = None,
    ) -> MetricFamily:
        labelnames = tuple(labels)
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind or fam.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {fam.kind}"
                        f"{fam.labelnames}, not {kind}{labelnames}"
                    )
                return fam
            fam = MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a monotone counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Optional[tuple[float, ...]] = None,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed bounds."""
        return self._family(name, "histogram", help, labels, buckets)

    # -- reads -------------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """One coherent-enough view of every family.

        ``{name: {"kind", "help", "labels", "series": [(labelvalues,
        value-or-HistogramSnapshot), ...]}}`` — the input both exporters
        and the ``stats()`` adapters render from.
        """
        out: dict[str, dict] = {}
        for fam in self.families():
            out[fam.name] = {
                "kind": fam.kind,
                "help": fam.help,
                "labels": fam.labelnames,
                "series": fam.series(),
            }
        return out


# -- the null implementation --------------------------------------------------
class _NullMetric:
    """Shared do-nothing child *and* family: every operation is a no-op."""

    __slots__ = ()

    def labels(self, *values):
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def set_fn(self, fn) -> None:
        pass

    @property
    def value(self) -> float:
        return 0

    def series(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Telemetry off: same interface, ``enabled = False``, zero state.

    Instrumentation shims check ``registry.enabled`` once and skip clock
    reads/span allocation; stray ``inc``/``observe`` calls that slip
    through hit the shared no-op singleton.  The overhead contract
    (README "Observability") is guarded by ``bench_telemetry.py``.
    """

    enabled = False

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = _resolve_clock(clock)

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", labels: Iterable[str] = (), buckets=None):
        return _NULL_METRIC

    def families(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}


# -- process-wide default ------------------------------------------------------
_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created lazily, wall clock).

    Components with their own configuration surface (the distributor,
    the portal) default to *per-instance* registries for isolation; the
    global one serves config-less call sites such as the minimpi
    collectives.  Install a :class:`NullRegistry` via
    :func:`set_registry` to switch instrumentation off globally.
    """
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry


def set_registry(registry) -> None:
    """Replace the process-wide registry (pass a NullRegistry to disable)."""
    global _default_registry
    _default_registry = registry
