"""Bounded structured event log.

Supersedes ad-hoc print/log sprinkling for operational events (node
failed, job rerouted, cache invalidated): a fixed-size ring of
``(t, severity, name, attrs)`` records, cheap to emit, snapshot-able
for the portal's debug endpoints.  Timestamps come from the owning
registry's clock, so DES runs log virtual time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

__all__ = ["Event", "EventLog", "SEVERITIES"]

SEVERITIES = ("debug", "info", "warning", "error")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class Event:
    """One log record."""

    __slots__ = ("t", "severity", "name", "attrs")

    def __init__(self, t: float, severity: str, name: str, attrs: dict) -> None:
        self.t = t
        self.severity = severity
        self.name = name
        self.attrs = attrs

    def as_dict(self) -> dict:
        out = {"t": self.t, "severity": self.severity, "name": self.name}
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class EventLog:
    """Ring buffer of events; old entries fall off the back, O(1) emit."""

    def __init__(self, clock: Callable[[], float], capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)

    def emit(self, severity: str, name: str, **attrs) -> None:
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}, expected one of {SEVERITIES}")
        self._events.append(Event(self.clock(), severity, name, attrs))

    def snapshot(
        self, min_severity: Optional[str] = None, limit: Optional[int] = None
    ) -> list[Event]:
        """Newest-last view, optionally filtered and tail-limited."""
        events = list(self._events)
        if min_severity is not None:
            floor = _SEVERITY_RANK[min_severity]
            events = [e for e in events if _SEVERITY_RANK[e.severity] >= floor]
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    def __len__(self) -> int:
        return len(self._events)
