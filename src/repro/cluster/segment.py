"""A cluster segment: one master node fronting its slave nodes."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro._errors import ResourceError
from repro.cluster.node import Node, NodeState
from repro.cluster.spec import NodeSpec, SegmentSpec

__all__ = ["Segment"]


class Segment:
    """Sixteen (by default) slaves behind a segment master.

    The master node exists in the inventory (it runs the segment's
    services) but is never handed out for job execution — jobs run on
    slaves only, as on the real machine.

    Free-core/free-memory totals are maintained incrementally: each slave
    notifies the segment on allocate/free/state changes, and the segment
    adjusts its cached totals by the delta instead of rescanning slaves.
    The segment forwards the event to the grid (when attached) so the
    grid-level index and most-free segment ordering stay current too.
    """

    def __init__(self, spec: SegmentSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.master = Node(f"{spec.name}-master", spec.master_spec, segment=spec.name)
        self.slaves = [
            Node(f"{spec.name}-n{i:02d}", spec.slave_spec, segment=spec.name)
            for i in range(spec.n_slaves)
        ]
        #: spec-level, state-independent: does any slave carry a GPU?
        #: (recomputed when fleet membership changes)
        self.has_gpu = any(n.spec.has_gpu for n in self.slaves)
        self._cores_total = sum(n.spec.cores for n in self.slaves)
        # Incremental capacity index over the slaves.
        self._node_free: dict[str, tuple[int, int]] = {}
        self._node_state: dict[str, NodeState] = {}
        self._type_counts: dict[str, int] = {}
        self._cores_free = 0
        self._memory_free = 0
        #: spec cores on slaves currently UP — the health layer's measure
        #: of surviving capacity (independent of allocation level).
        self._cores_up = self._cores_total
        for n in self.slaves:
            self._node_free[n.name] = (n.cores_free, n.memory_free_mb)
            self._node_state[n.name] = n.state
            self._type_counts[n.spec.node_type] = (
                self._type_counts.get(n.spec.node_type, 0) + 1
            )
            self._cores_free += n.cores_free
            self._memory_free += n.memory_free_mb
            n._observer = self._on_slave_change
        #: monotone counter naming dynamically-joined slaves (never reused,
        #: so a removed node's name can't be resurrected by a later join)
        self._next_idx = spec.n_slaves
        self._up_cache: Optional[list[Node]] = None
        #: capacity-change callback, set by the owning grid (if any);
        #: called as ``observer(segment, state_changed)``.
        self._observer: Optional[Callable[["Segment", bool], None]] = None

    def _on_slave_change(self, node: Node) -> None:
        old_c, old_m = self._node_free[node.name]
        new_c, new_m = node.cores_free, node.memory_free_mb
        self._node_free[node.name] = (new_c, new_m)
        self._cores_free += new_c - old_c
        self._memory_free += new_m - old_m
        state_changed = self._node_state[node.name] is not node.state
        if state_changed:
            self._node_state[node.name] = node.state
            self._up_cache = None
            # State flips are rare; an O(slaves) recount keeps the
            # up-capacity index simple and exact.
            self._cores_up = sum(
                n.spec.cores for n in self.slaves if n.state is NodeState.UP
            )
        if self._observer is not None:
            self._observer(self, state_changed)

    # -- fleet membership --------------------------------------------------
    def add_slave(self, spec: NodeSpec, name: Optional[str] = None) -> Node:
        """Join a new slave at runtime.

        The node enters the incremental capacity index and starts
        observing like any construction-time slave; the join is delivered
        to the grid as an ordinary capacity event with
        ``state_changed=True`` so every cached ordering invalidates.
        """
        if name is None:
            name = f"{self.name}-n{self._next_idx:02d}"
            self._next_idx += 1
        if name in self._node_free:
            raise ResourceError(f"node {name!r} already exists in segment {self.name}")
        node = Node(name, spec, segment=self.name)
        self.slaves.append(node)
        self._node_free[name] = (node.cores_free, node.memory_free_mb)
        self._node_state[name] = node.state
        self._type_counts[spec.node_type] = self._type_counts.get(spec.node_type, 0) + 1
        self._cores_total += spec.cores
        self._cores_free += node.cores_free
        self._memory_free += node.memory_free_mb
        self._cores_up += spec.cores
        if spec.has_gpu:
            self.has_gpu = True
        node._observer = self._on_slave_change
        self._up_cache = None
        if self._observer is not None:
            self._observer(self, True)
        return node

    def remove_slave(self, name: str) -> Node:
        """Retire a slave from the inventory entirely.

        The caller (the distributor's drain/remove path) is responsible
        for requeueing any work that ran here — this method only drops
        the node from the capacity index and stops observing it.
        """
        for i, node in enumerate(self.slaves):
            if node.name == name:
                del self.slaves[i]
                break
        else:
            raise ResourceError(f"unknown node {name!r} in segment {self.name}")
        old_c, old_m = self._node_free.pop(name)
        self._node_state.pop(name)
        self._type_counts[node.spec.node_type] -= 1
        if not self._type_counts[node.spec.node_type]:
            del self._type_counts[node.spec.node_type]
        self._cores_total -= node.spec.cores
        self._cores_free -= old_c
        self._memory_free -= old_m
        if node.state is NodeState.UP:
            self._cores_up -= node.spec.cores
        if node.spec.has_gpu:
            self.has_gpu = any(n.spec.has_gpu for n in self.slaves)
        node._observer = None
        self._up_cache = None
        if self._observer is not None:
            self._observer(self, True)
        return node

    def node_types(self) -> dict[str, int]:
        """``{node_type: slave count}`` over the current inventory."""
        return dict(self._type_counts)

    def has_type(self, node_type: str) -> bool:
        """Does any slave (regardless of state) carry this capability tag?"""
        return node_type in self._type_counts

    def __iter__(self) -> Iterator[Node]:
        return iter(self.slaves)

    def __len__(self) -> int:
        return len(self.slaves)

    @property
    def cores_free(self) -> int:
        return self._cores_free

    @property
    def memory_free_mb(self) -> int:
        return self._memory_free

    @property
    def cores_total(self) -> int:
        return self._cores_total

    @property
    def cores_up(self) -> int:
        """Spec cores on slaves currently UP (maintained incrementally)."""
        return self._cores_up

    def state_counts(self) -> dict[str, int]:
        """``{state: slave count}`` — what the status page aggregates."""
        counts: dict[str, int] = {}
        for state in self._node_state.values():
            counts[state.value] = counts.get(state.value, 0) + 1
        return counts

    @property
    def load(self) -> float:
        """Fraction of the segment's slave cores in use."""
        total = self._cores_total
        return (total - self._cores_free) / total if total else 0.0

    def up_slaves(self) -> list[Node]:
        """Slaves currently accepting work (cached until a state change)."""
        if self._up_cache is None:
            self._up_cache = [n for n in self.slaves if n.state is NodeState.UP]
        return self._up_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.name} {len(self.slaves)} slaves, {self.cores_free} cores free>"
