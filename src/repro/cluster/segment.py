"""A cluster segment: one master node fronting its slave nodes."""

from __future__ import annotations

from typing import Iterator

from repro.cluster.node import Node
from repro.cluster.spec import SegmentSpec

__all__ = ["Segment"]


class Segment:
    """Sixteen (by default) slaves behind a segment master.

    The master node exists in the inventory (it runs the segment's
    services) but is never handed out for job execution — jobs run on
    slaves only, as on the real machine.
    """

    def __init__(self, spec: SegmentSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.master = Node(f"{spec.name}-master", spec.master_spec, segment=spec.name)
        self.slaves = [
            Node(f"{spec.name}-n{i:02d}", spec.slave_spec, segment=spec.name)
            for i in range(spec.n_slaves)
        ]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.slaves)

    def __len__(self) -> int:
        return len(self.slaves)

    @property
    def cores_free(self) -> int:
        return sum(n.cores_free for n in self.slaves)

    @property
    def cores_total(self) -> int:
        return sum(n.spec.cores for n in self.slaves)

    @property
    def load(self) -> float:
        """Fraction of the segment's slave cores in use."""
        total = self.cores_total
        return (total - self.cores_free) / total if total else 0.0

    def up_slaves(self) -> list[Node]:
        """Slaves currently accepting work."""
        from repro.cluster.node import NodeState

        return [n for n in self.slaves if n.state is NodeState.UP]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.name} {len(self.slaves)} slaves, {self.cores_free} cores free>"
