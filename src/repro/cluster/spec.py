"""Hardware inventory descriptions.

The paper's cluster: "four segments, each having sixteen slave nodes and
a master node. A master server node connects all the clusters together",
with "duo-core and quad-core machines and a GPU machine".
:meth:`ClusterSpec.uhd_default` reproduces that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeSpec", "SegmentSpec", "ClusterSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Capabilities of one machine.

    ``node_type`` is a free-form capability tag (``"standard"``, ``"gpu"``,
    ``"bigmem"``, ...) that jobs can request via
    :attr:`~repro.cluster.job.JobRequest.node_type`; the scheduler only
    places such jobs on nodes whose tag matches exactly.
    """

    cores: int = 2
    memory_mb: int = 2048
    has_gpu: bool = False
    cpu_ghz: float = 2.4
    node_type: str = "standard"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"node must have >= 1 core, got {self.cores}")
        if self.memory_mb < 1:
            raise ValueError(f"node must have >= 1 MB memory, got {self.memory_mb}")
        if self.cpu_ghz <= 0:
            raise ValueError(f"cpu_ghz must be positive, got {self.cpu_ghz}")
        if not self.node_type:
            raise ValueError("node_type must be a non-empty tag")


@dataclass(frozen=True)
class SegmentSpec:
    """One cluster segment: a master fronting identical slaves."""

    name: str
    n_slaves: int = 16
    slave_spec: NodeSpec = field(default_factory=NodeSpec)
    master_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=4, memory_mb=8192))

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ValueError(f"segment needs >= 1 slave, got {self.n_slaves}")

    @property
    def total_slave_cores(self) -> int:
        return self.n_slaves * self.slave_spec.cores


@dataclass(frozen=True)
class ClusterSpec:
    """The whole grid: a master server over several segments."""

    segments: tuple[SegmentSpec, ...]
    master_server_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=8, memory_mb=16384))

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a cluster needs at least one segment")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise ValueError(f"segment names must be unique, got {names}")

    @property
    def total_slave_cores(self) -> int:
        return sum(s.total_slave_cores for s in self.segments)

    @property
    def total_slaves(self) -> int:
        return sum(s.n_slaves for s in self.segments)

    @classmethod
    def uhd_default(cls) -> "ClusterSpec":
        """The paper's machine: 4 segments × 16 slaves.

        Segments were "composed of different types of computers acquired
        in different times": two duo-core segments, one quad-core
        segment, and one quad-core segment whose last node carries a GPU.
        """
        duo = NodeSpec(cores=2, memory_mb=2048, cpu_ghz=2.0)
        quad = NodeSpec(cores=4, memory_mb=4096, cpu_ghz=2.6)
        return cls(
            segments=(
                SegmentSpec("seg-a", 16, duo),
                SegmentSpec("seg-b", 16, duo),
                SegmentSpec("seg-c", 16, quad),
                SegmentSpec("seg-d", 16, NodeSpec(cores=4, memory_mb=4096, has_gpu=True, cpu_ghz=2.6, node_type="gpu")),
            )
        )

    @classmethod
    def small(cls, segments: int = 1, slaves: int = 4, cores: int = 2) -> "ClusterSpec":
        """A small cluster for tests and quick demos."""
        return cls(
            segments=tuple(
                SegmentSpec(f"seg-{i}", slaves, NodeSpec(cores=cores))
                for i in range(segments)
            )
        )
