"""Hardware inventory descriptions.

The paper's cluster: "four segments, each having sixteen slave nodes and
a master node. A master server node connects all the clusters together",
with "duo-core and quad-core machines and a GPU machine".
:meth:`ClusterSpec.uhd_default` reproduces that shape.

Validation is *collect-all*: the ``*_problems`` checkers return every
violation as a list of messages, and the dataclass ``__post_init__``
hooks raise one :class:`ValueError` carrying the whole list — a spec
with three bad fields reports three problems, not just the first.  The
same checkers back :mod:`repro.spec`'s document validator, so the
dataclasses and the declarative spec can never disagree about what a
legal node or segment is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "NodeSpec",
    "SegmentSpec",
    "ClusterSpec",
    "node_spec_problems",
    "segment_spec_problems",
    "cluster_spec_problems",
]


def node_spec_problems(
    cores: int, memory_mb: int, cpu_ghz: float, node_type: str
) -> list[str]:
    """Every violation in one node description (empty list = valid)."""
    problems = []
    if cores < 1:
        problems.append(f"node must have >= 1 core, got {cores}")
    if memory_mb < 1:
        problems.append(f"node must have >= 1 MB memory, got {memory_mb}")
    if cpu_ghz <= 0:
        problems.append(f"cpu_ghz must be positive, got {cpu_ghz}")
    if not node_type:
        problems.append("node_type must be a non-empty tag")
    return problems


def segment_spec_problems(n_slaves: int) -> list[str]:
    """Every violation in one segment description (empty list = valid)."""
    problems = []
    if n_slaves < 1:
        problems.append(f"segment needs >= 1 slave, got {n_slaves}")
    return problems


def cluster_spec_problems(segment_names: list[str]) -> list[str]:
    """Every cluster-level violation (empty list = valid)."""
    problems = []
    if not segment_names:
        problems.append("a cluster needs at least one segment")
    if len(set(segment_names)) != len(segment_names):
        problems.append(f"segment names must be unique, got {segment_names}")
    return problems


def _raise_all(problems: list[str]) -> None:
    if problems:
        raise ValueError("; ".join(problems))


@dataclass(frozen=True)
class NodeSpec:
    """Capabilities of one machine.

    ``node_type`` is a free-form capability tag (``"standard"``, ``"gpu"``,
    ``"bigmem"``, ...) that jobs can request via
    :attr:`~repro.cluster.job.JobRequest.node_type`; the scheduler only
    places such jobs on nodes whose tag matches exactly.
    """

    cores: int = 2
    memory_mb: int = 2048
    has_gpu: bool = False
    cpu_ghz: float = 2.4
    node_type: str = "standard"

    def __post_init__(self) -> None:
        _raise_all(
            node_spec_problems(self.cores, self.memory_mb, self.cpu_ghz, self.node_type)
        )


@dataclass(frozen=True)
class SegmentSpec:
    """One cluster segment: a master fronting identical slaves."""

    name: str
    n_slaves: int = 16
    slave_spec: NodeSpec = field(default_factory=NodeSpec)
    master_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=4, memory_mb=8192))

    def __post_init__(self) -> None:
        _raise_all(segment_spec_problems(self.n_slaves))

    @property
    def total_slave_cores(self) -> int:
        return self.n_slaves * self.slave_spec.cores


@dataclass(frozen=True)
class ClusterSpec:
    """The whole grid: a master server over several segments."""

    segments: tuple[SegmentSpec, ...]
    master_server_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=8, memory_mb=16384))

    def __post_init__(self) -> None:
        _raise_all(cluster_spec_problems([s.name for s in self.segments]))

    @property
    def total_slave_cores(self) -> int:
        return sum(s.total_slave_cores for s in self.segments)

    @property
    def total_slaves(self) -> int:
        return sum(s.n_slaves for s in self.segments)

    @classmethod
    def uhd_default(cls) -> "ClusterSpec":
        """The paper's machine: 4 segments × 16 slaves.

        Segments were "composed of different types of computers acquired
        in different times": two duo-core segments, one quad-core
        segment, and one quad-core segment whose last node carries a GPU.
        """
        duo = NodeSpec(cores=2, memory_mb=2048, cpu_ghz=2.0)
        quad = NodeSpec(cores=4, memory_mb=4096, cpu_ghz=2.6)
        return cls(
            segments=(
                SegmentSpec("seg-a", 16, duo),
                SegmentSpec("seg-b", 16, duo),
                SegmentSpec("seg-c", 16, quad),
                SegmentSpec("seg-d", 16, NodeSpec(cores=4, memory_mb=4096, has_gpu=True, cpu_ghz=2.6, node_type="gpu")),
            )
        )

    @classmethod
    def small(cls, segments: int = 1, slaves: int = 4, cores: int = 2) -> "ClusterSpec":
        """A small cluster for tests and quick demos."""
        return cls(
            segments=tuple(
                SegmentSpec(f"seg-{i}", slaves, NodeSpec(cores=cores))
                for i in range(segments)
            )
        )
