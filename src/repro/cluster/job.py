"""Job model: what users submit and how it moves through its lifecycle.

The portal's Section-II contract: a job is *sequential* (one task on one
node), *parallel* (``n_tasks`` ranks spread over nodes) or *interactive*
(sequential + an open stdin channel).  Lifecycle::

    PENDING -> QUEUED -> RUNNING -> {COMPLETED, FAILED, TIMEOUT}
         \\-> CANCELLED (from PENDING/QUEUED/RUNNING/RETRYING)
                  QUEUED -> TIMEOUT (wall-clock budget expired in queue)
                  RUNNING -> RETRYING -> QUEUED (fault-tolerant requeue)

A failed or timed-out *attempt* whose :class:`RetryPolicy` still has
budget moves the job RUNNING → RETRYING → QUEUED instead of sealing it;
each finished attempt is recorded as a :class:`JobAttempt` so the portal
can show the full lineage.  FAILED/TIMEOUT/COMPLETED/CANCELLED remain
strictly terminal.

Transitions are validated; illegal moves raise :class:`JobError` — an
invariant the property tests exercise heavily.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro._errors import JobError
from repro.cluster.streams import InteractiveChannel, StreamCapture

__all__ = ["JobKind", "JobState", "JobRequest", "Job", "JobAttempt", "RetryPolicy"]


class _JobSeq:
    """Monotone job-id sequence, advanceable past restored ids.

    Recovery restores jobs whose ``seq`` was assigned by a previous
    process; bumping the counter past them guarantees a fresh submission
    can never mint a colliding ``job-%06d`` id.
    """

    def __init__(self) -> None:
        self._n = 0
        self._lock = threading.Lock()

    def __next__(self) -> int:
        with self._lock:
            self._n += 1
            return self._n

    def advance_past(self, seq: int) -> None:
        with self._lock:
            self._n = max(self._n, int(seq))


_job_counter = _JobSeq()


class JobKind(enum.Enum):
    """Execution shape of a job."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    INTERACTIVE = "interactive"


class JobState(enum.Enum):
    """Lifecycle states."""

    PENDING = "pending"      # created, not yet accepted by the distributor
    QUEUED = "queued"        # waiting for resources
    RUNNING = "running"
    RETRYING = "retrying"    # attempt failed; being requeued under a RetryPolicy
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"


_TERMINAL = {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}

_ALLOWED: dict[JobState, set[JobState]] = {
    JobState.PENDING: {JobState.QUEUED, JobState.CANCELLED},
    # QUEUED -> TIMEOUT: the wall-clock budget can expire before a start.
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED, JobState.TIMEOUT},
    JobState.RUNNING: {
        JobState.COMPLETED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.TIMEOUT,
        JobState.RETRYING,
    },
    # RETRYING -> FAILED/TIMEOUT covers a requeue that can no longer
    # succeed (e.g. the retry budget raced with a wall-clock deadline).
    JobState.RETRYING: {
        JobState.QUEUED,
        JobState.CANCELLED,
        JobState.FAILED,
        JobState.TIMEOUT,
    },
}


_RETRY_CLASSES = frozenset({"failed", "timeout", "node_lost"})


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed attempts are retried.

    ``max_attempts`` counts *every* attempt including the first, so
    ``max_attempts=3`` allows two retries.  Backoff between attempts is
    exponential with multiplicative jitter drawn from the distributor's
    seeded RNG — deterministic under a fixed seed, which the reliability
    battery asserts.

    ``retry_on`` selects which failure classes are retried:

    * ``"failed"``   — the attempt exited non-zero / raised;
    * ``"timeout"``  — the attempt exceeded ``timeout_s``;
    * ``"node_lost"`` — the node running the attempt died (the job is
      requeued and rerouted to surviving nodes).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.1
    retry_on: frozenset[str] = _RETRY_CLASSES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise JobError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise JobError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise JobError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0 <= self.jitter < 1:
            raise JobError(f"jitter must be in [0, 1), got {self.jitter}")
        unknown = set(self.retry_on) - _RETRY_CLASSES
        if unknown:
            raise JobError(f"unknown retry classes {sorted(unknown)}; pick from {sorted(_RETRY_CLASSES)}")
        # Accept any iterable for convenience but store a frozenset.
        if not isinstance(self.retry_on, frozenset):
            object.__setattr__(self, "retry_on", frozenset(self.retry_on))

    def should_retry(self, failure_class: str, attempts_used: int) -> bool:
        """Is another attempt allowed after ``attempts_used`` attempts?"""
        return failure_class in self.retry_on and attempts_used < self.max_attempts

    def delay_for(self, attempt_no: int, rng=None) -> float:
        """Backoff before the retry that follows attempt ``attempt_no`` (1-based).

        ``rng`` (a ``numpy`` Generator) supplies the jitter draw; pass the
        same seeded generator to reproduce the exact schedule.
        """
        delay = min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor ** max(0, attempt_no - 1))
        if rng is not None and self.jitter and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


@dataclass(frozen=True)
class JobAttempt:
    """One finished execution attempt — the unit of the job's lineage."""

    no: int
    placement: dict[str, int]
    started_at: Optional[float]
    finished_at: Optional[float]
    outcome: str            # completed | failed | timeout | node_lost | cancelled
    error: Optional[str] = None
    exit_code: Optional[int] = None
    backoff_s: Optional[float] = None  # delay before the *next* attempt, if retried

    def as_dict(self) -> dict:
        return {
            "no": self.no,
            "placement": dict(self.placement),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "outcome": self.outcome,
            "error": self.error,
            "exit_code": self.exit_code,
            "backoff_s": self.backoff_s,
        }


@dataclass
class JobRequest:
    """Everything a user specifies when submitting.

    Exactly one of ``argv`` (command line for the subprocess backend),
    ``callable`` (Python function) or ``sim_duration`` (virtual seconds
    for the DES backend) describes *what* to run; the rest describes the
    resource shape and policy knobs.
    """

    name: str = "job"
    owner: str = ""
    kind: JobKind = JobKind.SEQUENTIAL
    argv: Optional[list[str]] = None
    callable: Optional[Callable[..., Any]] = None
    sim_duration: Optional[float] = None
    n_tasks: int = 1
    cores_per_task: int = 1
    memory_mb_per_task: int = 0
    need_gpu: bool = False
    node_type: Optional[str] = None
    """Pin placement to nodes whose :attr:`NodeSpec.node_type` tag matches
    exactly (``"gpu"``, ``"bigmem"``, ...); ``None`` accepts any node."""
    priority: int = 0
    timeout_s: Optional[float] = None
    wallclock_timeout_s: Optional[float] = None
    """Total budget from submission — queue wait, retries and all; when it
    expires the job times out wherever it is (even still QUEUED)."""
    retry: Optional[RetryPolicy] = None
    """Per-job retry policy; ``None`` falls back to the distributor's
    default (which is itself ``None`` — no retries — unless configured)."""
    est_runtime_s: Optional[float] = None
    """User-supplied runtime estimate; enables EASY backfilling."""
    after: tuple[str, ...] = ()
    """Job ids that must reach a terminal state before this job may start.

    ``after_ok`` additionally requires them to have COMPLETED; a failed
    dependency then cancels this job instead of running it.
    """
    after_ok: bool = False
    stdin_data: str = ""
    env: dict[str, str] = field(default_factory=dict)
    workdir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.cores_per_task < 1:
            raise JobError(
                f"job shape must be >= 1 task x >= 1 core, got "
                f"{self.n_tasks} x {self.cores_per_task}"
            )
        if self.memory_mb_per_task < 0:
            raise JobError("memory_mb_per_task must be >= 0")
        specified = [x is not None for x in (self.argv, self.callable, self.sim_duration)]
        if sum(specified) != 1:
            raise JobError(
                "exactly one of argv / callable / sim_duration must be given "
                f"(got {sum(specified)})"
            )
        for label, value in (("timeout_s", self.timeout_s),
                             ("wallclock_timeout_s", self.wallclock_timeout_s)):
            if value is not None and value <= 0:
                raise JobError(f"{label} must be positive, got {value}")
        if self.node_type is not None and not self.node_type:
            raise JobError("node_type must be None or a non-empty tag")
        if self.kind is JobKind.SEQUENTIAL and self.n_tasks != 1:
            raise JobError("sequential jobs have exactly one task; use kind=PARALLEL")
        if self.kind is JobKind.INTERACTIVE and self.n_tasks != 1:
            raise JobError("interactive jobs have exactly one task")

    @property
    def total_cores(self) -> int:
        return self.n_tasks * self.cores_per_task

    # -- wire codec (repro.bus RPC boundary) -------------------------------
    def to_wire(self) -> dict:
        """JSON-safe form for the front-end → back-end RPC boundary.

        ``callable`` jobs cannot cross the bus — a live function has no
        wire form; the front-end tier only submits ``argv`` and
        ``sim_duration`` work.
        """
        if self.callable is not None:
            raise JobError("callable jobs cannot cross the bus; submit argv instead")
        wire = {
            "name": self.name,
            "owner": self.owner,
            "kind": self.kind.value,
            "argv": list(self.argv) if self.argv is not None else None,
            "sim_duration": self.sim_duration,
            "n_tasks": self.n_tasks,
            "cores_per_task": self.cores_per_task,
            "memory_mb_per_task": self.memory_mb_per_task,
            "need_gpu": self.need_gpu,
            "node_type": self.node_type,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "wallclock_timeout_s": self.wallclock_timeout_s,
            "est_runtime_s": self.est_runtime_s,
            "after": list(self.after),
            "after_ok": self.after_ok,
            "stdin_data": self.stdin_data,
            "env": dict(self.env),
            "workdir": self.workdir,
        }
        if self.retry is not None:
            wire["retry"] = {
                "max_attempts": self.retry.max_attempts,
                "backoff_base_s": self.retry.backoff_base_s,
                "backoff_factor": self.retry.backoff_factor,
                "backoff_max_s": self.retry.backoff_max_s,
                "jitter": self.retry.jitter,
                "retry_on": sorted(self.retry.retry_on),
            }
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "JobRequest":
        """Rebuild a request from :meth:`to_wire` output (validates anew)."""
        data = dict(wire)
        retry = data.pop("retry", None)
        if retry is not None:
            retry = RetryPolicy(
                max_attempts=int(retry.get("max_attempts", 3)),
                backoff_base_s=float(retry.get("backoff_base_s", 0.25)),
                backoff_factor=float(retry.get("backoff_factor", 2.0)),
                backoff_max_s=float(retry.get("backoff_max_s", 30.0)),
                jitter=float(retry.get("jitter", 0.1)),
                retry_on=frozenset(retry.get("retry_on", _RETRY_CLASSES)),
            )
        argv = data.pop("argv", None)
        return cls(
            name=str(data.get("name", "job")),
            owner=str(data.get("owner", "")),
            kind=JobKind(data.get("kind", "sequential")),
            argv=list(argv) if argv is not None else None,
            sim_duration=data.get("sim_duration"),
            n_tasks=int(data.get("n_tasks", 1)),
            cores_per_task=int(data.get("cores_per_task", 1)),
            memory_mb_per_task=int(data.get("memory_mb_per_task", 0)),
            need_gpu=bool(data.get("need_gpu", False)),
            node_type=data.get("node_type"),
            priority=int(data.get("priority", 0)),
            timeout_s=data.get("timeout_s"),
            wallclock_timeout_s=data.get("wallclock_timeout_s"),
            retry=retry,
            est_runtime_s=data.get("est_runtime_s"),
            after=tuple(data.get("after", ())),
            after_ok=bool(data.get("after_ok", False)),
            stdin_data=str(data.get("stdin_data", "")),
            env=dict(data.get("env", {})),
            workdir=data.get("workdir"),
        )


class Job:
    """A submitted job: request + state + placement + captured streams."""

    def __init__(self, request: JobRequest, job_id: str | None = None) -> None:
        self.request = request
        #: monotone creation sequence — the queue keeps jobs sorted by it,
        #: so a re-queued job regains its original submission position.
        self.seq = next(_job_counter)
        self.id = job_id or f"job-{self.seq:06d}"
        self._state = JobState.PENDING
        self._lock = threading.Lock()
        self.stdout = StreamCapture(f"{self.id}.stdout")
        self.stderr = StreamCapture(f"{self.id}.stderr")
        self.stdin = InteractiveChannel(f"{self.id}.stdin")
        if request.stdin_data:
            self.stdin.write(request.stdin_data)
        if request.kind is not JobKind.INTERACTIVE:
            self.stdin.close()
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        self.result: Any = None
        #: node name -> cores held there (set by the distributor)
        self.placement: dict[str, int] = {}
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # -- fault-tolerance bookkeeping (owned by the distributor) -------
        #: finished attempts, oldest first (the lineage the portal shows)
        self.attempts: list[JobAttempt] = []
        #: attempt generation: bumped each time an attempt starts.  An
        #: :class:`~repro.cluster.backends.ExecutionHandle` snapshots it at
        #: launch, so a completion from a superseded attempt (killed node,
        #: enforced timeout) can never clobber the live one.
        self.attempt_epoch = 0
        #: earliest time the job may be dispatched (retry backoff)
        self.not_before = 0.0
        #: distributor hook consulted before a FAILED/TIMEOUT seal; when it
        #: returns True the backend moves the job to RETRYING instead.
        self.retry_gate: Optional[Callable[["Job", JobState], bool]] = None

    # -- state machine -------------------------------------------------------
    @property
    def state(self) -> JobState:
        return self._state

    @property
    def terminal(self) -> bool:
        """``True`` once the job can change no further."""
        return self._state in _TERMINAL

    def transition(self, to: JobState) -> None:
        """Move to ``to``; raises :class:`JobError` on an illegal edge."""
        with self._lock:
            allowed = _ALLOWED.get(self._state, set())
            if to not in allowed:
                raise JobError(
                    f"job {self.id}: illegal transition {self._state.value} -> {to.value}"
                )
            self._state = to

    def try_transition(self, to: JobState) -> bool:
        """Like :meth:`transition` but returns False instead of raising."""
        try:
            self.transition(to)
            return True
        except JobError:
            return False

    # -- convenience -----------------------------------------------------------
    @property
    def runtime_s(self) -> Optional[float]:
        """Wall (or virtual) runtime, when both timestamps exist."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wait_s(self) -> Optional[float]:
        """Queue wait time, when known."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def describe(self) -> dict:
        """JSON-ready summary (what the portal's job page shows)."""
        return {
            "id": self.id,
            "name": self.request.name,
            "owner": self.request.owner,
            "kind": self.request.kind.value,
            "state": self._state.value,
            "n_tasks": self.request.n_tasks,
            "cores_per_task": self.request.cores_per_task,
            "priority": self.request.priority,
            "placement": dict(self.placement),
            "exit_code": self.exit_code,
            "error": self.error,
            "runtime_s": self.runtime_s,
            "wait_s": self.wait_s,
            "attempt": self.attempt_epoch,
            "retries": max(0, self.attempt_epoch - 1),
            "attempts": [a.as_dict() for a in self.attempts],
        }

    # -- durability ------------------------------------------------------------
    @classmethod
    def restore(cls, wire: dict) -> "Job":
        """Rebuild a job from its journal/snapshot wire state.

        The inverse of :func:`repro.durability.joblog.job_wire`: state is
        installed directly (the original transitions were validated when
        they first happened), the global id sequence advances past the
        restored ``seq``, and streams come back *empty* — stdout/stderr
        content is not journaled, only the lineage that produced it.
        Requests that could not cross the wire (live callables) are
        restored under a stub so the lineage stays inspectable; recovery
        decides what to do with the non-relaunchable work.
        """
        req_wire = wire.get("request", {})
        if "_unrecoverable" in req_wire:
            request = JobRequest(
                name=str(req_wire.get("name", "job")),
                owner=str(req_wire.get("owner", "")),
                argv=["<callable lost in restart>"],
            )
        else:
            request = JobRequest.from_wire(req_wire)
        job = cls.__new__(cls)
        job.request = request
        job.seq = int(wire["seq"])
        _job_counter.advance_past(job.seq)
        job.id = str(wire["id"])
        job._state = JobState(wire["state"])
        job._lock = threading.Lock()
        job.stdout = StreamCapture(f"{job.id}.stdout")
        job.stderr = StreamCapture(f"{job.id}.stderr")
        job.stdin = InteractiveChannel(f"{job.id}.stdin")
        if request.kind is not JobKind.INTERACTIVE or job.terminal:
            job.stdin.close()
        if job.terminal:
            job.stdout.close()
            job.stderr.close()
        job.exit_code = wire.get("exit_code")
        job.error = wire.get("error")
        job.result = None
        job.placement = dict(wire.get("placement", {}))
        job.submitted_at = wire.get("submitted_at")
        job.started_at = wire.get("started_at")
        job.finished_at = wire.get("finished_at")
        job.attempts = [JobAttempt(**a) for a in wire.get("attempts", ())]
        job.attempt_epoch = int(wire.get("attempt_epoch", 0))
        job.not_before = float(wire.get("not_before", 0.0))
        job.retry_gate = None
        return job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.id} {self.request.name!r} {self._state.value}>"
