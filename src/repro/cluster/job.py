"""Job model: what users submit and how it moves through its lifecycle.

The portal's Section-II contract: a job is *sequential* (one task on one
node), *parallel* (``n_tasks`` ranks spread over nodes) or *interactive*
(sequential + an open stdin channel).  Lifecycle::

    PENDING -> QUEUED -> RUNNING -> {COMPLETED, FAILED, TIMEOUT}
         \\-> CANCELLED (from PENDING/QUEUED/RUNNING)

Transitions are validated; illegal moves raise :class:`JobError` — an
invariant the property tests exercise heavily.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro._errors import JobError
from repro.cluster.streams import InteractiveChannel, StreamCapture

__all__ = ["JobKind", "JobState", "JobRequest", "Job"]

_job_counter = itertools.count(1)


class JobKind(enum.Enum):
    """Execution shape of a job."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    INTERACTIVE = "interactive"


class JobState(enum.Enum):
    """Lifecycle states."""

    PENDING = "pending"      # created, not yet accepted by the distributor
    QUEUED = "queued"        # waiting for resources
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"


_TERMINAL = {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}

_ALLOWED: dict[JobState, set[JobState]] = {
    JobState.PENDING: {JobState.QUEUED, JobState.CANCELLED},
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT},
}


@dataclass
class JobRequest:
    """Everything a user specifies when submitting.

    Exactly one of ``argv`` (command line for the subprocess backend),
    ``callable`` (Python function) or ``sim_duration`` (virtual seconds
    for the DES backend) describes *what* to run; the rest describes the
    resource shape and policy knobs.
    """

    name: str = "job"
    owner: str = ""
    kind: JobKind = JobKind.SEQUENTIAL
    argv: Optional[list[str]] = None
    callable: Optional[Callable[..., Any]] = None
    sim_duration: Optional[float] = None
    n_tasks: int = 1
    cores_per_task: int = 1
    memory_mb_per_task: int = 0
    need_gpu: bool = False
    priority: int = 0
    timeout_s: Optional[float] = None
    est_runtime_s: Optional[float] = None
    """User-supplied runtime estimate; enables EASY backfilling."""
    after: tuple[str, ...] = ()
    """Job ids that must reach a terminal state before this job may start.

    ``after_ok`` additionally requires them to have COMPLETED; a failed
    dependency then cancels this job instead of running it.
    """
    after_ok: bool = False
    stdin_data: str = ""
    env: dict[str, str] = field(default_factory=dict)
    workdir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.cores_per_task < 1:
            raise JobError(
                f"job shape must be >= 1 task x >= 1 core, got "
                f"{self.n_tasks} x {self.cores_per_task}"
            )
        if self.memory_mb_per_task < 0:
            raise JobError("memory_mb_per_task must be >= 0")
        specified = [x is not None for x in (self.argv, self.callable, self.sim_duration)]
        if sum(specified) != 1:
            raise JobError(
                "exactly one of argv / callable / sim_duration must be given "
                f"(got {sum(specified)})"
            )
        if self.kind is JobKind.SEQUENTIAL and self.n_tasks != 1:
            raise JobError("sequential jobs have exactly one task; use kind=PARALLEL")
        if self.kind is JobKind.INTERACTIVE and self.n_tasks != 1:
            raise JobError("interactive jobs have exactly one task")

    @property
    def total_cores(self) -> int:
        return self.n_tasks * self.cores_per_task


class Job:
    """A submitted job: request + state + placement + captured streams."""

    def __init__(self, request: JobRequest, job_id: str | None = None) -> None:
        self.request = request
        #: monotone creation sequence — the queue keeps jobs sorted by it,
        #: so a re-queued job regains its original submission position.
        self.seq = next(_job_counter)
        self.id = job_id or f"job-{self.seq:06d}"
        self._state = JobState.PENDING
        self._lock = threading.Lock()
        self.stdout = StreamCapture(f"{self.id}.stdout")
        self.stderr = StreamCapture(f"{self.id}.stderr")
        self.stdin = InteractiveChannel(f"{self.id}.stdin")
        if request.stdin_data:
            self.stdin.write(request.stdin_data)
        if request.kind is not JobKind.INTERACTIVE:
            self.stdin.close()
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        self.result: Any = None
        #: node name -> cores held there (set by the distributor)
        self.placement: dict[str, int] = {}
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- state machine -------------------------------------------------------
    @property
    def state(self) -> JobState:
        return self._state

    @property
    def terminal(self) -> bool:
        """``True`` once the job can change no further."""
        return self._state in _TERMINAL

    def transition(self, to: JobState) -> None:
        """Move to ``to``; raises :class:`JobError` on an illegal edge."""
        with self._lock:
            allowed = _ALLOWED.get(self._state, set())
            if to not in allowed:
                raise JobError(
                    f"job {self.id}: illegal transition {self._state.value} -> {to.value}"
                )
            self._state = to

    def try_transition(self, to: JobState) -> bool:
        """Like :meth:`transition` but returns False instead of raising."""
        try:
            self.transition(to)
            return True
        except JobError:
            return False

    # -- convenience -----------------------------------------------------------
    @property
    def runtime_s(self) -> Optional[float]:
        """Wall (or virtual) runtime, when both timestamps exist."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wait_s(self) -> Optional[float]:
        """Queue wait time, when known."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def describe(self) -> dict:
        """JSON-ready summary (what the portal's job page shows)."""
        return {
            "id": self.id,
            "name": self.request.name,
            "owner": self.request.owner,
            "kind": self.request.kind.value,
            "state": self._state.value,
            "n_tasks": self.request.n_tasks,
            "cores_per_task": self.request.cores_per_task,
            "priority": self.request.priority,
            "placement": dict(self.placement),
            "exit_code": self.exit_code,
            "error": self.error,
            "runtime_s": self.runtime_s,
            "wait_s": self.wait_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.id} {self.request.name!r} {self._state.value}>"
