"""The simulated computing cluster.

Models the machine described in Section II of the paper: four segments,
each with a master node and sixteen slave nodes, joined by a grid master
server — plus the job machinery the portal drives:

* :mod:`~repro.cluster.spec` / :mod:`~repro.cluster.node` /
  :mod:`~repro.cluster.segment` / :mod:`~repro.cluster.grid` — hardware
  inventory and per-node core/memory accounting;
* :mod:`~repro.cluster.job` — sequential / parallel / interactive job
  model with a validated lifecycle;
* :mod:`~repro.cluster.scheduler` — FIFO, priority and backfill policies;
* :mod:`~repro.cluster.distributor` — the paper's "job distributor":
  allocates resources, dispatches to a backend, frees on completion;
* :mod:`~repro.cluster.backends` — real subprocesses, Python callables
  (including minimpi programs) or DES-simulated executions;
* :mod:`~repro.cluster.streams` — stdout/stderr capture and interactive
  stdin, which the portal's monitor page surfaces;
* :mod:`~repro.cluster.monitor` / :mod:`~repro.cluster.faults` —
  utilisation accounting and failure injection.
"""

from repro.cluster.spec import ClusterSpec, NodeSpec, SegmentSpec
from repro.cluster.node import Node, NodeState
from repro.cluster.segment import Segment
from repro.cluster.grid import Grid
from repro.cluster.job import Job, JobAttempt, JobKind, JobRequest, JobState, RetryPolicy
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import (
    Allocation,
    BackfillScheduler,
    CapacityView,
    FIFOScheduler,
    PriorityScheduler,
    RunningEstimates,
    Scheduler,
)
from repro.cluster.backends import (
    CallableBackend,
    ExecutionBackend,
    SimulatedBackend,
    SubprocessBackend,
)
from repro.cluster.streams import InteractiveChannel, StreamCapture
from repro.cluster.distributor import JobDistributor
from repro.cluster.monitor import (
    AccountingRecord,
    ClusterMonitor,
    HealthMonitor,
    HealthPolicy,
)
from repro.cluster.faults import FaultInjector
from repro.cluster.workloads import WorkloadSpec, generate_requests, run_workload

__all__ = [
    "NodeSpec", "SegmentSpec", "ClusterSpec",
    "Node", "NodeState", "Segment", "Grid",
    "Job", "JobKind", "JobRequest", "JobState",
    "JobAttempt", "RetryPolicy",
    "JobQueue",
    "Scheduler", "FIFOScheduler", "PriorityScheduler", "BackfillScheduler", "Allocation",
    "CapacityView", "RunningEstimates",
    "ExecutionBackend", "SubprocessBackend", "CallableBackend", "SimulatedBackend",
    "StreamCapture", "InteractiveChannel",
    "JobDistributor",
    "ClusterMonitor", "AccountingRecord", "HealthMonitor", "HealthPolicy",
    "FaultInjector",
    "WorkloadSpec", "generate_requests", "run_workload",
]
