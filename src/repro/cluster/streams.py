"""Standard-stream capture and interactive input.

The paper: "The web interface allows the user to monitor the standard
streams, and even provide input, if so the target application requires
it."  :class:`StreamCapture` is the monitor side (bounded scrollback +
offset-based polling, which maps directly onto the portal's
``GET /jobs/<id>/output?since=N`` endpoint); :class:`InteractiveChannel`
is the stdin side.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import islice
from typing import Deque, Optional

__all__ = ["StreamCapture", "InteractiveChannel"]


class StreamCapture:
    """Thread-safe, bounded line buffer with absolute line offsets.

    Lines keep monotonically increasing indices even after old lines are
    evicted, so a polling client can always ask "everything since line N"
    and detect truncation.
    """

    def __init__(self, name: str = "stream", max_lines: int = 10_000) -> None:
        if max_lines < 1:
            raise ValueError(f"max_lines must be >= 1, got {max_lines}")
        self.name = name
        self.max_lines = max_lines
        self._lines: Deque[str] = deque()
        self._first_index = 0  # absolute index of _lines[0]
        self._lock = threading.Lock()
        self._closed = threading.Event()

    # -- producer side ------------------------------------------------------
    def write_line(self, line: str) -> None:
        """Append one line (newline-stripped)."""
        with self._lock:
            if self._closed.is_set():
                return  # late writes after close are dropped silently
            self._lines.append(line.rstrip("\n"))
            if len(self._lines) > self.max_lines:
                self._lines.popleft()
                self._first_index += 1

    def write_text(self, text: str) -> None:
        """Append multi-line text."""
        for line in text.splitlines():
            self.write_line(line)

    def close(self) -> None:
        """Mark the stream finished (process exited)."""
        self._closed.set()

    # -- consumer side -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def next_index(self) -> int:
        """Absolute index one past the newest line."""
        with self._lock:
            return self._first_index + len(self._lines)

    def read_since(self, since: int = 0) -> tuple[list[str], int, bool]:
        """Lines with absolute index >= ``since``.

        Returns ``(lines, next_index, truncated)`` where ``truncated``
        warns that lines before ``since`` were evicted (client asked for
        history that no longer exists).

        Copies only the requested suffix via ``islice`` — indexing a
        deque is O(distance-from-end), so the old per-index loop was
        quadratic in the slice length.
        """
        with self._lock:
            first = self._first_index
            end = first + len(self._lines)
            truncated = since < first
            start = max(since, first) - first
            if start <= 0:
                lines = list(self._lines)
            elif start >= len(self._lines):
                lines = []
            else:
                lines = list(islice(self._lines, start, None))
            return lines, end, truncated

    def text_since(self, since: int = 0) -> tuple[str, int, bool]:
        """Like :meth:`read_since` but pre-joined with newlines.

        One string instead of a list of lines — what the HTML job page
        and log download want, without a per-poll list of substrings.
        """
        lines, end, truncated = self.read_since(since)
        return "\n".join(lines), end, truncated

    def tail(self, n: int = 20) -> list[str]:
        """The newest ``n`` lines (copies only those ``n``)."""
        with self._lock:
            start = max(0, len(self._lines) - n)
            return list(islice(self._lines, start, None))

    def text(self) -> str:
        """Everything still buffered, joined with newlines."""
        with self._lock:
            return "\n".join(self._lines)


class InteractiveChannel:
    """stdin feed for interactive jobs.

    The portal's input box calls :meth:`write`; the execution backend
    consumes with :meth:`read_line` (blocking with timeout).  Closing the
    channel delivers EOF (``None``) to readers.
    """

    def __init__(self, name: str = "stdin") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._buffer: Deque[str] = deque()
        self._closed = False

    def write(self, text: str) -> None:
        """Queue input text (split into lines)."""
        with self._cond:
            if self._closed:
                raise ValueError(f"stdin channel {self.name} is closed")
            for line in text.splitlines():
                self._buffer.append(line)
            self._cond.notify_all()

    def close(self) -> None:
        """Send EOF to the consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def read_line(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next input line; ``None`` on EOF. Raises TimeoutError on timeout."""
        with self._cond:
            while not self._buffer:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    raise TimeoutError(f"no stdin on {self.name} within {timeout}s")
            return self._buffer.popleft()

    def drain(self) -> str:
        """All currently queued input joined by newlines (non-blocking)."""
        with self._lock:
            out = "\n".join(self._buffer)
            self._buffer.clear()
            return out
