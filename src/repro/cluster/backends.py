"""Execution backends: how an allocated job actually runs.

Three interchangeable backends behind one interface:

* :class:`SubprocessBackend` — real OS processes (the portal's compiled
  C/C++/Java programs).  Parallel jobs launch one process per task with
  ``REPRO_RANK``/``REPRO_SIZE``/``REPRO_NODE`` in the environment.
* :class:`CallableBackend` — Python callables on worker threads;
  parallel callables run under :func:`repro.minimpi.run_mpi` with the
  comm as first argument.  Hermetic: used by most tests and labs.
* :class:`SimulatedBackend` — no real work at all: completion after the
  job's ``sim_duration`` of *virtual* time on a
  :class:`~repro.desim.kernel.Simulator`.  Used for scheduling studies
  where thousands of jobs must flow through the queue in milliseconds.

A backend's ``launch`` returns an :class:`ExecutionHandle`; completion is
reported through the handle's callback, which the distributor uses to
free resources.
"""

from __future__ import annotations

import os
import subprocess
import threading
import time
from typing import Callable

from repro._errors import JobError
from repro.cluster.job import Job, JobKind
from repro.desim.kernel import Simulator

__all__ = [
    "ExecutionHandle",
    "ExecutionBackend",
    "SubprocessBackend",
    "CallableBackend",
    "SimulatedBackend",
]


class ExecutionHandle:
    """Running-job control: cancellation + completion signalling.

    ``epoch`` snapshots the job's attempt generation at launch.  When the
    distributor retires an attempt early (node death, enforced timeout)
    and later relaunches the job, this handle's eventual completion
    carries a stale epoch and :func:`_finish` ignores it — the zombie
    attempt can neither change the job's state nor close its streams.
    """

    def __init__(self, job: Job) -> None:
        self.job = job
        self.epoch = getattr(job, "attempt_epoch", 0)
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._on_done: list[Callable[[Job], None]] = []

    def request_cancel(self) -> None:
        """Ask the execution to stop (best effort)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def on_done(self, cb: Callable[[Job], None]) -> None:
        """Register a completion callback (fires immediately if done)."""
        if self._done.is_set():
            cb(self.job)
        else:
            self._on_done.append(cb)

    def _mark_done(self) -> None:
        self._done.set()
        for cb in self._on_done:
            cb(self.job)
        self._on_done.clear()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the execution finished; returns success."""
        return self._done.wait(timeout)


class ExecutionBackend:
    """Interface: turn an allocated job into running work."""

    def launch(self, job: Job) -> ExecutionHandle:
        """Start ``job`` (placement already recorded on the job)."""
        raise NotImplementedError


def _finish(job: Job, handle: ExecutionHandle, exit_code: int, error: str | None = None) -> None:
    """Common completion path used by the real backends.

    A completion from a superseded attempt (the distributor already
    killed it and possibly relaunched the job) is dropped entirely.  For
    a live attempt that failed or timed out, the job's ``retry_gate`` —
    installed by the distributor — may convert the would-be terminal
    state into RETRYING; streams then stay open for the next attempt.
    """
    from repro.cluster.job import JobState

    if handle.epoch != getattr(job, "attempt_epoch", 0):
        handle._mark_done()  # stale attempt: observers unblock, job untouched
        return
    if job.state is not JobState.RUNNING:
        # The attempt was already resolved by the fault path (node death or
        # enforced timeout sealed/requeued the job) — don't clobber it.
        handle._mark_done()
        return
    job.exit_code = exit_code
    job.error = error
    if handle.cancel_requested:
        outcome = JobState.CANCELLED
    elif error == "timeout":
        outcome = JobState.TIMEOUT
    elif exit_code == 0:
        outcome = JobState.COMPLETED
    else:
        outcome = JobState.FAILED
    retrying = (
        outcome in (JobState.FAILED, JobState.TIMEOUT)
        and job.retry_gate is not None
        and job.retry_gate(job, outcome)
    )
    if retrying:
        job.try_transition(JobState.RETRYING)
    else:
        job.stdout.close()
        job.stderr.close()
        job.try_transition(outcome)
    handle._mark_done()


class SubprocessBackend(ExecutionBackend):
    """Run ``job.request.argv`` as real OS process(es).

    Two I/O modes:

    * ``stream=True`` (default) — *live* streams: stdout/stderr lines
      land in the job's :class:`~repro.cluster.streams.StreamCapture`
      as the process emits them, and text written to the job's stdin
      channel (the portal's input box) is piped in while it runs.  This
      is the paper's "monitor the standard streams, and even provide
      input" behaviour.  Used for sequential/interactive jobs.
    * batch — ``communicate()`` once at exit; used for parallel jobs
      (per-rank output is interleaved deterministically with rank
      prefixes at the end).
    """

    def __init__(self, stream: bool = True) -> None:
        self.stream = stream

    def launch(self, job: Job) -> ExecutionHandle:
        if job.request.argv is None:
            raise JobError(f"job {job.id} has no argv; SubprocessBackend cannot run it")
        handle = ExecutionHandle(job)
        use_stream = self.stream and job.request.n_tasks == 1
        target = self._run_streaming if use_stream else self._run
        t = threading.Thread(target=target, args=(job, handle), daemon=True,
                             name=f"exec-{job.id}")
        t.start()
        return handle

    # -- streaming mode (single task) -----------------------------------
    def _run_streaming(self, job: Job, handle: ExecutionHandle) -> None:
        env = dict(os.environ)
        env.update(job.request.env)
        env.update({"REPRO_RANK": "0", "REPRO_SIZE": "1",
                    "REPRO_NODE": next(iter(job.placement), "node-0")})
        try:
            proc = subprocess.Popen(
                job.request.argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                bufsize=1,  # line buffered
                env=env,
                cwd=job.request.workdir,
            )
        except OSError as exc:
            _finish(job, handle, exit_code=127, error=f"launch failed: {exc}")
            return

        def pump(pipe, capture) -> None:
            for line in pipe:
                capture.write_line(line)
            pipe.close()

        pumps = [
            threading.Thread(target=pump, args=(proc.stdout, job.stdout), daemon=True),
            threading.Thread(target=pump, args=(proc.stderr, job.stderr), daemon=True),
        ]
        for t in pumps:
            t.start()
        threading.Thread(target=self._stdin_loop, args=(job, proc), daemon=True).start()

        # Wait in short slices so cancellation and timeout both bite fast.
        deadline = (
            time.monotonic() + job.request.timeout_s
            if job.request.timeout_s is not None
            else None
        )
        timed_out = False
        while proc.poll() is None:
            if handle.cancel_requested:
                proc.kill()
                break
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                proc.kill()
                break
            try:
                proc.wait(timeout=0.05)
            except subprocess.TimeoutExpired:
                continue
        proc.wait()
        for t in pumps:
            t.join(5.0)
        if not job.stdin.closed:
            job.stdin.close()
        if timed_out:
            _finish(job, handle, exit_code=-1, error="timeout")
        else:
            _finish(job, handle, exit_code=proc.returncode)

    @staticmethod
    def _stdin_loop(job: Job, proc: subprocess.Popen) -> None:
        """Forward the interactive channel into the process until EOF."""
        while proc.poll() is None:
            try:
                line = job.stdin.read_line(timeout=0.2)
            except TimeoutError:
                continue
            if line is None:
                break
            try:
                proc.stdin.write(line + "\n")
                proc.stdin.flush()
            except (BrokenPipeError, ValueError, OSError):
                break
        try:
            proc.stdin.close()
        except (OSError, ValueError):
            pass

    # -- batch mode (parallel jobs) ---------------------------------------
    def _run(self, job: Job, handle: ExecutionHandle) -> None:
        procs: list[subprocess.Popen] = []
        tasks = list(self._task_placements(job))
        try:
            for rank, node_name in enumerate(tasks):
                env = dict(os.environ)
                env.update(job.request.env)
                env["REPRO_RANK"] = str(rank)
                env["REPRO_SIZE"] = str(len(tasks))
                env["REPRO_NODE"] = node_name
                procs.append(
                    subprocess.Popen(
                        job.request.argv,
                        stdin=subprocess.PIPE,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                        env=env,
                        cwd=job.request.workdir,
                    )
                )
        except OSError as exc:
            for p in procs:
                p.kill()
            _finish(job, handle, exit_code=127, error=f"launch failed: {exc}")
            return

        # Feed queued stdin to rank 0 (interactive protocol).
        stdin_text = job.stdin.drain()
        try:
            timeout = job.request.timeout_s
            outs: list[tuple[str, str, int]] = []
            for p in procs:
                out, err = p.communicate(stdin_text if p is procs[0] else None, timeout=timeout)
                outs.append((out, err, p.returncode))
        except subprocess.TimeoutExpired:
            for p in procs:
                p.kill()
            for p in procs:
                p.wait()
            _finish(job, handle, exit_code=-1, error="timeout")
            return

        for rank, (out, err, rc) in enumerate(outs):
            prefix = f"[rank {rank}] " if len(outs) > 1 else ""
            for line in out.splitlines():
                job.stdout.write_line(prefix + line)
            for line in err.splitlines():
                job.stderr.write_line(prefix + line)
        worst = max(rc for _, _, rc in outs)
        _finish(job, handle, exit_code=worst)

    @staticmethod
    def _task_placements(job: Job) -> list[str]:
        """Expand the per-node placement into a per-task node list."""
        out: list[str] = []
        per_task = job.request.cores_per_task
        for node_name, cores in sorted(job.placement.items()):
            out.extend([node_name] * (cores // per_task))
        # Guard against placement/tasks mismatch (should not happen).
        return out[: job.request.n_tasks] or [next(iter(job.placement), "node-0")]


class CallableBackend(ExecutionBackend):
    """Run Python callables — sequential or as minimpi parallel programs."""

    def __init__(self, network=None) -> None:
        self.network = network  # forwarded to run_mpi for parallel jobs

    def launch(self, job: Job) -> ExecutionHandle:
        if job.request.callable is None:
            raise JobError(f"job {job.id} has no callable; CallableBackend cannot run it")
        handle = ExecutionHandle(job)
        t = threading.Thread(target=self._run, args=(job, handle), daemon=True,
                             name=f"exec-{job.id}")
        t.start()
        return handle

    def _run(self, job: Job, handle: ExecutionHandle) -> None:
        fn = job.request.callable
        try:
            if job.request.kind is JobKind.PARALLEL:
                from repro.minimpi import run_mpi

                job.result = run_mpi(
                    fn,
                    job.request.n_tasks,
                    network=self.network,
                    timeout=job.request.timeout_s or 120.0,
                )
            else:
                job.result = fn(job)
            _finish(job, handle, exit_code=0)
        except BaseException as exc:  # noqa: BLE001 - user code
            job.stderr.write_text(f"{type(exc).__name__}: {exc}")
            _finish(job, handle, exit_code=1, error=str(exc))


class SimulatedBackend(ExecutionBackend):
    """Advance a DES clock instead of doing work.

    ``launch`` schedules a completion event ``sim_duration`` virtual
    seconds ahead on the supplied :class:`Simulator`; the caller drives
    ``sim.run()``.  Used by the scheduling benchmarks (thousands of jobs,
    zero real work).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def launch(self, job: Job) -> ExecutionHandle:
        if job.request.sim_duration is None:
            raise JobError(f"job {job.id} has no sim_duration; SimulatedBackend cannot run it")
        handle = ExecutionHandle(job)
        ev = self.sim.timeout(float(job.request.sim_duration))

        def complete(_ev) -> None:
            if handle.cancel_requested or handle.epoch != job.attempt_epoch:
                _finish(job, handle, exit_code=-1)
            else:
                job.stdout.write_line(f"simulated job {job.id} ran {job.request.sim_duration}s")
                _finish(job, handle, exit_code=0)

        self.sim._subscribe(ev, complete)
        return handle
