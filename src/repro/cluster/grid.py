"""The grid: a master server connecting all segments."""

from __future__ import annotations

from typing import Iterator, Optional

from repro._errors import ResourceError
from repro.cluster.node import Node
from repro.cluster.segment import Segment
from repro.cluster.spec import ClusterSpec, NodeSpec, SegmentSpec

__all__ = ["Grid"]


class Grid:
    """The full machine: master server + segments (the paper's Section II).

    Provides node lookup and free-capacity queries; scheduling policy
    lives in :mod:`repro.cluster.scheduler`, which operates *on* a grid.

    Capacity queries are O(1): every allocate/free/state change bubbles
    up node → segment → grid, so :attr:`cores_free`, the per-segment
    totals, and the most-free segment ordering used by placement are
    maintained incrementally instead of being recomputed per query.
    """

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec.uhd_default()
        self.master_server = Node("grid-master", self.spec.master_server_spec, segment="grid")
        self.segments = [Segment(s) for s in self.spec.segments]
        self._by_name: dict[str, Node] = {self.master_server.name: self.master_server}
        for seg in self.segments:
            self._by_name[seg.master.name] = seg.master
            for n in seg.slaves:
                self._by_name[n.name] = n
        # Inventory facts (specs never change; *membership* can — the
        # fleet manager adds/removes nodes, and these update with it).
        self._cores_total = sum(n.spec.cores for n in self.compute_nodes())
        self._max_slave_cores = max((n.spec.cores for n in self.compute_nodes()), default=0)
        self._gpu_nodes = [n for n in self.compute_nodes() if n.spec.has_gpu]
        #: node types a fleet pool may still provision even when no such
        #: node is currently joined — lets submission-time validation
        #: accept jobs the autoscaler can satisfy on demand.
        self.advertised_types: set[str] = set()
        # Incremental capacity index, fed by segment change events.
        self._cores_free = sum(seg.cores_free for seg in self.segments)
        self._cores_up = sum(seg.cores_up for seg in self.segments)
        self._seg_order: Optional[list[Segment]] = None
        self._up_nodes: Optional[list[Node]] = None
        for seg in self.segments:
            seg._observer = self._on_segment_change

    def _on_segment_change(self, seg: Segment, state_changed: bool) -> None:
        self._cores_free = sum(s.cores_free for s in self.segments)
        self._seg_order = None
        if state_changed:
            self._up_nodes = None
            self._cores_up = sum(s.cores_up for s in self.segments)

    # -- fleet membership --------------------------------------------------
    def add_node(
        self, segment_name: str, spec: NodeSpec, name: Optional[str] = None
    ) -> Node:
        """Join a new slave to ``segment_name`` at runtime.

        The join flows through the segment's capacity observer like any
        allocate/free event, so every incremental index (free cores, up
        cores, segment ordering, up-node cache) absorbs it without a
        rescan.
        """
        seg = self.segment(segment_name)
        node = seg.add_slave(spec, name=name)
        self._by_name[node.name] = node
        self._cores_total += spec.cores
        if spec.cores > self._max_slave_cores:
            self._max_slave_cores = spec.cores
        if spec.has_gpu:
            self._gpu_nodes.append(node)
        return node

    def remove_node(self, name: str) -> Node:
        """Retire a slave from the inventory entirely.

        The caller must already have dealt with work running here (drain
        or :meth:`JobDistributor.fail_node`-style requeue) — the grid
        just forgets the node.
        """
        node = self.node(name)
        if node is self.master_server or node.segment == "grid":
            raise ResourceError("cannot remove the grid master server")
        seg = self.segment(node.segment)
        if node is seg.master:
            raise ResourceError(f"cannot remove segment master {name!r}")
        seg.remove_slave(name)
        del self._by_name[name]
        self._cores_total -= node.spec.cores
        if node.spec.has_gpu:
            self._gpu_nodes = [n for n in self._gpu_nodes if n.name != name]
        if node.spec.cores >= self._max_slave_cores:
            self._max_slave_cores = max(
                (n.spec.cores for n in self.compute_nodes()), default=0
            )
        return node

    def add_segment(self, spec: SegmentSpec) -> Segment:
        """Provision a whole new segment (master + slaves) at runtime.

        The reconfigure path's pure-growth case: the segment wires into
        the capacity observer chain and ``self.spec`` is re-derived so
        :func:`repro.spec.describe` reflects the live inventory.
        """
        if any(s.name == spec.name for s in self.segments):
            raise ResourceError(f"segment {spec.name!r} already exists")
        seg = Segment(spec)
        self.segments.append(seg)
        self._by_name[seg.master.name] = seg.master
        for n in seg.slaves:
            self._by_name[n.name] = n
            self._cores_total += n.spec.cores
            if n.spec.has_gpu:
                self._gpu_nodes.append(n)
            if n.spec.cores > self._max_slave_cores:
                self._max_slave_cores = n.spec.cores
        seg._observer = self._on_segment_change
        self._on_segment_change(seg, True)
        self.spec = ClusterSpec(
            segments=(*self.spec.segments, spec),
            master_server_spec=self.spec.master_server_spec,
        )
        return seg

    def remove_segment(self, name: str) -> Segment:
        """Retire a whole segment (master included) from the inventory.

        Refuses while any of its slaves runs work — the reconfigure
        layer drains first.  The last segment cannot be removed.
        """
        seg = self.segment(name)
        if len(self.segments) == 1:
            raise ResourceError("cannot remove the last segment")
        busy = [n.name for n in seg.slaves if n.running_jobs]
        if busy:
            raise ResourceError(
                f"segment {name!r} still runs jobs on {busy}; drain it first"
            )
        for n in [*seg.slaves, seg.master]:
            self._by_name.pop(n.name, None)
        self._cores_total -= sum(n.spec.cores for n in seg.slaves)
        self._gpu_nodes = [n for n in self._gpu_nodes if n.segment != name]
        self.segments.remove(seg)
        seg._observer = None
        self._max_slave_cores = max(
            (n.spec.cores for n in self.compute_nodes()), default=0
        )
        self._on_segment_change(seg, True)
        self.spec = ClusterSpec(
            segments=tuple(s for s in self.spec.segments if s.name != name),
            master_server_spec=self.spec.master_server_spec,
        )
        return seg

    def replace_master_server(self, spec: NodeSpec) -> Node:
        """Rebuild the grid master with a new spec (destroy-recreate).

        Masters run no compute jobs, so the swap is a node-object
        replacement; callers gate it on an idle cluster because every
        segment logically reconnects.
        """
        node = Node(self.master_server.name, spec, segment="grid")
        self.master_server = node
        self._by_name[node.name] = node
        self.spec = ClusterSpec(
            segments=self.spec.segments, master_server_spec=spec
        )
        return node

    def replace_segment_master(self, segment_name: str, spec: NodeSpec) -> Node:
        """Rebuild one segment's master with a new spec (destroy-recreate)."""
        seg = self.segment(segment_name)
        node = Node(seg.master.name, spec, segment=segment_name)
        seg.master = node
        self._by_name[node.name] = node
        self.spec = ClusterSpec(
            segments=tuple(
                SegmentSpec(s.name, s.n_slaves, s.slave_spec, spec)
                if s.name == segment_name else s
                for s in self.spec.segments
            ),
            master_server_spec=self.spec.master_server_spec,
        )
        return node

    def node_types(self) -> dict[str, int]:
        """``{node_type: slave count}`` over the current inventory."""
        counts: dict[str, int] = {}
        for seg in self.segments:
            for t, n in seg.node_types().items():
                counts[t] = counts.get(t, 0) + n
        return counts

    def knows_type(self, node_type: str) -> bool:
        """Is ``node_type`` present in inventory or advertised by a pool?"""
        if node_type in self.advertised_types:
            return True
        return any(node_type in seg.node_types() for seg in self.segments)

    # -- lookup ------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Node by name; raises :class:`ResourceError` if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ResourceError(f"unknown node {name!r}") from None

    def get(self, name: str) -> Optional[Node]:
        """Node by name, or ``None`` if it has left the inventory."""
        return self._by_name.get(name)

    def segment(self, name: str) -> Segment:
        """Segment by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise ResourceError(f"unknown segment {name!r}")

    def compute_nodes(self) -> Iterator[Node]:
        """All slave nodes (the only nodes jobs may run on)."""
        for seg in self.segments:
            yield from seg.slaves

    def up_compute_nodes(self) -> list[Node]:
        """Slave nodes currently accepting work (cached until a state change)."""
        if self._up_nodes is None:
            self._up_nodes = [n for seg in self.segments for n in seg.up_slaves()]
        return self._up_nodes

    def gpu_nodes(self) -> list[Node]:
        """Slaves carrying a GPU."""
        return list(self._gpu_nodes)

    # -- capacity -----------------------------------------------------------
    @property
    def cores_free(self) -> int:
        return self._cores_free

    @property
    def cores_total(self) -> int:
        return self._cores_total

    @property
    def cores_up(self) -> int:
        """Spec cores on slaves currently UP — surviving capacity.

        ``cores_up / cores_total`` is the health layer's degradation
        measure: it ignores allocation level (unlike ``cores_free``) and
        shrinks only when nodes leave service (DOWN/DRAINING/SUSPECT).
        """
        return self._cores_up

    @property
    def max_slave_cores(self) -> int:
        """Core count of the largest slave node (static)."""
        return self._max_slave_cores

    @property
    def load(self) -> float:
        """Fraction of all slave cores in use."""
        total = self._cores_total
        return (total - self._cores_free) / total if total else 0.0

    def segments_by_free(self) -> list[Segment]:
        """Segments ordered most-free-first, re-sorted only after a change.

        Placement probes this cached ordering; between capacity changes
        (and in particular across every job placed within one scheduling
        round) the list is reused as-is.  Ties keep inventory order, as
        :func:`sorted` is stable.
        """
        if self._seg_order is None:
            self._seg_order = sorted(self.segments, key=lambda s: -s.cores_free)
        return self._seg_order

    def find_node_for(
        self,
        cores: int,
        memory_mb: int = 0,
        need_gpu: bool = False,
        node_type: Optional[str] = None,
    ) -> Optional[Node]:
        """First-fit slave for a single-node allocation (segment order)."""
        for n in self.compute_nodes():
            if n.can_fit(cores, memory_mb, need_gpu, node_type=node_type):
                return n
        return None

    def snapshot(self) -> dict:
        """Utilisation snapshot for the monitor page."""
        return {
            "cores_total": self.cores_total,
            "cores_free": self.cores_free,
            "cores_up": self.cores_up,
            "load": self.load,
            "node_types": self.node_types(),
            "segments": {
                seg.name: {
                    "cores_total": seg.cores_total,
                    "cores_free": seg.cores_free,
                    "cores_up": seg.cores_up,
                    "load": seg.load,
                    "nodes_up": len(seg.up_slaves()),
                    "node_states": seg.state_counts(),
                }
                for seg in self.segments
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Grid {len(self.segments)} segments, {self.cores_free}/{self.cores_total} cores free>"
