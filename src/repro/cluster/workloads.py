"""Synthetic workload generators for scheduling studies.

One place for the arrival/shape models the benchmarks and examples
sweep: Poisson arrivals, lognormal service times, a configurable
parallel-job fraction, and a convenience driver that feeds a workload
through a distributor on virtual time and returns the monitor summary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.distributor import JobDistributor
from repro.cluster.job import JobKind, JobRequest
from repro.desim import Simulator
from repro.desim.rng import substream

__all__ = [
    "WorkloadSpec",
    "generate_requests",
    "run_workload",
    "ExploreJobSpec",
    "run_exploration",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical shape of a job stream.

    Defaults model the paper's classroom cluster on a busy afternoon:
    mostly short sequential compile-and-run jobs with occasional
    parallel lab runs.
    """

    n_jobs: int = 200
    arrival_rate_per_s: float = 2.0      # Poisson arrivals
    mean_runtime_s: float = 4.0          # lognormal service (median-ish)
    runtime_sigma: float = 0.8
    parallel_fraction: float = 0.25
    max_tasks: int = 16
    priority_levels: int = 3
    estimate_error: float = 0.3          # users overestimate by up to this

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.arrival_rate_per_s <= 0 or self.mean_runtime_s <= 0:
            raise ValueError("rates/runtimes must be positive")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")

    @property
    def offered_load_core_s_per_s(self) -> float:
        """Average core-seconds demanded per second (load estimate)."""
        mean_service = self.mean_runtime_s
        mean_tasks = (1 - self.parallel_fraction) + self.parallel_fraction * (
            (2 + self.max_tasks) / 2
        )
        return self.arrival_rate_per_s * mean_service * mean_tasks


def generate_requests(spec: WorkloadSpec, seed: int = 0) -> list[tuple[float, JobRequest]]:
    """``(arrival_time, request)`` pairs, arrival-sorted."""
    rng = substream(seed, "workload")
    inter = rng.exponential(1.0 / spec.arrival_rate_per_s, size=spec.n_jobs)
    arrivals = np.cumsum(inter)
    out: list[tuple[float, JobRequest]] = []
    for i in range(spec.n_jobs):
        parallel = rng.random() < spec.parallel_fraction
        n_tasks = int(rng.integers(2, spec.max_tasks + 1)) if parallel else 1
        # scale mean: lognormal with median exp(mu); pick mu from mean_runtime
        duration = float(rng.lognormal(np.log(spec.mean_runtime_s), spec.runtime_sigma))
        estimate = duration * float(rng.uniform(1.0, 1.0 + spec.estimate_error))
        out.append(
            (
                float(arrivals[i]),
                JobRequest(
                    name=f"wl{i:04d}",
                    kind=JobKind.PARALLEL if parallel else JobKind.SEQUENTIAL,
                    n_tasks=n_tasks,
                    sim_duration=duration,
                    est_runtime_s=estimate,
                    priority=int(rng.integers(0, spec.priority_levels)),
                ),
            )
        )
    return out


def run_workload(
    distributor: JobDistributor,
    sim: Simulator,
    spec: WorkloadSpec,
    seed: int = 0,
) -> dict:
    """Feed a workload through ``distributor`` with timed arrivals.

    Jobs are submitted *at* their Poisson arrival instants on the
    virtual clock (not all at t=0), which is what makes queueing curves
    meaningful.  Returns the monitor summary, augmented with the
    makespan and offered load.
    """
    requests = generate_requests(spec, seed)

    def arrival_process(sim, distributor, requests):
        t = 0.0
        for arrival, request in requests:
            if arrival > t:
                yield sim.timeout(arrival - t)
                t = arrival
            distributor.submit(request)

    sim.process(arrival_process(sim, distributor, requests))
    sim.run()
    summary = distributor.monitor.summary()
    summary["makespan_s"] = sim.now
    summary["offered_load_core_s_per_s"] = spec.offered_load_core_s_per_s
    return summary


# ---------------------------------------------------------------------------
# Distributed schedule exploration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreJobSpec:
    """Shape of a distributed DPOR exploration run.

    A coordinator :class:`~repro.interleave.dpor.DporExplorer` runs a
    short seed pass to populate the backtrack frontier, then the pending
    branches are partitioned into at most ``partitions`` cluster jobs
    per wave.  Each worker exhausts its choice-prefix subtrees and
    returns any backtrack points that escaped its ownership; the
    coordinator dedups those and launches the next wave.
    """

    partitions: int = 4
    seed_schedules: int = 8          # coordinator seed-pass budget
    wave_budget: int = 512           # per-worker schedule budget per wave
    max_waves: int = 16
    wait_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.partitions < 1 or self.seed_schedules < 1:
            raise ValueError("partitions and seed_schedules must be >= 1")
        if self.wave_budget < 1 or self.max_waves < 1:
            raise ValueError("wave_budget and max_waves must be >= 1")


def _partition(branches: list, k: int) -> list[list]:
    """Round-robin split into at most ``k`` non-empty chunks."""
    chunks: list[list] = [[] for _ in range(min(k, len(branches)))]
    for i, b in enumerate(branches):
        chunks[i % len(chunks)].append(b)
    return chunks


def run_exploration(
    distributor: JobDistributor,
    factory,
    spec: ExploreJobSpec = ExploreJobSpec(),
) -> "ExplorationResult":
    """Exhaust a program's schedule space across cluster jobs.

    ``factory`` is the usual explorer contract
    (``policy -> (scheduler, check)``); ``distributor`` must be able to
    run callable jobs (any real backend qualifies — argv-only backends
    transparently route callables to a companion in-process backend).
    Returns a single merged :class:`ExplorationResult`.
    """
    from repro.interleave.dpor import DporExplorer
    from repro.interleave.explorer import (
        STOP_EXHAUSTED,
        STOP_SCHEDULE_BUDGET,
        STOP_STEP_BOUND,
    )
    from repro.telemetry.instruments import ExploreTelemetry

    coordinator = DporExplorer(factory)
    merged = coordinator.run(max_schedules=spec.seed_schedules)
    pending = coordinator.take_frontier()
    dispatched: set[tuple[int, ...]] = set()

    def worker(chunk):
        def explore_chunk(job):
            ex = DporExplorer(factory)
            res = ex.explore_branches(list(chunk), max_schedules=spec.wave_budget)
            return {"result": res, "pending": ex.escaped + ex.take_frontier()}

        return explore_chunk

    waves = 0
    while pending and waves < spec.max_waves:
        waves += 1
        fresh = []
        for b in pending:
            # ``is_covered`` also flags branches the coordinator merely
            # *enqueued* during seeding, so it only applies to the
            # worker-returned waves; the seed frontier is fresh by
            # construction.
            if b.tids in dispatched or (waves > 1 and coordinator.is_covered(b.tids)):
                continue
            dispatched.add(b.tids)
            fresh.append(b)
        if not fresh:
            pending = []
            break
        jobs = [
            distributor.submit(
                JobRequest(
                    name=f"explore-w{waves}p{i}",
                    kind=JobKind.SEQUENTIAL,
                    callable=worker(chunk),
                )
            )
            for i, chunk in enumerate(_partition(fresh, spec.partitions))
        ]
        # Wait on *our* jobs only (not ``wait_all``): the coordinator may
        # itself be a cluster job, and other users' work shares the grid.
        deadline = time.monotonic() + spec.wait_timeout_s
        while not all(j.terminal for j in jobs):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"exploration wave {waves} did not finish within "
                    f"{spec.wait_timeout_s}s"
                )
            time.sleep(0.002)
        pending = []
        for job in jobs:
            if not isinstance(job.result, dict):
                raise RuntimeError(
                    f"exploration job {job.request.name} failed: {job.error}"
                )
            merged.merge(job.result["result"])
            pending.extend(job.result["pending"])

    if pending:
        merged.stop_reason = STOP_SCHEDULE_BUDGET
    elif merged.stop_reason not in (STOP_EXHAUSTED, STOP_STEP_BOUND):
        # every subtree drained — the seed pass's budget stop is moot
        merged.stop_reason = STOP_STEP_BOUND if merged.step_bounded else STOP_EXHAUSTED
    # record into the distributor's registry — the one ``/metrics`` serves
    ExploreTelemetry(distributor.telemetry.registry).record(merged)
    return merged
