"""Synthetic workload generators for scheduling studies.

One place for the arrival/shape models the benchmarks and examples
sweep: Poisson arrivals, lognormal service times, a configurable
parallel-job fraction, and a convenience driver that feeds a workload
through a distributor on virtual time and returns the monitor summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distributor import JobDistributor
from repro.cluster.job import JobKind, JobRequest
from repro.desim import Simulator
from repro.desim.rng import substream

__all__ = ["WorkloadSpec", "generate_requests", "run_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical shape of a job stream.

    Defaults model the paper's classroom cluster on a busy afternoon:
    mostly short sequential compile-and-run jobs with occasional
    parallel lab runs.
    """

    n_jobs: int = 200
    arrival_rate_per_s: float = 2.0      # Poisson arrivals
    mean_runtime_s: float = 4.0          # lognormal service (median-ish)
    runtime_sigma: float = 0.8
    parallel_fraction: float = 0.25
    max_tasks: int = 16
    priority_levels: int = 3
    estimate_error: float = 0.3          # users overestimate by up to this

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.arrival_rate_per_s <= 0 or self.mean_runtime_s <= 0:
            raise ValueError("rates/runtimes must be positive")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")

    @property
    def offered_load_core_s_per_s(self) -> float:
        """Average core-seconds demanded per second (load estimate)."""
        mean_service = self.mean_runtime_s
        mean_tasks = (1 - self.parallel_fraction) + self.parallel_fraction * (
            (2 + self.max_tasks) / 2
        )
        return self.arrival_rate_per_s * mean_service * mean_tasks


def generate_requests(spec: WorkloadSpec, seed: int = 0) -> list[tuple[float, JobRequest]]:
    """``(arrival_time, request)`` pairs, arrival-sorted."""
    rng = substream(seed, "workload")
    inter = rng.exponential(1.0 / spec.arrival_rate_per_s, size=spec.n_jobs)
    arrivals = np.cumsum(inter)
    out: list[tuple[float, JobRequest]] = []
    for i in range(spec.n_jobs):
        parallel = rng.random() < spec.parallel_fraction
        n_tasks = int(rng.integers(2, spec.max_tasks + 1)) if parallel else 1
        # scale mean: lognormal with median exp(mu); pick mu from mean_runtime
        duration = float(rng.lognormal(np.log(spec.mean_runtime_s), spec.runtime_sigma))
        estimate = duration * float(rng.uniform(1.0, 1.0 + spec.estimate_error))
        out.append(
            (
                float(arrivals[i]),
                JobRequest(
                    name=f"wl{i:04d}",
                    kind=JobKind.PARALLEL if parallel else JobKind.SEQUENTIAL,
                    n_tasks=n_tasks,
                    sim_duration=duration,
                    est_runtime_s=estimate,
                    priority=int(rng.integers(0, spec.priority_levels)),
                ),
            )
        )
    return out


def run_workload(
    distributor: JobDistributor,
    sim: Simulator,
    spec: WorkloadSpec,
    seed: int = 0,
) -> dict:
    """Feed a workload through ``distributor`` with timed arrivals.

    Jobs are submitted *at* their Poisson arrival instants on the
    virtual clock (not all at t=0), which is what makes queueing curves
    meaningful.  Returns the monitor summary, augmented with the
    makespan and offered load.
    """
    requests = generate_requests(spec, seed)

    def arrival_process(sim, distributor, requests):
        t = 0.0
        for arrival, request in requests:
            if arrival > t:
                yield sim.timeout(arrival - t)
                t = arrival
            distributor.submit(request)

    sim.process(arrival_process(sim, distributor, requests))
    sim.run()
    summary = distributor.monitor.summary()
    summary["makespan_s"] = sim.now
    summary["offered_load_core_s_per_s"] = spec.offered_load_core_s_per_s
    return summary
