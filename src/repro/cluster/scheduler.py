"""Scheduling policies: who runs next, and where.

A policy's :meth:`Scheduler.select` examines the queue and the grid and
returns the jobs to start *now*, each with a concrete
:class:`Allocation` (node → cores).  Placement prefers locality: a
parallel job is packed into the emptiest single segment that can hold it
before being allowed to straddle segments (inter-segment traffic costs
3 hops in the network model, so the preference is measurable).

Health-driven avoidance is free here: a DOWN, DRAINING or SUSPECT node
exposes zero free capacity through the incremental index and drops out
of ``up_slaves()``/``up_compute_nodes()``, so no policy ever needs to
know *why* a node is unavailable.  Retry backoff is likewise handled
before policies run: :func:`ready_for_dispatch` filters jobs whose
``not_before`` lies in the future out of the round's queue snapshot.

Free capacity is read through a *capacity view* — either the legacy
:class:`_Shadow` (a full per-round rebuild that snapshots every node) or
the incremental :class:`CapacityView` (O(1) setup over the grid's live
index, with a per-round overlay of tentative takes).  Both expose the
same interface and produce identical placements; the distributor passes
a :class:`CapacityView` per round, while direct ``select()`` calls fall
back to a fresh ``_Shadow`` so standalone use keeps working.

Three policies, ablated in ``benchmarks/bench_cluster.py``:

* :class:`FIFOScheduler` — strict arrival order; the head blocks the queue.
* :class:`PriorityScheduler` — highest priority first; never blocks
  (skips unplaceable jobs), so small high-priority jobs can starve a
  wide job — the classic trade-off.
* :class:`BackfillScheduler` — FIFO head reservation + EASY backfill:
  while the head waits, later jobs may jump ahead only if (by runtime
  estimates) they cannot delay the head's reserved start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.cluster.grid import Grid
from repro.cluster.job import Job, JobRequest

__all__ = [
    "Allocation",
    "CapacityView",
    "RunningEstimates",
    "Scheduler",
    "FIFOScheduler",
    "PriorityScheduler",
    "BackfillScheduler",
    "ready_for_dispatch",
]


def ready_for_dispatch(queue: Sequence[Job], now: float) -> tuple[list[Job], Optional[float]]:
    """Split backoff-delayed jobs out of a queue snapshot.

    Returns ``(eligible, next_ready)``: jobs whose retry backoff has
    elapsed (``job.not_before <= now``), in their original order, plus
    the earliest ``not_before`` among the held-back jobs (``None`` when
    everything is eligible) so the distributor can arm a wake-up instead
    of polling.  A backing-off job temporarily yields its slot; once
    eligible it re-enters at its submission-order position, so FIFO
    fairness survives the delay.
    """
    eligible: Optional[list[Job]] = None  # lazily forked from the snapshot
    next_ready: Optional[float] = None
    for i, job in enumerate(queue):
        nb = job.not_before
        if nb <= now:
            if eligible is not None:
                eligible.append(job)
        else:
            if eligible is None:
                eligible = list(queue[:i])
            if next_ready is None or nb < next_ready:
                next_ready = nb
    if eligible is None:
        # common case: nothing is backing off, the snapshot is already a
        # private copy — reuse it instead of rebuilding the list per round
        return list(queue) if not isinstance(queue, list) else queue, None
    return eligible, next_ready


@dataclass(frozen=True)
class Allocation:
    """A concrete placement plan for one job."""

    job_id: str
    placement: tuple[tuple[str, int], ...]  # ((node_name, cores), ...)

    @property
    def total_cores(self) -> int:
        return sum(c for _, c in self.placement)

    def as_dict(self) -> dict[str, int]:
        return dict(self.placement)


class RunningEstimates(list):
    """``(estimated_end, cores)`` pairs kept sorted by the distributor.

    The ``presorted`` flag lets :class:`BackfillScheduler` skip its
    defensive re-sort; plain lists/tuples are still accepted and sorted
    on the fly.
    """

    presorted = True


class _Shadow:
    """Free-capacity view rebuilt from scratch (the pre-index reference).

    Walks every up node at construction — O(nodes) per scheduling round.
    Kept as the reference implementation the equivalence tests replay
    against; the hot path uses :class:`CapacityView` instead.
    """

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        self.cores: dict[str, int] = {}
        self.memory: dict[str, int] = {}
        self._seg_free: dict[str, int] = {s.name: 0 for s in grid.segments}
        self._total = 0
        self.probes = 0
        for n in grid.up_compute_nodes():
            self.cores[n.name] = n.cores_free
            self.memory[n.name] = n.memory_free_mb
            self._seg_free[n.segment] += n.cores_free
            self._total += n.cores_free

    def fits(self, node, cores: int, memory_mb: int, need_gpu: bool) -> bool:
        if need_gpu and not node.spec.has_gpu:
            return False
        return (
            self.cores.get(node.name, 0) >= cores
            and self.memory.get(node.name, 0) >= memory_mb
        )

    def free(self, node) -> tuple[int, int]:
        """(free cores, free memory) of ``node`` under this view."""
        return self.cores.get(node.name, 0), self.memory.get(node.name, 0)

    def seg_free_cores(self, seg) -> int:
        """Total free cores in segment ``seg`` under this view."""
        return self._seg_free.get(seg.name, 0)

    def take(self, node_name: str, cores: int, memory_mb: int) -> None:
        self.cores[node_name] -= cores
        self.memory[node_name] -= memory_mb
        self._seg_free[self.grid.node(node_name).segment] -= cores
        self._total -= cores

    @property
    def total_free_cores(self) -> int:
        return self._total


class CapacityView:
    """Incremental free-capacity view: live index + per-round overlay.

    Construction is O(1): reads go straight to the grid's incrementally
    maintained totals (``node.cores_free`` etc. are O(1)), minus
    whatever earlier picks in the same round tentatively took.  Nothing
    here mutates the grid — the distributor commits accepted plans with
    real ``allocate()`` calls after ``select()`` returns.
    """

    __slots__ = ("grid", "_cores_taken", "_mem_taken", "_seg_taken", "_taken_total", "probes")

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        self._cores_taken: dict[str, int] = {}
        self._mem_taken: dict[str, int] = {}
        self._seg_taken: dict[str, int] = {}
        self._taken_total = 0
        self.probes = 0

    def fits(self, node, cores: int, memory_mb: int, need_gpu: bool) -> bool:
        if need_gpu and not node.spec.has_gpu:
            return False
        free_c, free_m = self.free(node)
        return free_c >= cores and free_m >= memory_mb

    def free(self, node) -> tuple[int, int]:
        """(free cores, free memory) of ``node`` under this view."""
        return (
            node.cores_free - self._cores_taken.get(node.name, 0),
            node.memory_free_mb - self._mem_taken.get(node.name, 0),
        )

    def seg_free_cores(self, seg) -> int:
        """Total free cores in segment ``seg`` under this view."""
        return seg.cores_free - self._seg_taken.get(seg.name, 0)

    def take(self, node_name: str, cores: int, memory_mb: int) -> None:
        node = self.grid.node(node_name)
        self._cores_taken[node_name] = self._cores_taken.get(node_name, 0) + cores
        self._mem_taken[node_name] = self._mem_taken.get(node_name, 0) + memory_mb
        self._seg_taken[node.segment] = self._seg_taken.get(node.segment, 0) + cores
        self._taken_total += cores

    @property
    def total_free_cores(self) -> int:
        return self.grid.cores_free - self._taken_total


def place_request(grid: Grid, request: JobRequest, shadow) -> Optional[list[tuple[str, int]]]:
    """Find nodes for every task of ``request`` against ``shadow``.

    Returns ``[(node_name, cores), ...]`` — one entry per task — or
    ``None`` when the job cannot start now.  Does *not* mutate the
    shadow; the caller commits with :func:`commit_placement` once it
    decides to take the plan.

    Candidate sets are quick-rejected on aggregate free cores (a pack
    over nodes whose free cores sum below the job's need can never
    succeed), so a failed placement costs O(segments), not O(nodes).
    """
    cores = request.cores_per_task
    mem = request.memory_mb_per_task
    tasks = request.n_tasks
    need = request.total_cores

    def pack(nodes) -> Optional[list[tuple[str, int]]]:
        shadow.probes += 1
        plan: list[tuple[str, int]] = []
        avail: dict[str, int] = {}
        avail_mem: dict[str, int] = {}
        for n in nodes:
            avail[n.name], avail_mem[n.name] = shadow.free(n)
        for _ in range(tasks):
            chosen = None
            for n in nodes:
                if request.need_gpu and not n.spec.has_gpu:
                    continue
                if (
                    request.node_type is not None
                    and n.spec.node_type != request.node_type
                ):
                    continue
                if avail[n.name] >= cores and avail_mem[n.name] >= mem:
                    chosen = n
                    break
            if chosen is None:
                return None
            avail[chosen.name] -= cores
            avail_mem[chosen.name] -= mem
            plan.append((chosen.name, cores))
        return plan

    # 1. Try to pack the whole job inside one segment (most-free first).
    for seg in grid.segments_by_free():
        if request.need_gpu and not seg.has_gpu:
            continue
        if request.node_type is not None and not seg.has_type(request.node_type):
            continue
        if shadow.seg_free_cores(seg) < need:
            continue
        plan = pack(seg.up_slaves())
        if plan is not None:
            return plan
    # 2. Fall back to the whole grid.
    if shadow.total_free_cores < need:
        return None
    return pack(grid.up_compute_nodes())


def commit_placement(shadow, plan: list[tuple[str, int]], request: JobRequest) -> None:
    """Deduct a accepted plan from the shadow."""
    for node_name, cores in plan:
        shadow.take(node_name, cores, request.memory_mb_per_task)


def _merge_plan(plan: list[tuple[str, int]]) -> tuple[tuple[str, int], ...]:
    """Collapse per-task entries into per-node totals."""
    merged: dict[str, int] = {}
    for node_name, cores in plan:
        merged[node_name] = merged.get(node_name, 0) + cores
    return tuple(sorted(merged.items()))


class Scheduler:
    """Base policy. Subclasses implement :meth:`select`."""

    name = "base"

    def select(
        self,
        queue: Sequence[Job],
        grid: Grid,
        now: float = 0.0,
        running: Iterable[tuple[float, int]] = (),
        view=None,
    ) -> list[tuple[Job, Allocation]]:
        """Jobs to start now.

        Parameters
        ----------
        queue:
            Queued jobs in submission order.
        grid:
            The machine (read-only here; the distributor commits).
        now:
            Current (virtual or wall) time — used by backfill.
        running:
            ``(estimated_end_time, total_cores)`` of running jobs — used
            by backfill's reservation computation.  A
            :class:`RunningEstimates` instance is trusted to be
            end-time-sorted already.
        view:
            Optional capacity view to schedule against (the distributor
            passes an O(1)-setup :class:`CapacityView`); ``None`` builds
            a fresh :class:`_Shadow` rebuild.
        """
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """Strict arrival order; an unplaceable head blocks everyone behind it."""

    name = "fifo"

    def select(self, queue, grid, now=0.0, running=(), view=None):
        shadow = view if view is not None else _Shadow(grid)
        picks: list[tuple[Job, Allocation]] = []
        for job in queue:
            plan = place_request(grid, job.request, shadow)
            if plan is None:
                break  # head-of-line blocking is the point of FIFO
            commit_placement(shadow, plan, job.request)
            picks.append((job, Allocation(job.id, _merge_plan(plan))))
        return picks


class PriorityScheduler(Scheduler):
    """Highest priority first (ties: submission order); skips blocked jobs.

    Pure priority scheduling starves low-priority work under a steady
    high-priority stream — the classic OS-course pitfall.  ``aging_rate``
    applies the textbook fix: a job's *effective* priority grows by
    ``aging_rate`` per unit of queue wait, so everything eventually
    rises to the top.  ``aging_rate=0`` (default) is the pure policy.
    """

    name = "priority"

    def __init__(self, aging_rate: float = 0.0) -> None:
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0, got {aging_rate}")
        self.aging_rate = aging_rate

    def effective_priority(self, job: Job, now: float) -> float:
        """Static priority plus accrued age."""
        # NB: `submitted_at or now` would treat a t=0.0 submission as
        # "not submitted" — compare against None explicitly.
        submitted = job.submitted_at if job.submitted_at is not None else now
        waited = max(0.0, now - submitted)
        return job.request.priority + self.aging_rate * waited

    def select(self, queue, grid, now=0.0, running=(), view=None):
        shadow = view if view is not None else _Shadow(grid)
        picks: list[tuple[Job, Allocation]] = []
        ordered = sorted(
            enumerate(queue),
            key=lambda p: (-self.effective_priority(p[1], now), p[0]),
        )
        for _, job in ordered:
            if shadow.total_free_cores <= 0:
                break  # nothing can place once the view is exhausted
            plan = place_request(grid, job.request, shadow)
            if plan is not None:
                commit_placement(shadow, plan, job.request)
                picks.append((job, Allocation(job.id, _merge_plan(plan))))
        return picks


class BackfillScheduler(Scheduler):
    """EASY backfill: FIFO with a reservation for the blocked head.

    When the head job cannot start, we compute its *reserved start time*
    (the earliest moment enough cores will be free, by the running jobs'
    estimated end times) and let later jobs start only if their own
    estimated runtime finishes before that reservation, or they fit in
    cores the head will not need.  Jobs without a runtime estimate are
    never backfilled (conservative).
    """

    name = "backfill"

    #: default estimate (seconds) for jobs that carry none — None disables
    #: backfilling such jobs entirely.
    def __init__(self) -> None:
        pass

    def select(self, queue, grid, now=0.0, running=(), view=None):
        shadow = view if view is not None else _Shadow(grid)
        picks: list[tuple[Job, Allocation]] = []
        queue = list(queue)

        # Start as many head-of-queue jobs as fit (pure FIFO part).
        while queue:
            job = queue[0]
            plan = place_request(grid, job.request, shadow)
            if plan is None:
                break
            commit_placement(shadow, plan, job.request)
            picks.append((job, Allocation(job.id, _merge_plan(plan))))
            queue.pop(0)

        if not queue:
            return picks

        head = queue[0]
        head_need = head.request.total_cores
        reservation = self._reserved_start(head_need, shadow.total_free_cores, now, running)
        # Cores free at the reservation instant (current free + everything
        # that drains by then).  A candidate that still runs at that point
        # is harmless iff it fits in the slack beyond the head's need.
        if reservation is not None:
            drained = sum(c for end, c in running if end <= reservation)
            free_at_reservation = shadow.total_free_cores + drained
        else:
            free_at_reservation = 0

        for job in queue[1:]:
            if shadow.total_free_cores <= 0:
                break  # no candidate can place against an exhausted view
            est = getattr(job.request, "est_runtime_s", None)
            if est is None:
                continue
            harmless = (
                reservation is not None
                and job.request.total_cores <= free_at_reservation - head_need
            )
            finishes_in_time = reservation is not None and now + est <= reservation
            if not (harmless or finishes_in_time):
                continue
            plan = place_request(grid, job.request, shadow)
            if plan is None:
                continue
            commit_placement(shadow, plan, job.request)
            picks.append((job, Allocation(job.id, _merge_plan(plan))))
        return picks

    @staticmethod
    def _reserved_start(
        need: int, free_now: int, now: float, running: Iterable[tuple[float, int]]
    ) -> Optional[float]:
        """Earliest time cumulative free cores reach ``need``.

        ``running`` sorted ascending by end time is consumed as-is when
        it advertises ``presorted`` (the distributor's
        :class:`RunningEstimates` does); anything else is sorted here.
        """
        free = free_now
        if free >= need:
            return now
        ends = running if getattr(running, "presorted", False) else sorted(running)
        for end, cores in ends:
            free += cores
            if free >= need:
                return max(end, now)
        return None  # not satisfiable even when everything drains
