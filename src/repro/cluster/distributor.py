"""The job distributor (the paper's backend workhorse).

Section II: the web interface "creates a compilation and/or executor
object, which in turn upon success contacts a job distributor to
allocate resources on the cluster and finally dispatch the job onto
those resources".  :class:`JobDistributor` is that component:

* :meth:`submit` accepts a :class:`~repro.cluster.job.JobRequest`,
  queues it and immediately attempts dispatch;
* dispatch asks the configured scheduling policy for placements,
  reserves cores/memory on the chosen nodes, and hands the job to the
  execution backend;
* completion callbacks free the resources and re-trigger dispatch, so
  the queue drains as capacity appears.

The distributor is time-source agnostic: pass ``now_fn=lambda: sim.now``
with a :class:`SimulatedBackend` and the whole pipeline runs on virtual
time; with the default wall clock it serves the live portal.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro._errors import JobError, SchedulingError
from repro.cluster.backends import ExecutionBackend, ExecutionHandle
from repro.cluster.grid import Grid
from repro.cluster.job import Job, JobRequest, JobState
from repro.cluster.monitor import ClusterMonitor
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import Allocation, FIFOScheduler, Scheduler

__all__ = ["JobDistributor"]


class JobDistributor:
    """Allocate → dispatch → free, under a pluggable scheduling policy."""

    def __init__(
        self,
        grid: Grid,
        backend: ExecutionBackend,
        scheduler: Scheduler | None = None,
        now_fn: Callable[[], float] | None = None,
        monitor: ClusterMonitor | None = None,
    ) -> None:
        self.grid = grid
        self.backend = backend
        self.scheduler = scheduler or FIFOScheduler()
        self.now_fn = now_fn or time.monotonic
        self.monitor = monitor or ClusterMonitor()
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self._handles: dict[str, ExecutionHandle] = {}
        self._lock = threading.RLock()

    # -- submission -----------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Accept a request; returns the queued (or already running) Job."""
        self._validate(request)
        job = Job(request)
        with self._lock:
            self.jobs[job.id] = job
            job.submitted_at = self.now_fn()
            job.transition(JobState.QUEUED)
            self.queue.push(job)
        self.dispatch()
        return job

    def _validate(self, request: JobRequest) -> None:
        """Reject shapes the machine can never satisfy."""
        for dep in request.after:
            if dep not in self.jobs:
                raise JobError(f"dependency {dep!r} is not a known job id")
        per_node_max = max((n.spec.cores for n in self.grid.compute_nodes()), default=0)
        if request.cores_per_task > per_node_max:
            raise SchedulingError(
                f"a task needs {request.cores_per_task} cores but the largest node has {per_node_max}"
            )
        if request.total_cores > self.grid.cores_total:
            raise SchedulingError(
                f"job needs {request.total_cores} cores; the whole grid has {self.grid.cores_total}"
            )
        if request.need_gpu and not self.grid.gpu_nodes():
            raise SchedulingError("job needs a GPU but the grid has no GPU nodes")

    # -- dispatch ------------------------------------------------------------
    def _dependency_state(self, job: Job) -> str:
        """'ready' | 'held' | 'doomed' for a queued job's dependencies."""
        doomed = False
        for dep_id in job.request.after:
            dep = self.jobs.get(dep_id)
            if dep is None or not dep.terminal:
                return "held"
            if job.request.after_ok and dep.state is not JobState.COMPLETED:
                doomed = True
        return "doomed" if doomed else "ready"

    def dispatch(self) -> int:
        """Run one scheduling round; returns how many jobs were started."""
        started = 0
        with self._lock:
            # Dependency gating: held jobs are invisible to the policy (so
            # they never head-block FIFO); jobs whose required-success
            # dependency failed are cancelled.
            eligible = []
            for job in self.queue.snapshot():
                state = self._dependency_state(job)
                if state == "ready":
                    eligible.append(job)
                elif state == "doomed":
                    self.queue.remove(job)
                    job.error = "dependency failed"
                    job.try_transition(JobState.CANCELLED)
                    job.finished_at = self.now_fn()
                    self.monitor.record_job(job)
            running = self._running_estimates()
            picks = self.scheduler.select(
                eligible, self.grid, now=self.now_fn(), running=running
            )
            for job, alloc in picks:
                if not self.queue.remove(job):
                    continue  # raced with a cancel
                try:
                    self._reserve(job, alloc)
                except Exception:
                    # Placement raced with a node failure: requeue.
                    self.queue.push(job)
                    continue
                job.transition(JobState.RUNNING)
                job.started_at = self.now_fn()
                handle = self.backend.launch(job)
                self._handles[job.id] = handle
                handle.on_done(self._on_finished)
                started += 1
            self.monitor.sample(self.grid, self.now_fn(), queued=len(self.queue))
        return started

    def _reserve(self, job: Job, alloc: Allocation) -> None:
        done: list[str] = []
        try:
            for node_name, cores in alloc.placement:
                self.grid.node(node_name).allocate(
                    job.id, cores,
                    memory_mb=job.request.memory_mb_per_task * (cores // job.request.cores_per_task),
                )
                done.append(node_name)
        except Exception:
            for node_name in done:
                self.grid.node(node_name).free(job.id)
            raise
        job.placement = alloc.as_dict()

    def _running_estimates(self) -> list[tuple[float, int]]:
        """(estimated end, cores) for running jobs — feeds backfill."""
        out = []
        for job in self.jobs.values():
            if job.state is not JobState.RUNNING or job.started_at is None:
                continue
            est = job.request.est_runtime_s
            if est is None:
                est = job.request.sim_duration
            if est is None:
                continue
            out.append((job.started_at + est, job.request.total_cores))
        return out

    # -- completion -----------------------------------------------------------
    def _on_finished(self, job: Job) -> None:
        with self._lock:
            job.finished_at = self.now_fn()
            for node_name in list(job.placement):
                node = self.grid.node(node_name)
                if node.holds(job.id):
                    node.free(job.id)
            self._handles.pop(job.id, None)
            self.monitor.record_job(job)
        self.dispatch()

    def submit_array(self, request: JobRequest, count: int) -> list[Job]:
        """Submit ``count`` clones of ``request`` (a job array).

        Each element gets a ``name[k]`` suffix; elements are independent
        (no implied ordering).  Returns them in index order.
        """
        if count < 1:
            raise JobError(f"array count must be >= 1, got {count}")
        import dataclasses

        return [
            self.submit(dataclasses.replace(request, name=f"{request.name}[{k}]"))
            for k in range(count)
        ]

    # -- control ---------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job in any non-terminal state. Returns success."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if job.terminal:
                return False
            if job.state in (JobState.PENDING, JobState.QUEUED):
                self.queue.remove(job)
                job.try_transition(JobState.CANCELLED)
                return True
            handle = self._handles.get(job_id)
        if handle is not None:
            handle.request_cancel()
            return True
        return False

    def job(self, job_id: str) -> Job:
        """Look up a job by id."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job {job_id!r}") from None

    def wait_all(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (wall-clock backends)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = len(self.queue) or any(
                    j.state is JobState.RUNNING for j in self.jobs.values()
                )
            if not busy:
                return True
            time.sleep(0.01)
        return False

    def stats(self) -> dict:
        """Queue/running/terminal counts plus grid utilisation."""
        with self._lock:
            by_state: dict[str, int] = {}
            for j in self.jobs.values():
                by_state[j.state.value] = by_state.get(j.state.value, 0) + 1
            return {
                "jobs": dict(by_state),
                "queued": len(self.queue),
                "grid": self.grid.snapshot(),
                "policy": self.scheduler.name,
            }
