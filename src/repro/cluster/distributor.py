"""The job distributor (the paper's backend workhorse).

Section II: the web interface "creates a compilation and/or executor
object, which in turn upon success contacts a job distributor to
allocate resources on the cluster and finally dispatch the job onto
those resources".  :class:`JobDistributor` is that component:

* :meth:`submit` accepts a :class:`~repro.cluster.job.JobRequest`,
  queues it and immediately attempts dispatch;
* dispatch asks the configured scheduling policy for placements,
  reserves cores/memory on the chosen nodes, and hands the job to the
  execution backend;
* completion callbacks free the resources and re-trigger dispatch, so
  the queue drains as capacity appears.

Dispatch is *incremental and coalescing*: every trigger (submission,
completion, fault event) marks the distributor dirty and one drain loop
runs scheduling rounds until nothing is pending — concurrent triggers
merge into the round already in flight instead of stacking rounds.  A
round costs O(queue + active), not O(all jobs ever submitted): capacity
is read through the grid's incremental index (O(1) setup per round,
see :class:`~repro.cluster.scheduler.CapacityView`), running-job end
estimates live in a pre-sorted structure maintained on start/finish,
and dependency-held jobs wait in a side table so the policy never
rescans them.  ``stats()["dispatch"]`` exposes counters (rounds, jobs
examined, placements tried, ...) so the engine's work is observable.

The distributor is also the cluster's *fault-tolerance layer*:

* **Retries.** A failed/timed-out attempt whose :class:`RetryPolicy`
  (per-request, or the distributor-wide default) still has budget moves
  RUNNING → RETRYING → QUEUED with exponential, seeded-jitter backoff
  instead of sealing; every finished attempt is recorded on the job's
  lineage (``job.attempts``).
* **Timeouts.** Per-job run-time (``timeout_s``) and total wall-clock
  (``wallclock_timeout_s``) deadlines are enforced by the dispatch loop
  itself through a deadline heap + armed wake-ups, so even backends
  with no timeout support (DES, plain callables) time out exactly once.
* **Node death.** :meth:`fail_node` retires the orphaned attempts,
  reroutes jobs with retry budget to surviving nodes and seals the rest
  — the first-class API :class:`~repro.cluster.faults.FaultInjector`
  drives.
* **Health.** A :class:`~repro.cluster.monitor.HealthMonitor` turns
  repeated attempt failures into SUSPECT (drained) nodes, rejoins them
  after probation, and flags degraded mode when surviving capacity
  drops below a threshold; ``stats()["faults"]`` counts every recovery
  action.

The distributor is time-source agnostic: pass ``now_fn=lambda: sim.now``
with a :class:`SimulatedBackend` and the whole pipeline runs on virtual
time (backoff/timeout wake-ups are scheduled on the simulator
automatically); with the default wall clock it serves the live portal
using daemon timers.
"""

from __future__ import annotations

import bisect
import dataclasses
import heapq
import itertools
import threading
import time
from typing import Callable, Optional

import numpy as np

from repro._errors import JobError, ResourceError, SchedulingError
from repro.cluster.backends import (
    CallableBackend,
    ExecutionBackend,
    ExecutionHandle,
    SimulatedBackend,
)
from repro.cluster.grid import Grid
from repro.cluster.job import Job, JobAttempt, JobRequest, JobState, RetryPolicy
from repro.cluster.monitor import ClusterMonitor, HealthMonitor, HealthPolicy
from repro.cluster.node import NodeState
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import (
    Allocation,
    CapacityView,
    FIFOScheduler,
    RunningEstimates,
    Scheduler,
    ready_for_dispatch,
)
from repro.telemetry.instruments import DispatchTelemetry

__all__ = ["JobDistributor"]


class JobDistributor:
    """Allocate → dispatch → free, under a pluggable scheduling policy."""

    def __init__(
        self,
        grid: Grid,
        backend: ExecutionBackend,
        scheduler: Scheduler | None = None,
        now_fn: Callable[[], float] | None = None,
        monitor: ClusterMonitor | None = None,
        retry: RetryPolicy | None = None,
        health: HealthMonitor | None = None,
        health_policy: HealthPolicy | None = None,
        track_health: bool = True,
        seed: int = 0,
        defer_fn: Callable[[float, Callable[[], None]], None] | None = None,
        registry=None,
        journal=None,
    ) -> None:
        self.grid = grid
        self.backend = backend
        #: lazily-created companion for callable *service* jobs (e.g. the
        #: portal's exploration workload) when the primary backend only
        #: understands argv — see :meth:`_backend_for`.
        self._callable_backend: CallableBackend | None = None
        self.scheduler = scheduler or FIFOScheduler()
        self.now_fn = now_fn or time.monotonic
        self.monitor = monitor or ClusterMonitor()
        #: distributor-wide default retry policy; ``None`` means jobs are
        #: not retried unless their request carries its own policy.
        self.retry = retry
        #: jitter source for retry backoff — seeded, so schedules reproduce.
        self.rng = np.random.default_rng(seed)
        if track_health:
            self.health: Optional[HealthMonitor] = health or HealthMonitor(grid, health_policy)
        else:
            self.health = None
        #: schedules a callback after a delay — wall-clock daemon timers by
        #: default, the DES event queue when the backend is simulated (so
        #: backoff/timeout wake-ups ride virtual time).
        self._defer_fn = defer_fn or self._default_defer
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self._handles: dict[str, ExecutionHandle] = {}
        self._lock = threading.RLock()
        #: signalled whenever a job reaches a terminal state or a drain
        #: finishes — :meth:`wait_all` blocks here instead of polling.
        self._idle = threading.Condition(self._lock)
        #: jobs whose dependencies are not yet resolved; invisible to the
        #: policy until released (or doomed) by a scheduling round.
        self._held: dict[str, Job] = {}
        #: live RUNNING set — completion bookkeeping and busy checks are
        #: O(active), never a scan over ``self.jobs``.
        self._running: dict[str, Job] = {}
        #: (estimated_end, cores) of running jobs, kept end-time-sorted.
        self._run_ends: RunningEstimates = RunningEstimates()
        self._run_entry: dict[str, tuple[float, int]] = {}
        # Coalesced-dispatch state.
        self._dirty = False
        self._draining = False
        # Fault-tolerance state: pending (deadline, seq, kind, job, epoch)
        # entries in a heap.
        self._deadlines: list[tuple[float, int, str, str, int]] = []
        self._deadline_seq = itertools.count()
        self._timer_at: Optional[float] = None
        #: per-distributor by default so counters never bleed between
        #: instances; pass a shared (or Null) registry to aggregate or
        #: disable.  Spans and events are stamped with ``now_fn`` time,
        #: so DES runs trace virtual seconds.
        self.telemetry = DispatchTelemetry(
            registry=registry, clock=self.now_fn, policy=self.scheduler.name
        )
        tel = self.telemetry
        # Hot-path counters are plain ints bumped with ``+=`` inside the
        # scheduling loop; the telemetry shim owns them and exports them
        # through read-time callbacks (the respcache pattern), so counting
        # costs the same whether telemetry is on or off.
        self._counters = tel.counters
        self._faults = tel.faults
        tel.g_queued.set_fn(lambda: len(self.queue) + len(self._held))
        tel.g_running.set_fn(lambda: len(self._running))
        self.monitor.bind(tel.registry)
        if self.health is not None:
            self.health.bind(tel.registry)
        #: monotone state-change counter: bumps on submit, start, finish,
        #: cancel and every fault event.  Cheap to read; the portal keys
        #: its cluster-status response cache on it, so a stale snapshot is
        #: never served.
        self._version = 0
        #: write-ahead journal (:class:`repro.durability.JobJournal`), or
        #: ``None`` for the historical in-memory-only behaviour.  Every
        #: state-machine transition below appends under the lock, so
        #: journal order is commit order; ``checkpoint()`` snapshots and
        #: compacts.  Duck-typed to keep the import graph acyclic.
        self.journal = journal
        #: the :class:`RecoveryReport` of the boot that built this
        #: instance, when it came through ``recover_distributor``.
        self.last_recovery = None
        #: the attached :class:`repro.fleet.ScalingManager`, when one is
        #: driving this distributor — set by the manager itself; the
        #: portal and bus surface it read-only.
        self.fleet = None
        if journal is not None:
            journal.bind(self.telemetry.registry, clock=self.now_fn)

    # -- submission -----------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Accept a request; returns the queued (or already running) Job."""
        job = self._accept(request)
        self.dispatch()
        return job

    def submit_array(self, request: JobRequest, count: int) -> list[Job]:
        """Submit ``count`` clones of ``request`` (a job array).

        Each element gets a ``name[k]`` suffix; elements are independent
        (no implied ordering).  Returns them in index order.

        The whole array is *batched*: every clone is enqueued first and a
        single dispatch round then places as many as fit, instead of one
        full scheduling round per element.
        """
        if count < 1:
            raise JobError(f"array count must be >= 1, got {count}")
        jobs = [
            self._accept(dataclasses.replace(request, name=f"{request.name}[{k}]"))
            for k in range(count)
        ]
        self.dispatch()
        return jobs

    def _accept(self, request: JobRequest) -> Job:
        """Validate and enqueue (or hold) a request without dispatching."""
        self._validate(request)
        job = Job(request)
        with self._lock:
            self.jobs[job.id] = job
            self._version += 1
            job.submitted_at = self.now_fn()
            job.retry_gate = self._retry_gate
            job.transition(JobState.QUEUED)
            if self.journal is not None:
                self.journal.record_submit(job)
            if request.wallclock_timeout_s is not None:
                self._push_deadline(
                    job.submitted_at + request.wallclock_timeout_s, "wall", job.id, -1
                )
            if request.after and self._dependency_state(job) != "ready":
                self._held[job.id] = job  # released (or doomed) by a round
            else:
                self.queue.push(job)
        return job

    def _validate(self, request: JobRequest) -> None:
        """Reject shapes the machine can never satisfy."""
        for dep in request.after:
            if dep not in self.jobs:
                raise JobError(f"dependency {dep!r} is not a known job id")
        if request.cores_per_task > self.grid.max_slave_cores:
            raise SchedulingError(
                f"a task needs {request.cores_per_task} cores but the largest node "
                f"has {self.grid.max_slave_cores}"
            )
        if request.total_cores > self.grid.cores_total:
            raise SchedulingError(
                f"job needs {request.total_cores} cores; the whole grid has {self.grid.cores_total}"
            )
        if request.need_gpu and not self.grid.gpu_nodes():
            raise SchedulingError("job needs a GPU but the grid has no GPU nodes")
        if request.node_type is not None and not self.grid.knows_type(request.node_type):
            raise SchedulingError(
                f"job needs node type {request.node_type!r} but the grid has no "
                f"such nodes and no pool advertises them"
            )

    # -- dispatch ------------------------------------------------------------
    def _dependency_state(self, job: Job) -> str:
        """'ready' | 'held' | 'doomed' for a queued job's dependencies."""
        doomed = False
        for dep_id in job.request.after:
            dep = self.jobs.get(dep_id)
            if dep is None or not dep.terminal:
                return "held"
            if job.request.after_ok and dep.state is not JobState.COMPLETED:
                doomed = True
        return "doomed" if doomed else "ready"

    def dispatch(self) -> int:
        """Request a scheduling pass; returns how many jobs this call started.

        Marks the distributor dirty and, if no drain is in flight, runs
        scheduling rounds until the dirty flag stays clear.  A call that
        lands while another thread is draining coalesces into that drain
        and returns 0 — the in-flight loop picks the work up.
        """
        with self._lock:
            self._counters["requests"] += 1
            self._dirty = True
            if self._draining:
                self._counters["coalesced"] += 1
                return 0
            self._draining = True
        started = 0
        try:
            while True:
                with self._lock:
                    if not self._dirty:
                        # Clearing _draining atomically with the dirty check
                        # closes the lost-wakeup window.
                        self._draining = False
                        self._idle.notify_all()
                        return started
                    self._dirty = False
                started += self._dispatch_round()
        except BaseException:
            with self._lock:
                self._draining = False
                self._idle.notify_all()
            raise

    def _dispatch_round(self) -> int:
        """One scheduling round; returns how many jobs were started."""
        started = 0
        tel = self.telemetry
        t0 = time.perf_counter() if tel.on else 0.0
        with self._lock:
            self._counters["rounds"] += 1
            now = self.now_fn()
            self._enforce_deadlines(now)
            self._rejoin_probation(now)
            # Dependency gating over the held side table only (the main
            # queue never carries unresolved dependencies): released jobs
            # re-enter the queue at their submission-order position, jobs
            # whose required-success dependency failed are cancelled.
            if self._held:
                for job in list(self._held.values()):
                    state = self._dependency_state(job)
                    if state == "held":
                        continue
                    del self._held[job.id]
                    if state == "ready":
                        self.queue.push(job)
                    else:  # doomed
                        job.error = "dependency failed"
                        job.try_transition(JobState.CANCELLED)
                        job.finished_at = self.now_fn()
                        if self.journal is not None:
                            self.journal.record_seal(job)
                        self.monitor.record_job(job)
            # Jobs still serving their retry backoff are invisible to the
            # policy; a wake-up is armed for the earliest one instead.
            eligible, next_ready = ready_for_dispatch(self.queue.snapshot(), now)
            if next_ready is not None:
                self._arm_timer(next_ready)
            view = CapacityView(self.grid)
            picks = self.scheduler.select(
                eligible, self.grid, now=now, running=self._run_ends,
                view=view,
            )
            self._counters["jobs_examined"] += len(eligible)
            self._counters["placements_tried"] += view.probes
            for job, alloc in picks:
                if not self.queue.remove(job):
                    continue  # raced with a cancel
                try:
                    self._reserve(job, alloc)
                except Exception:
                    # Placement raced with a node failure: requeue (the
                    # ordered queue restores its original position).
                    self.queue.push(job)
                    continue
                job.transition(JobState.RUNNING)
                job.started_at = self.now_fn()
                self._register_running(job)
                tel.job_started(job)
                if self.journal is not None:
                    self.journal.record_start(job)
                handle = self._backend_for(job).launch(job)
                self._handles[job.id] = handle
                handle.on_done(lambda j, h=handle: self._attempt_done(j, h))
                started += 1
            self._counters["jobs_started"] += started
            self._version += started
            self.monitor.sample(
                self.grid, self.now_fn(), queued=len(self.queue) + len(self._held)
            )
            if self.journal is not None and self.journal.snapshot_due:
                self.journal.snapshot(self.jobs)
        if tel.on:
            tel.h_round.observe(time.perf_counter() - t0)
        return started

    def _reserve(self, job: Job, alloc: Allocation) -> None:
        done: list[str] = []
        try:
            for node_name, cores in alloc.placement:
                self.grid.node(node_name).allocate(
                    job.id, cores,
                    memory_mb=job.request.memory_mb_per_task * (cores // job.request.cores_per_task),
                )
                done.append(node_name)
        except Exception:
            for node_name in done:
                self.grid.node(node_name).free(job.id)
            raise
        job.placement = alloc.as_dict()

    def _register_running(self, job: Job) -> None:
        """Track a just-started job in the O(active) running structures.

        Also opens the job's next attempt: the epoch bump (snapshotted by
        the handle the backend is about to create) and the run-time
        deadline for this attempt, when the request carries one.
        """
        job.attempt_epoch += 1
        self._running[job.id] = job
        if job.request.timeout_s is not None:
            self._push_deadline(
                job.started_at + job.request.timeout_s, "run", job.id, job.attempt_epoch
            )
        est = job.request.est_runtime_s
        if est is None:
            est = job.request.sim_duration
        if est is None:
            return  # estimate-less jobs are invisible to backfill
        entry = (job.started_at + est, job.request.total_cores)
        bisect.insort(self._run_ends, entry)
        self._run_entry[job.id] = entry

    def _deregister_running(self, job: Job) -> None:
        """Drop a job from the running structures (completion or fault)."""
        self._running.pop(job.id, None)
        entry = self._run_entry.pop(job.id, None)
        if entry is not None:
            i = bisect.bisect_left(self._run_ends, entry)
            if i < len(self._run_ends) and self._run_ends[i] == entry:
                del self._run_ends[i]

    def _running_estimates(self) -> RunningEstimates:
        """(estimated end, cores) for running jobs, end-sorted — O(active)."""
        with self._lock:
            return RunningEstimates(self._run_ends)

    # -- completion -----------------------------------------------------------
    def _attempt_done(self, job: Job, handle: ExecutionHandle) -> None:
        """Backend callback: one attempt finished (normally or not).

        A callback whose handle the distributor already retired (node
        death or enforced timeout popped it) is a zombie and is dropped;
        the fault path that retired it did all the bookkeeping.
        """
        with self._lock:
            if self._handles.get(job.id) is not handle:
                return  # superseded attempt
            del self._handles[job.id]
            if job.state is JobState.RETRYING:
                # The retry gate rerouted a FAILED/TIMEOUT outcome here.
                failure_class = "timeout" if job.error == "timeout" else "failed"
                if failure_class == "timeout":
                    self._faults["timeouts"] += 1
                self._finish_attempt(job, failure_class, job.error)
                self._requeue(job, failure_class)
            else:
                if job.state is JobState.TIMEOUT:
                    self._faults["timeouts"] += 1
                self._finish_attempt(job, job.state.value, job.error)
                self._seal(job)
        self.dispatch()

    def _finish_attempt(self, job: Job, outcome: str, error: Optional[str]) -> None:
        """Free the attempt's resources and record it on the lineage (lock held).

        Health accounting happens here: completions are heartbeats,
        failures/timeouts count against every node the attempt touched —
        crossing the flapping threshold drains the node (SUSPECT).
        """
        now = self.now_fn()
        for node_name in list(job.placement):
            # A scaled-in/reclaimed node may have left the inventory while
            # the attempt's completion callback was in flight.
            node = self.grid.get(node_name)
            if node is not None and node.holds(job.id):
                node.free(job.id)
        self._deregister_running(job)
        job.attempts.append(
            JobAttempt(
                no=job.attempt_epoch,
                placement=dict(job.placement),
                started_at=job.started_at,
                finished_at=now,
                outcome=outcome,
                error=error,
                exit_code=job.exit_code,
            )
        )
        if self.journal is not None:
            self.journal.record_attempt(job, job.attempts[-1])
        self.telemetry.attempt_finished(job, outcome, now)
        if self.health is not None:
            if outcome == "completed":
                for node_name in job.placement:
                    self.health.record_heartbeat(node_name, now)
            elif outcome in ("failed", "timeout"):
                for node_name in job.placement:
                    if self.health.record_failure(node_name, now):
                        node = self.grid.get(node_name)
                        if node is not None and node.state is NodeState.UP:
                            node.mark_suspect()
                            self._faults["nodes_suspected"] += 1
                            self._version += 1
                            if self.telemetry.on:
                                self.telemetry.events.emit(
                                    "warning", "node_suspected", node=node_name
                                )

    def _requeue(self, job: Job, failure_class: str) -> None:
        """RETRYING → QUEUED with backoff; arms a wake-up (lock held)."""
        policy = job.request.retry or self.retry
        delay = policy.delay_for(job.attempt_epoch, self.rng) if policy else 0.0
        if job.attempts and delay > 0:
            job.attempts[-1] = dataclasses.replace(job.attempts[-1], backoff_s=delay)
        now = self.now_fn()
        job.not_before = now + delay
        job.placement = {}
        job.exit_code = None
        job.error = None
        job.transition(JobState.QUEUED)
        self.queue.push(job)
        if self.journal is not None:
            self.journal.record_requeue(job)
        self._faults["retries"] += 1
        if failure_class == "node_lost":
            self._faults["reroutes"] += 1
        self._version += 1
        self._dirty = True
        if delay > 0:
            self._arm_timer(job.not_before)

    def _seal(self, job: Job) -> None:
        """Final accounting once a job reaches a terminal state (lock held)."""
        if job.finished_at is None:
            job.finished_at = self.now_fn()
        if self.journal is not None:
            self.journal.record_seal(job)
        self.monitor.record_job(job)
        self._version += 1
        self._idle.notify_all()

    # -- retry decisions --------------------------------------------------------
    def _retry_gate(self, job: Job, outcome: JobState) -> bool:
        """Installed on every job; the backend asks before sealing
        FAILED/TIMEOUT whether the distributor wants another attempt."""
        failure_class = "timeout" if outcome is JobState.TIMEOUT else "failed"
        with self._lock:
            return self._should_retry(job, failure_class, self.now_fn())

    def _should_retry(self, job: Job, failure_class: str, now: float) -> bool:
        """One more attempt allowed? Policy budget and wall budget (lock held)."""
        policy = job.request.retry or self.retry
        if policy is None or not policy.should_retry(failure_class, job.attempt_epoch):
            return False
        wall = job.request.wallclock_timeout_s
        if wall is not None and job.submitted_at is not None:
            if now - job.submitted_at >= wall:
                return False
        return True

    # -- deadline enforcement ---------------------------------------------------
    def _push_deadline(self, when: float, kind: str, job_id: str, epoch: int) -> None:
        """Queue a run/wall deadline and arm a wake-up for it (lock held)."""
        heapq.heappush(self._deadlines, (when, next(self._deadline_seq), kind, job_id, epoch))
        self._arm_timer(when)

    def _enforce_deadlines(self, now: float) -> None:
        """Fire every due deadline exactly once (lock held).

        Stale entries — the attempt ended, the job is terminal, or a
        newer attempt is running under a different epoch — are skipped.
        """
        while self._deadlines and self._deadlines[0][0] <= now:
            _, _, kind, job_id, epoch = heapq.heappop(self._deadlines)
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                continue
            if kind == "run":
                if job.state is JobState.RUNNING and epoch == job.attempt_epoch:
                    self._timeout_running(job, wall=False)
            elif job.state is JobState.QUEUED:
                # Wall budget expired while waiting (or backing off).
                self.queue.remove(job)
                self._held.pop(job.id, None)
                job.error = "wallclock timeout"
                job.transition(JobState.TIMEOUT)
                job.stdout.close()
                job.stderr.close()
                self._faults["wall_timeouts"] += 1
                self._seal(job)
            elif job.state is JobState.RUNNING:
                self._timeout_running(job, wall=True)
        if self._deadlines:
            # Earlier arms may have suppressed a wake-up for the new head.
            self._arm_timer(self._deadlines[0][0])

    def _timeout_running(self, job: Job, wall: bool) -> None:
        """Kill a RUNNING attempt whose deadline passed (lock held)."""
        handle = self._handles.pop(job.id, None)
        if handle is not None:
            handle.request_cancel()  # its eventual callback is now a zombie
        label = "wallclock timeout" if wall else "timeout"
        self._faults["wall_timeouts" if wall else "timeouts"] += 1
        self._finish_attempt(job, "timeout", label)
        if not wall and self._should_retry(job, "timeout", self.now_fn()):
            job.transition(JobState.RETRYING)
            self._requeue(job, "timeout")
        else:
            job.error = label
            job.transition(JobState.TIMEOUT)
            job.stdout.close()
            job.stderr.close()
            self._seal(job)

    # -- node fault API ---------------------------------------------------------
    def fail_node(self, node_name: str) -> list[Job]:
        """Take a node out of service, rerouting or failing its jobs.

        The node's running attempts are retired immediately (their
        eventual backend callbacks become zombies); each orphaned job is
        requeued onto surviving capacity when its retry budget allows the
        ``node_lost`` class, and sealed FAILED otherwise.  Returns the
        rerouted jobs.

        Idempotent: failing an already-DOWN node is a no-op returning
        ``[]`` — a spot reclamation racing a health-driven downing (or a
        duplicate RPC delivery) must not double-requeue or crash.
        """
        rerouted: list[Job] = []
        with self._lock:
            node = self.grid.node(node_name)
            if node.state is NodeState.DOWN:
                return rerouted
            victims = node.mark_down()
            now = self.now_fn()
            self._faults["node_failures"] += 1
            self._version += 1
            if self.health is not None:
                self.health.record_down(node_name, now)
            if self.telemetry.on:
                self.telemetry.events.emit(
                    "error", "node_failed", node=node_name, victims=len(victims)
                )
            for job_id in victims:
                job = self.jobs.get(job_id)
                if job is None:
                    continue
                handle = self._handles.pop(job_id, None)
                if handle is not None:
                    handle.request_cancel()
                if job.state is not JobState.RUNNING:
                    continue  # finished concurrently; nothing to reroute
                self._faults["jobs_orphaned"] += 1
                self._finish_attempt(job, "node_lost", f"node {node_name} failed")
                if self._should_retry(job, "node_lost", now):
                    job.transition(JobState.RETRYING)
                    self._requeue(job, "node_lost")
                    rerouted.append(job)
                else:
                    job.error = f"node {node_name} failed"
                    job.transition(JobState.FAILED)
                    job.stdout.close()
                    job.stderr.close()
                    self._seal(job)
        self.dispatch()
        return rerouted

    def recover_node(self, node_name: str) -> None:
        """Bring a DOWN/SUSPECT/DRAINING node back and re-run dispatch.

        Idempotent: recovering an already-UP node is a no-op — repeat
        deliveries of the same recovery event must not crash or inflate
        the fault counters.
        """
        with self._lock:
            node = self.grid.node(node_name)
            if node.state is NodeState.UP:
                return
            node.mark_up()
            self._faults["nodes_recovered"] += 1
            self._version += 1
            if self.health is not None:
                self.health.record_up(node_name, self.now_fn())
            if self.telemetry.on:
                self.telemetry.events.emit("info", "node_recovered", node=node_name)
        self.dispatch()

    # -- fleet membership API ---------------------------------------------------
    def add_node(self, segment_name: str, spec, name: Optional[str] = None):
        """Join a new node to the fleet; dispatches onto it immediately.

        The join flows through the capacity observer chain as an ordinary
        capacity event, so waiting queued jobs can land on the new node in
        the very next scheduling round.  Returns the
        :class:`~repro.cluster.node.Node`.
        """
        with self._lock:
            node = self.grid.add_node(segment_name, spec, name=name)
            self._faults["nodes_joined"] += 1
            self._version += 1
            if self.health is not None:
                self.health.record_up(node.name, self.now_fn())
            if self.telemetry.on:
                self.telemetry.events.emit(
                    "info", "node_joined", node=node.name, segment=segment_name
                )
        self.dispatch()
        return node

    def remove_node(self, node_name: str, force: bool = False) -> list[Job]:
        """Retire a node from the fleet entirely.

        Graceful removal (``force=False``) refuses a node still running
        work — scale-in drains first and removes once idle.  ``force=True``
        is the spot-reclamation path: running attempts are retired as
        ``node_lost`` through :meth:`fail_node` (same retry budget, same
        requeue) and the node then leaves the inventory.  Returns the
        rerouted jobs (always ``[]`` when graceful).
        """
        rerouted: list[Job] = []
        if not force:
            with self._lock:
                node = self.grid.node(node_name)
                if node.running_jobs:
                    raise ResourceError(
                        f"node {node_name!r} is still running "
                        f"{len(node.running_jobs)} job(s); drain it first or force"
                    )
                self._drop_node(node_name, forced=False)
            self.dispatch()
            return rerouted
        rerouted = self.fail_node(node_name)
        with self._lock:
            self._drop_node(node_name, forced=True)
        self.dispatch()
        return rerouted

    def _drop_node(self, node_name: str, forced: bool) -> None:
        """Forget a node and account for the removal (lock held)."""
        self.grid.remove_node(node_name)
        self._faults["nodes_removed"] += 1
        self._version += 1
        if self.telemetry.on:
            self.telemetry.events.emit(
                "info", "node_removed", node=node_name, forced=forced
            )

    def add_segment(self, spec):
        """Provision a whole new segment; dispatches onto it immediately.

        The reconfigure path's pure-growth case — a
        :class:`~repro.cluster.spec.SegmentSpec` becomes live capacity
        through the same observer chain as :meth:`add_node`.
        """
        with self._lock:
            seg = self.grid.add_segment(spec)
            self._faults["nodes_joined"] += len(seg.slaves)
            self._version += 1
            if self.health is not None:
                now = self.now_fn()
                for node in seg.slaves:
                    self.health.record_up(node.name, now)
            if self.telemetry.on:
                self.telemetry.events.emit(
                    "info", "segment_joined", segment=seg.name, slaves=len(seg.slaves)
                )
        self.dispatch()
        return seg

    def remove_segment(self, name: str):
        """Retire a whole drained segment (reconfigure destroy path)."""
        with self._lock:
            seg = self.grid.remove_segment(name)
            self._faults["nodes_removed"] += len(seg.slaves)
            self._version += 1
            if self.telemetry.on:
                self.telemetry.events.emit(
                    "info", "segment_removed", segment=name, slaves=len(seg.slaves)
                )
        self.dispatch()
        return seg

    def replace_master(self, spec, segment: Optional[str] = None):
        """Rebuild the grid master (or ``segment``'s master) with ``spec``.

        Masters run no compute attempts, so nothing needs rerouting; the
        reconfigure layer still classifies this destroy-recreate and
        refuses it while jobs are live.
        """
        with self._lock:
            if segment is None:
                node = self.grid.replace_master_server(spec)
            else:
                node = self.grid.replace_segment_master(segment, spec)
            self._version += 1
            if self.telemetry.on:
                self.telemetry.events.emit(
                    "info", "master_replaced", node=node.name,
                    segment=segment or "grid",
                )
        return node

    def _rejoin_probation(self, now: float) -> None:
        """Return idle SUSPECT nodes whose quiet period elapsed (lock held)."""
        if self.health is None:
            return
        for name in self.health.due_probation(now):
            node = self.grid.get(name)
            if node is None:
                continue  # removed from the fleet while on probation
            if node.state is NodeState.SUSPECT and not node.running_jobs:
                node.mark_up()
                self.health.record_up(name, now)
                self._faults["nodes_rejoined"] += 1
                self._version += 1
                if self.telemetry.on:
                    self.telemetry.events.emit("info", "node_rejoined", node=name)

    # -- wake-up timers ---------------------------------------------------------
    def _arm_timer(self, when: float) -> None:
        """Schedule a dispatch at ``when`` unless an earlier one is armed
        (lock held).  Extra firings are harmless — dispatch coalesces."""
        if self._timer_at is not None and self._timer_at <= when:
            return
        self._timer_at = when
        self._defer_fn(max(0.0, when - self.now_fn()), self._timer_fire)

    def _timer_fire(self) -> None:
        with self._lock:
            self._timer_at = None
        self.dispatch()

    def _backend_for(self, job: Job) -> ExecutionBackend:
        """The backend that should run this job.

        Callable requests submitted to an argv-oriented distributor (the
        portal's default uses :class:`SubprocessBackend`) are routed to a
        lazily-created companion :class:`CallableBackend` so in-process
        service jobs — notably the exploration workload — can share the
        cluster's queueing, placement and fault machinery.  A simulated
        distributor stays pure: virtual time must not silently spawn
        real threads, so the historical error is preserved there.
        """
        if (
            job.request.callable is not None
            and not isinstance(self.backend, (CallableBackend, SimulatedBackend))
        ):
            if self._callable_backend is None:
                self._callable_backend = CallableBackend()
            return self._callable_backend
        return self.backend

    def _default_defer(self, delay: float, cb: Callable[[], None]) -> None:
        if isinstance(self.backend, SimulatedBackend):
            sim = self.backend.sim
            sim._subscribe(sim.timeout(max(0.0, delay)), lambda _ev: cb())
        else:
            t = threading.Timer(max(0.0, delay), cb)
            t.daemon = True
            t.start()

    # -- control ---------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job in any non-terminal state. Returns success."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if job.terminal:
                return False
            if job.state in (JobState.PENDING, JobState.QUEUED):
                self.queue.remove(job)
                self._held.pop(job.id, None)
                job.try_transition(JobState.CANCELLED)
                job.finished_at = self.now_fn()
                if self.journal is not None:
                    self.journal.record_seal(job)
                self._version += 1
                self._idle.notify_all()
                return True
            handle = self._handles.get(job_id)
        if handle is not None:
            handle.request_cancel()
            return True
        return False

    def job(self, job_id: str) -> Job:
        """Look up a job by id."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job {job_id!r}") from None

    @property
    def version(self) -> int:
        """Monotone job-state-change counter (see ``_version``)."""
        return self._version

    # -- durability -------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Force a journal snapshot + compaction now; returns its summary.

        Exposed over the bus as ``cluster.checkpoint`` so an operator (or
        a pre-maintenance hook) can bound the replay work of the next
        boot.  Raises :class:`JobError` when no journal is configured.
        """
        if self.journal is None:
            raise JobError("distributor has no journal; durability is off")
        with self._lock:
            return self.journal.snapshot(self.jobs)

    def durability_stats(self) -> dict:
        """Journal/recovery counters (``{"enabled": False}`` when off)."""
        if self.journal is None:
            return {"enabled": False}
        with self._lock:
            out = self.journal.stats()
        if self.last_recovery is not None:
            out["last_recovery"] = self.last_recovery.as_dict()
        return out

    def control_state(self) -> dict:
        """The cheap freshness fingerprint remote front-ends poll.

        ``(version, cores_free)`` is exactly the pair the portal keys
        its cluster-status cache on; serving it as one small RPC lets a
        front-end revalidate a cached snapshot without shipping the full
        ``stats()`` rendering across the bus.
        """
        return {"version": self._version, "cores_free": self.grid.cores_free}

    def _busy(self) -> bool:
        """Anything queued, held on dependencies, or running? (lock held)"""
        return bool(len(self.queue) or self._held or self._running)

    def wait_all(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (wall-clock backends).

        Event-driven: waits on a condition variable signalled at every
        terminal transition and drain completion — no polling sleep.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._busy():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def stats(self) -> dict:
        """Queue/running/terminal counts, grid utilisation, dispatch counters."""
        with self._lock:
            by_state: dict[str, int] = {}
            for j in self.jobs.values():
                by_state[j.state.value] = by_state.get(j.state.value, 0) + 1
            return {
                "jobs": dict(by_state),
                "queued": len(self.queue) + len(self._held),
                "grid": self.grid.snapshot(),
                "policy": self.scheduler.name,
                "dispatch": self.telemetry.dispatch_counters(),
                "faults": self.telemetry.fault_counters(),
                "health": self.health.snapshot() if self.health is not None else None,
                "durability": (
                    self.journal.stats() if self.journal is not None
                    else {"enabled": False}
                ),
            }
