"""The job distributor (the paper's backend workhorse).

Section II: the web interface "creates a compilation and/or executor
object, which in turn upon success contacts a job distributor to
allocate resources on the cluster and finally dispatch the job onto
those resources".  :class:`JobDistributor` is that component:

* :meth:`submit` accepts a :class:`~repro.cluster.job.JobRequest`,
  queues it and immediately attempts dispatch;
* dispatch asks the configured scheduling policy for placements,
  reserves cores/memory on the chosen nodes, and hands the job to the
  execution backend;
* completion callbacks free the resources and re-trigger dispatch, so
  the queue drains as capacity appears.

Dispatch is *incremental and coalescing*: every trigger (submission,
completion, fault event) marks the distributor dirty and one drain loop
runs scheduling rounds until nothing is pending — concurrent triggers
merge into the round already in flight instead of stacking rounds.  A
round costs O(queue + active), not O(all jobs ever submitted): capacity
is read through the grid's incremental index (O(1) setup per round,
see :class:`~repro.cluster.scheduler.CapacityView`), running-job end
estimates live in a pre-sorted structure maintained on start/finish,
and dependency-held jobs wait in a side table so the policy never
rescans them.  ``stats()["dispatch"]`` exposes counters (rounds, jobs
examined, placements tried, ...) so the engine's work is observable.

The distributor is time-source agnostic: pass ``now_fn=lambda: sim.now``
with a :class:`SimulatedBackend` and the whole pipeline runs on virtual
time; with the default wall clock it serves the live portal.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Callable, Optional

from repro._errors import JobError, SchedulingError
from repro.cluster.backends import ExecutionBackend, ExecutionHandle
from repro.cluster.grid import Grid
from repro.cluster.job import Job, JobRequest, JobState
from repro.cluster.monitor import ClusterMonitor
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import (
    Allocation,
    CapacityView,
    FIFOScheduler,
    RunningEstimates,
    Scheduler,
)

__all__ = ["JobDistributor"]


class JobDistributor:
    """Allocate → dispatch → free, under a pluggable scheduling policy."""

    def __init__(
        self,
        grid: Grid,
        backend: ExecutionBackend,
        scheduler: Scheduler | None = None,
        now_fn: Callable[[], float] | None = None,
        monitor: ClusterMonitor | None = None,
    ) -> None:
        self.grid = grid
        self.backend = backend
        self.scheduler = scheduler or FIFOScheduler()
        self.now_fn = now_fn or time.monotonic
        self.monitor = monitor or ClusterMonitor()
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self._handles: dict[str, ExecutionHandle] = {}
        self._lock = threading.RLock()
        #: signalled whenever a job reaches a terminal state or a drain
        #: finishes — :meth:`wait_all` blocks here instead of polling.
        self._idle = threading.Condition(self._lock)
        #: jobs whose dependencies are not yet resolved; invisible to the
        #: policy until released (or doomed) by a scheduling round.
        self._held: dict[str, Job] = {}
        #: live RUNNING set — completion bookkeeping and busy checks are
        #: O(active), never a scan over ``self.jobs``.
        self._running: dict[str, Job] = {}
        #: (estimated_end, cores) of running jobs, kept end-time-sorted.
        self._run_ends: RunningEstimates = RunningEstimates()
        self._run_entry: dict[str, tuple[float, int]] = {}
        # Coalesced-dispatch state + observability counters.
        self._dirty = False
        self._draining = False
        self._counters = {
            "requests": 0,       # dispatch() calls (submit/completion/fault)
            "coalesced": 0,      # requests merged into a drain in flight
            "rounds": 0,         # scheduling rounds actually run
            "jobs_examined": 0,  # queue entries handed to the policy
            "placements_tried": 0,  # candidate packings attempted
            "jobs_started": 0,
        }
        #: monotone state-change counter: bumps on submit, start, finish
        #: and cancel.  Cheap to read; the portal keys its cluster-status
        #: response cache on it, so a stale snapshot is never served.
        self._version = 0

    # -- submission -----------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Accept a request; returns the queued (or already running) Job."""
        job = self._accept(request)
        self.dispatch()
        return job

    def submit_array(self, request: JobRequest, count: int) -> list[Job]:
        """Submit ``count`` clones of ``request`` (a job array).

        Each element gets a ``name[k]`` suffix; elements are independent
        (no implied ordering).  Returns them in index order.

        The whole array is *batched*: every clone is enqueued first and a
        single dispatch round then places as many as fit, instead of one
        full scheduling round per element.
        """
        if count < 1:
            raise JobError(f"array count must be >= 1, got {count}")
        import dataclasses

        jobs = [
            self._accept(dataclasses.replace(request, name=f"{request.name}[{k}]"))
            for k in range(count)
        ]
        self.dispatch()
        return jobs

    def _accept(self, request: JobRequest) -> Job:
        """Validate and enqueue (or hold) a request without dispatching."""
        self._validate(request)
        job = Job(request)
        with self._lock:
            self.jobs[job.id] = job
            self._version += 1
            job.submitted_at = self.now_fn()
            job.transition(JobState.QUEUED)
            if request.after and self._dependency_state(job) != "ready":
                self._held[job.id] = job  # released (or doomed) by a round
            else:
                self.queue.push(job)
        return job

    def _validate(self, request: JobRequest) -> None:
        """Reject shapes the machine can never satisfy."""
        for dep in request.after:
            if dep not in self.jobs:
                raise JobError(f"dependency {dep!r} is not a known job id")
        if request.cores_per_task > self.grid.max_slave_cores:
            raise SchedulingError(
                f"a task needs {request.cores_per_task} cores but the largest node "
                f"has {self.grid.max_slave_cores}"
            )
        if request.total_cores > self.grid.cores_total:
            raise SchedulingError(
                f"job needs {request.total_cores} cores; the whole grid has {self.grid.cores_total}"
            )
        if request.need_gpu and not self.grid.gpu_nodes():
            raise SchedulingError("job needs a GPU but the grid has no GPU nodes")

    # -- dispatch ------------------------------------------------------------
    def _dependency_state(self, job: Job) -> str:
        """'ready' | 'held' | 'doomed' for a queued job's dependencies."""
        doomed = False
        for dep_id in job.request.after:
            dep = self.jobs.get(dep_id)
            if dep is None or not dep.terminal:
                return "held"
            if job.request.after_ok and dep.state is not JobState.COMPLETED:
                doomed = True
        return "doomed" if doomed else "ready"

    def dispatch(self) -> int:
        """Request a scheduling pass; returns how many jobs this call started.

        Marks the distributor dirty and, if no drain is in flight, runs
        scheduling rounds until the dirty flag stays clear.  A call that
        lands while another thread is draining coalesces into that drain
        and returns 0 — the in-flight loop picks the work up.
        """
        with self._lock:
            self._counters["requests"] += 1
            self._dirty = True
            if self._draining:
                self._counters["coalesced"] += 1
                return 0
            self._draining = True
        started = 0
        try:
            while True:
                with self._lock:
                    if not self._dirty:
                        # Clearing _draining atomically with the dirty check
                        # closes the lost-wakeup window.
                        self._draining = False
                        self._idle.notify_all()
                        return started
                    self._dirty = False
                started += self._dispatch_round()
        except BaseException:
            with self._lock:
                self._draining = False
                self._idle.notify_all()
            raise

    def _dispatch_round(self) -> int:
        """One scheduling round; returns how many jobs were started."""
        started = 0
        with self._lock:
            self._counters["rounds"] += 1
            # Dependency gating over the held side table only (the main
            # queue never carries unresolved dependencies): released jobs
            # re-enter the queue at their submission-order position, jobs
            # whose required-success dependency failed are cancelled.
            if self._held:
                for job in list(self._held.values()):
                    state = self._dependency_state(job)
                    if state == "held":
                        continue
                    del self._held[job.id]
                    if state == "ready":
                        self.queue.push(job)
                    else:  # doomed
                        job.error = "dependency failed"
                        job.try_transition(JobState.CANCELLED)
                        job.finished_at = self.now_fn()
                        self.monitor.record_job(job)
            eligible = self.queue.snapshot()
            view = CapacityView(self.grid)
            picks = self.scheduler.select(
                eligible, self.grid, now=self.now_fn(), running=self._run_ends,
                view=view,
            )
            self._counters["jobs_examined"] += len(eligible)
            self._counters["placements_tried"] += view.probes
            for job, alloc in picks:
                if not self.queue.remove(job):
                    continue  # raced with a cancel
                try:
                    self._reserve(job, alloc)
                except Exception:
                    # Placement raced with a node failure: requeue (the
                    # ordered queue restores its original position).
                    self.queue.push(job)
                    continue
                job.transition(JobState.RUNNING)
                job.started_at = self.now_fn()
                self._register_running(job)
                handle = self.backend.launch(job)
                self._handles[job.id] = handle
                handle.on_done(self._on_finished)
                started += 1
            self._counters["jobs_started"] += started
            self._version += started
            self.monitor.sample(
                self.grid, self.now_fn(), queued=len(self.queue) + len(self._held)
            )
        return started

    def _reserve(self, job: Job, alloc: Allocation) -> None:
        done: list[str] = []
        try:
            for node_name, cores in alloc.placement:
                self.grid.node(node_name).allocate(
                    job.id, cores,
                    memory_mb=job.request.memory_mb_per_task * (cores // job.request.cores_per_task),
                )
                done.append(node_name)
        except Exception:
            for node_name in done:
                self.grid.node(node_name).free(job.id)
            raise
        job.placement = alloc.as_dict()

    def _register_running(self, job: Job) -> None:
        """Track a just-started job in the O(active) running structures."""
        self._running[job.id] = job
        est = job.request.est_runtime_s
        if est is None:
            est = job.request.sim_duration
        if est is None:
            return  # estimate-less jobs are invisible to backfill
        entry = (job.started_at + est, job.request.total_cores)
        bisect.insort(self._run_ends, entry)
        self._run_entry[job.id] = entry

    def _deregister_running(self, job: Job) -> None:
        """Drop a job from the running structures (completion or fault)."""
        self._running.pop(job.id, None)
        entry = self._run_entry.pop(job.id, None)
        if entry is not None:
            i = bisect.bisect_left(self._run_ends, entry)
            if i < len(self._run_ends) and self._run_ends[i] == entry:
                del self._run_ends[i]

    def _running_estimates(self) -> RunningEstimates:
        """(estimated end, cores) for running jobs, end-sorted — O(active)."""
        with self._lock:
            return RunningEstimates(self._run_ends)

    # -- completion -----------------------------------------------------------
    def _on_finished(self, job: Job) -> None:
        with self._lock:
            job.finished_at = self.now_fn()
            for node_name in list(job.placement):
                node = self.grid.node(node_name)
                if node.holds(job.id):
                    node.free(job.id)
            self._handles.pop(job.id, None)
            self._deregister_running(job)
            self.monitor.record_job(job)
            self._version += 1
            self._idle.notify_all()
        self.dispatch()

    # -- control ---------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job in any non-terminal state. Returns success."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if job.terminal:
                return False
            if job.state in (JobState.PENDING, JobState.QUEUED):
                self.queue.remove(job)
                self._held.pop(job.id, None)
                job.try_transition(JobState.CANCELLED)
                self._version += 1
                self._idle.notify_all()
                return True
            handle = self._handles.get(job_id)
        if handle is not None:
            handle.request_cancel()
            return True
        return False

    def job(self, job_id: str) -> Job:
        """Look up a job by id."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job {job_id!r}") from None

    @property
    def version(self) -> int:
        """Monotone job-state-change counter (see ``_version``)."""
        return self._version

    def _busy(self) -> bool:
        """Anything queued, held on dependencies, or running? (lock held)"""
        return bool(len(self.queue) or self._held or self._running)

    def wait_all(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (wall-clock backends).

        Event-driven: waits on a condition variable signalled at every
        terminal transition and drain completion — no polling sleep.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._busy():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def stats(self) -> dict:
        """Queue/running/terminal counts, grid utilisation, dispatch counters."""
        with self._lock:
            by_state: dict[str, int] = {}
            for j in self.jobs.values():
                by_state[j.state.value] = by_state.get(j.state.value, 0) + 1
            return {
                "jobs": dict(by_state),
                "queued": len(self.queue) + len(self._held),
                "grid": self.grid.snapshot(),
                "policy": self.scheduler.name,
                "dispatch": dict(self._counters),
            }
