"""A cluster node with core/memory accounting."""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro._errors import ResourceError
from repro.cluster.spec import NodeSpec

__all__ = ["NodeState", "Node"]


class NodeState(enum.Enum):
    """Availability of a node."""

    UP = "up"
    DOWN = "down"
    DRAINING = "draining"  # finishes running work, accepts nothing new
    SUSPECT = "suspect"    # health-flagged (flapping): drained until probation ends


class Node:
    """One machine: tracks which jobs hold how many cores / how much memory.

    All mutation goes through :meth:`allocate` / :meth:`free`, which keep
    the invariant ``0 <= used <= capacity`` and reject double frees —
    property-based tests hammer exactly this.

    Used totals are maintained incrementally (``cores_free`` is O(1)),
    and every mutation notifies an optional observer — the owning
    :class:`~repro.cluster.segment.Segment` — so segment/grid free-capacity
    indexes stay current without rescanning the inventory.
    """

    def __init__(self, name: str, spec: NodeSpec, segment: str = "") -> None:
        self.name = name
        self.spec = spec
        self.segment = segment
        self.state = NodeState.UP
        self._job_cores: Dict[str, int] = {}
        self._job_memory: Dict[str, int] = {}
        self._cores_used = 0
        self._memory_used = 0
        #: capacity-change callback, set by the owning segment (if any)
        self._observer: Optional[Callable[["Node"], None]] = None

    def _notify(self) -> None:
        if self._observer is not None:
            self._observer(self)

    # -- capacity ----------------------------------------------------------
    @property
    def cores_used(self) -> int:
        return self._cores_used

    @property
    def cores_free(self) -> int:
        return self.spec.cores - self._cores_used if self.state is NodeState.UP else 0

    @property
    def memory_used_mb(self) -> int:
        return self._memory_used

    @property
    def memory_free_mb(self) -> int:
        return self.spec.memory_mb - self._memory_used if self.state is NodeState.UP else 0

    @property
    def load(self) -> float:
        """Fraction of cores in use (0..1)."""
        return self._cores_used / self.spec.cores

    @property
    def running_jobs(self) -> tuple[str, ...]:
        return tuple(self._job_cores)

    # -- allocation --------------------------------------------------------
    def can_fit(
        self,
        cores: int,
        memory_mb: int = 0,
        need_gpu: bool = False,
        node_type: Optional[str] = None,
    ) -> bool:
        """Would an allocation of this shape succeed right now?

        ``node_type`` (when given) must match the node's capability tag
        exactly — a job pinned to ``"gpu"`` never lands on a ``"standard"``
        node and vice versa.
        """
        if self.state is not NodeState.UP:
            return False
        if need_gpu and not self.spec.has_gpu:
            return False
        if node_type is not None and self.spec.node_type != node_type:
            return False
        return cores <= self.cores_free and memory_mb <= self.memory_free_mb

    def allocate(self, job_id: str, cores: int, memory_mb: int = 0) -> None:
        """Reserve resources for ``job_id``. Raises on oversubscription."""
        if cores < 1:
            raise ResourceError(f"allocation must take >= 1 core, got {cores}")
        if self.state is not NodeState.UP:
            raise ResourceError(f"node {self.name} is {self.state.value}, cannot allocate")
        if job_id in self._job_cores:
            raise ResourceError(f"job {job_id} already holds cores on node {self.name}")
        if cores > self.cores_free:
            raise ResourceError(
                f"node {self.name}: requested {cores} cores, only {self.cores_free} free"
            )
        if memory_mb > self.memory_free_mb:
            raise ResourceError(
                f"node {self.name}: requested {memory_mb} MB, only {self.memory_free_mb} free"
            )
        self._job_cores[job_id] = cores
        self._cores_used += cores
        if memory_mb:
            self._job_memory[job_id] = memory_mb
            self._memory_used += memory_mb
        self._notify()

    def free(self, job_id: str) -> None:
        """Release everything ``job_id`` holds here. Raises on double free."""
        if job_id not in self._job_cores:
            raise ResourceError(f"job {job_id} holds nothing on node {self.name}")
        self._cores_used -= self._job_cores.pop(job_id)
        self._memory_used -= self._job_memory.pop(job_id, 0)
        self._notify()

    def holds(self, job_id: str) -> bool:
        """Whether ``job_id`` currently has an allocation here."""
        return job_id in self._job_cores

    # -- state transitions ------------------------------------------------------
    def mark_down(self) -> tuple[str, ...]:
        """Take the node down; returns ids of jobs that were running here."""
        victims = self.running_jobs
        self.state = NodeState.DOWN
        self._job_cores.clear()
        self._job_memory.clear()
        self._cores_used = 0
        self._memory_used = 0
        self._notify()
        return victims

    def mark_up(self) -> None:
        """Bring the node back into service (empty)."""
        self.state = NodeState.UP
        self._notify()

    def drain(self) -> None:
        """Stop accepting new work; running jobs continue."""
        if self.state is NodeState.UP:
            self.state = NodeState.DRAINING
            self._notify()

    def mark_suspect(self) -> None:
        """Health-flag the node: like draining, but owned by the health
        monitor — running jobs finish, placement skips it, and it rejoins
        automatically once its probation window passes without failures."""
        if self.state in (NodeState.UP, NodeState.DRAINING):
            self.state = NodeState.SUSPECT
            self._notify()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.name} {self.state.value} "
            f"{self.cores_used}/{self.spec.cores} cores>"
        )
