"""Node failure/recovery injection.

Failure-injection tests use this to verify the distributor's behaviour
when nodes vanish mid-run: running jobs on the dead node fail (and may
be resubmitted), queued work reroutes to surviving nodes, and a
recovered node rejoins the pool.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._errors import ResourceError
from repro.cluster.distributor import JobDistributor
from repro.cluster.job import JobState
from repro.cluster.node import NodeState

__all__ = ["FaultInjector"]


class FaultInjector:
    """Kill and revive nodes of a distributor's grid."""

    def __init__(self, distributor: JobDistributor, seed: int = 0) -> None:
        self.distributor = distributor
        self._rng = np.random.default_rng(seed)
        self.killed: list[str] = []
        self.victim_jobs: list[str] = []

    def kill_node(self, node_name: str, resubmit: bool = False) -> list[str]:
        """Take one node down; fail (or resubmit) the jobs running on it.

        Returns ids of affected jobs.
        """
        node = self.distributor.grid.node(node_name)
        if node.state is NodeState.DOWN:
            raise ResourceError(f"node {node_name} is already down")
        victims = node.mark_down()
        self.killed.append(node_name)
        affected = []
        for job_id in victims:
            job = self.distributor.jobs.get(job_id)
            if job is None:
                continue
            affected.append(job_id)
            self.victim_jobs.append(job_id)
            # The node lost the allocation; scrub it from the job and
            # mark the job failed (its processes died with the node).
            job.placement.pop(node_name, None)
            handle = self.distributor._handles.get(job_id)
            if handle is not None:
                handle.request_cancel()
            if job.state is JobState.RUNNING:
                job.error = f"node {node_name} failed"
                job.try_transition(JobState.FAILED)
                job.finished_at = self.distributor.now_fn()
                # Free whatever the job still holds elsewhere.
                for other in list(job.placement):
                    n = self.distributor.grid.node(other)
                    if n.holds(job_id):
                        n.free(job_id)
                job.placement.clear()
                # Drop it from the running index now — its backend handle
                # (if any) completes later, but the scheduler must stop
                # counting the dead job's cores immediately.
                self.distributor._deregister_running(job)
            if resubmit:
                self.distributor.submit(job.request)
        self.distributor.dispatch()
        return affected

    def kill_random_node(self, resubmit: bool = False) -> tuple[str, list[str]]:
        """Kill a uniformly-chosen up node. Returns (name, affected jobs)."""
        up = self.distributor.grid.up_compute_nodes()
        if not up:
            raise ResourceError("no up nodes left to kill")
        node = up[int(self._rng.integers(0, len(up)))]
        return node.name, self.kill_node(node.name, resubmit=resubmit)

    def revive_node(self, node_name: str) -> None:
        """Bring a dead node back (empty) and re-run dispatch."""
        node = self.distributor.grid.node(node_name)
        if node.state is not NodeState.DOWN:
            raise ResourceError(f"node {node_name} is not down")
        node.mark_up()
        if node_name in self.killed:
            self.killed.remove(node_name)
        self.distributor.dispatch()

    def revive_all(self) -> None:
        """Revive every node this injector killed."""
        for name in list(self.killed):
            self.revive_node(name)

    # -- planned maintenance ------------------------------------------------
    def drain_node(self, node_name: str) -> tuple[str, ...]:
        """Put a node into DRAINING: running jobs finish, nothing new lands.

        Returns the ids of the jobs still running there.  Once they
        complete, call :meth:`maintenance_done` (or ``kill_node``) to
        take it down, and ``revive_node`` after the maintenance window.
        """
        node = self.distributor.grid.node(node_name)
        node.drain()
        return node.running_jobs

    def maintenance_done(self, node_name: str) -> None:
        """Return a drained (now idle) node to service."""
        node = self.distributor.grid.node(node_name)
        if node.running_jobs:
            raise ResourceError(
                f"node {node_name} still runs {list(node.running_jobs)}; wait for drain"
            )
        node.mark_up()
        self.distributor.dispatch()
