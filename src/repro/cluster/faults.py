"""Node failure/recovery injection.

Failure-injection tests use this to verify the distributor's behaviour
when nodes vanish mid-run.  Since the fault-tolerance layer landed, the
injector is a thin veneer over the distributor's own first-class API —
:meth:`JobDistributor.fail_node` / :meth:`JobDistributor.recover_node` —
rather than poking at handles and placements directly: killing a node
retires its attempts, reroutes jobs with ``node_lost`` retry budget to
surviving nodes and seals the rest FAILED, all under the distributor's
lock, with lineage recorded and ``stats()["faults"]`` counting the
damage.
"""

from __future__ import annotations

import numpy as np

from repro._errors import ResourceError
from repro.cluster.distributor import JobDistributor
from repro.cluster.job import JobState
from repro.cluster.node import NodeState

__all__ = ["FaultInjector"]


class FaultInjector:
    """Kill and revive nodes of a distributor's grid."""

    def __init__(self, distributor: JobDistributor, seed: int = 0) -> None:
        self.distributor = distributor
        self._rng = np.random.default_rng(seed)
        self.killed: list[str] = []
        self.victim_jobs: list[str] = []

    def kill_node(self, node_name: str, resubmit: bool = False) -> list[str]:
        """Take one node down via the distributor's fault path.

        Jobs running there either reroute (their retry policy covers
        ``node_lost``) or seal FAILED.  With ``resubmit=True``, each job
        that sealed FAILED is resubmitted as a fresh clone of its request
        — the legacy recovery mode from before first-class rerouting.

        Returns ids of affected jobs.
        """
        dist = self.distributor
        node = dist.grid.node(node_name)
        if node.state is NodeState.DOWN:
            # The distributor's fail_node is idempotent (duplicate fault
            # deliveries no-op); the injector keeps the strict test-facing
            # contract — killing a dead node is a scripting mistake.
            raise ResourceError(f"node {node_name!r} is already down")
        victims = list(node.running_jobs)
        dist.fail_node(node_name)
        self.killed.append(node_name)
        self.victim_jobs.extend(victims)
        if resubmit:
            for job_id in victims:
                job = dist.jobs.get(job_id)
                if job is not None and job.state is JobState.FAILED:
                    dist.submit(job.request)
        return victims

    def kill_random_node(self, resubmit: bool = False) -> tuple[str, list[str]]:
        """Kill a uniformly-chosen up node. Returns (name, affected jobs)."""
        up = self.distributor.grid.up_compute_nodes()
        if not up:
            raise ResourceError("no up nodes left to kill")
        node = up[int(self._rng.integers(0, len(up)))]
        return node.name, self.kill_node(node.name, resubmit=resubmit)

    def revive_node(self, node_name: str) -> None:
        """Bring a dead node back (empty) and re-run dispatch."""
        node = self.distributor.grid.node(node_name)
        if node.state is not NodeState.DOWN:
            raise ResourceError(f"node {node_name} is not down")
        self.distributor.recover_node(node_name)
        if node_name in self.killed:
            self.killed.remove(node_name)

    def revive_all(self) -> None:
        """Revive every node this injector killed."""
        for name in list(self.killed):
            self.revive_node(name)

    # -- crash injection ------------------------------------------------------
    def crash_points(self) -> tuple[str, ...]:
        """The distributor's instrumented crash points (durability on)."""
        from repro.durability.crashpoints import CRASH_POINTS

        return CRASH_POINTS

    def arm_crash(self, point: str, at: int = 1):
        """Arm a deterministic process crash at a journal crash point.

        The ``at``-th passage through ``point`` raises
        :class:`~repro.durability.crashpoints.SimulatedCrash` — a
        ``BaseException``, so the distributor's own error guards cannot
        absorb it and it unwinds like ``kill -9`` would.  Requires the
        distributor to run with a journal (there is nothing to crash
        into otherwise).  Returns the journal's
        :class:`~repro.durability.crashpoints.CrashPoints` registry so
        tests can inspect ``fired`` or disarm.
        """
        dist = self.distributor
        if dist.journal is None:
            raise ResourceError(
                "arm_crash needs a journaled distributor (journal=JobJournal(...))"
            )
        crash = dist.journal.store.crash
        crash.arm(point, at=at)
        return crash

    # -- planned maintenance ------------------------------------------------
    def drain_node(self, node_name: str) -> tuple[str, ...]:
        """Put a node into DRAINING: running jobs finish, nothing new lands.

        Returns the ids of the jobs still running there.  Once they
        complete, call :meth:`maintenance_done` (or ``kill_node``) to
        take it down, and ``revive_node`` after the maintenance window.
        """
        node = self.distributor.grid.node(node_name)
        node.drain()
        return node.running_jobs

    def maintenance_done(self, node_name: str) -> None:
        """Return a drained (now idle) node to service."""
        node = self.distributor.grid.node(node_name)
        if node.running_jobs:
            raise ResourceError(
                f"node {node_name} still runs {list(node.running_jobs)}; wait for drain"
            )
        self.distributor.recover_node(node_name)
