"""Utilisation sampling and per-job accounting."""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.grid import Grid
from repro.cluster.job import Job

__all__ = ["AccountingRecord", "UtilisationSample", "ClusterMonitor"]


@dataclass(frozen=True)
class AccountingRecord:
    """One finished job's accounting line."""

    job_id: str
    name: str
    owner: str
    state: str
    total_cores: int
    wait_s: Optional[float]
    runtime_s: Optional[float]

    @property
    def core_seconds(self) -> Optional[float]:
        if self.runtime_s is None:
            return None
        return self.runtime_s * self.total_cores


@dataclass(frozen=True)
class UtilisationSample:
    """Grid load at one instant."""

    t: float
    load: float
    cores_free: int
    queued: int


class ClusterMonitor:
    """Collects utilisation samples and accounting records.

    The portal's monitor page and the scheduling benchmarks both read
    from here; everything is thread-safe.  Utilisation samples live in a
    bounded ring buffer (``max_samples``, default 4096): one sample is
    taken per dispatch round, so an unbounded buffer would grow forever
    on a long-running portal — the ring keeps the newest window and
    makes each insert O(1).
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: deque[UtilisationSample] = deque(maxlen=max_samples)
        self._records: list[AccountingRecord] = []
        self._lock = threading.Lock()

    def sample(self, grid: Grid, t: float, queued: int = 0) -> None:
        """Record the grid's load at time ``t`` (evicts the oldest when full)."""
        s = UtilisationSample(t=t, load=grid.load, cores_free=grid.cores_free, queued=queued)
        with self._lock:
            self._samples.append(s)

    def record_job(self, job: Job) -> None:
        """Append the accounting line for a finished job."""
        rec = AccountingRecord(
            job_id=job.id,
            name=job.request.name,
            owner=job.request.owner,
            state=job.state.value,
            total_cores=job.request.total_cores,
            wait_s=job.wait_s,
            runtime_s=job.runtime_s,
        )
        with self._lock:
            self._records.append(rec)

    # -- reads ------------------------------------------------------------
    @property
    def records(self) -> list[AccountingRecord]:
        with self._lock:
            return list(self._records)

    @property
    def samples(self) -> list[UtilisationSample]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> dict:
        """Aggregate statistics over all accounting records."""
        recs = self.records
        waits = np.array([r.wait_s for r in recs if r.wait_s is not None], dtype=float)
        runs = np.array([r.runtime_s for r in recs if r.runtime_s is not None], dtype=float)
        by_state: dict[str, int] = {}
        for r in recs:
            by_state[r.state] = by_state.get(r.state, 0) + 1
        return {
            "jobs_finished": len(recs),
            "by_state": by_state,
            "mean_wait_s": float(waits.mean()) if waits.size else 0.0,
            "p95_wait_s": float(np.percentile(waits, 95)) if waits.size else 0.0,
            "mean_runtime_s": float(runs.mean()) if runs.size else 0.0,
            "core_seconds": float(
                sum(r.core_seconds for r in recs if r.core_seconds is not None)
            ),
        }

    def mean_load(self) -> float:
        """Time-unweighted mean of sampled loads."""
        samples = self.samples
        if not samples:
            return 0.0
        return float(np.mean([s.load for s in samples]))
