"""Utilisation sampling, per-job accounting, and node-health tracking.

:class:`ClusterMonitor` is the paper's monitor page (load samples +
accounting log).  :class:`HealthMonitor` is the fault-tolerance layer's
memory: per-node heartbeat/failure history, SUSPECT decisions for
flapping nodes, probation-based rejoin, and the cluster-wide degraded
flag the portal surfaces as a banner.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.grid import Grid
from repro.cluster.job import Job
from repro.cluster.node import NodeState

__all__ = [
    "AccountingRecord",
    "UtilisationSample",
    "ClusterMonitor",
    "HealthPolicy",
    "NodeHealth",
    "HealthMonitor",
]


@dataclass(frozen=True)
class AccountingRecord:
    """One finished job's accounting line."""

    job_id: str
    name: str
    owner: str
    state: str
    total_cores: int
    wait_s: Optional[float]
    runtime_s: Optional[float]

    @property
    def core_seconds(self) -> Optional[float]:
        if self.runtime_s is None:
            return None
        return self.runtime_s * self.total_cores


@dataclass(frozen=True)
class UtilisationSample:
    """Grid load at one instant."""

    t: float
    load: float
    cores_free: int
    queued: int


class ClusterMonitor:
    """Collects utilisation samples and accounting records.

    The portal's monitor page and the scheduling benchmarks both read
    from here; everything is thread-safe.  Utilisation samples live in a
    bounded ring buffer (``max_samples``, default 4096): one sample is
    taken per dispatch round, so an unbounded buffer would grow forever
    on a long-running portal — the ring keeps the newest window and
    makes each insert O(1).
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: deque[UtilisationSample] = deque(maxlen=max_samples)
        self._records: list[AccountingRecord] = []
        self._lock = threading.Lock()
        self._tel: Optional[dict] = None

    def bind(self, registry) -> None:
        """Mirror this monitor's outputs into a metrics registry.

        Idempotent on purpose: a monitor shared between distributors
        keeps its first binding (first registry wins) so its gauges are
        never split across snapshots.
        """
        if self._tel is not None or not registry.enabled:
            return
        # The utilisation gauges read the *latest sample* at scrape time,
        # so sampling itself stays exactly as cheap as before binding.
        samples = self._samples
        registry.gauge("repro_cluster_load", "fraction of cores allocated").set_fn(
            lambda: samples[-1].load if samples else 0.0
        )
        registry.gauge("repro_cluster_cores_free", "unallocated cores").set_fn(
            lambda: samples[-1].cores_free if samples else 0
        )
        registry.gauge(
            "repro_cluster_queued_jobs", "jobs queued or dependency-held"
        ).set_fn(lambda: samples[-1].queued if samples else 0)
        self._tel = {
            "wait": registry.histogram(
                "repro_cluster_job_wait_seconds", "submit-to-start wait of finished jobs"
            ),
            "runtime": registry.histogram(
                "repro_cluster_job_runtime_seconds", "run time of finished jobs"
            ),
            "finished": registry.counter(
                "repro_cluster_jobs_finished_total",
                "finished jobs by terminal state",
                labels=("state",),
            ),
            "core_seconds": registry.counter(
                "repro_cluster_core_seconds_total", "core-seconds consumed by finished jobs"
            ),
            # per-state children resolved once, then hit via dict.get
            "finished_children": {},
        }

    def sample(self, grid: Grid, t: float, queued: int = 0) -> None:
        """Record the grid's load at time ``t`` (evicts the oldest when full)."""
        s = UtilisationSample(t=t, load=grid.load, cores_free=grid.cores_free, queued=queued)
        with self._lock:
            self._samples.append(s)

    def record_job(self, job: Job) -> None:
        """Append the accounting line for a finished job."""
        rec = AccountingRecord(
            job_id=job.id,
            name=job.request.name,
            owner=job.request.owner,
            state=job.state.value,
            total_cores=job.request.total_cores,
            wait_s=job.wait_s,
            runtime_s=job.runtime_s,
        )
        with self._lock:
            self._records.append(rec)
        tel = self._tel
        if tel is not None:
            children = tel["finished_children"]
            child = children.get(rec.state)
            if child is None:
                child = children[rec.state] = tel["finished"].labels(rec.state)
            child.inc()
            if rec.wait_s is not None:
                tel["wait"].observe(rec.wait_s)
            if rec.runtime_s is not None:
                tel["runtime"].observe(rec.runtime_s)
            if rec.core_seconds is not None:
                tel["core_seconds"].inc(rec.core_seconds)

    # -- reads ------------------------------------------------------------
    @property
    def records(self) -> list[AccountingRecord]:
        with self._lock:
            return list(self._records)

    @property
    def samples(self) -> list[UtilisationSample]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> dict:
        """Aggregate statistics over all accounting records.

        The latency aggregates are ``None`` when no record carries the
        underlying measurement — a cluster that has finished nothing has
        *no data*, which is not the same as a zero-second wait.
        ``core_seconds`` stays a plain sum (an empty sum really is 0).
        """
        recs = self.records
        waits = np.array([r.wait_s for r in recs if r.wait_s is not None], dtype=float)
        runs = np.array([r.runtime_s for r in recs if r.runtime_s is not None], dtype=float)
        by_state: dict[str, int] = {}
        for r in recs:
            by_state[r.state] = by_state.get(r.state, 0) + 1
        return {
            "jobs_finished": len(recs),
            "by_state": by_state,
            "mean_wait_s": float(waits.mean()) if waits.size else None,
            "p95_wait_s": float(np.percentile(waits, 95)) if waits.size else None,
            "mean_runtime_s": float(runs.mean()) if runs.size else None,
            "core_seconds": float(
                sum(r.core_seconds for r in recs if r.core_seconds is not None)
            ),
        }

    def mean_load(self) -> Optional[float]:
        """Time-unweighted mean of sampled loads; ``None`` before any sample.

        Returning 0.0 for an empty window would conflate "idle grid"
        with "never sampled".
        """
        samples = self.samples
        if not samples:
            return None
        return float(np.mean([s.load for s in samples]))


# -- node health -----------------------------------------------------------
@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for the health monitor's SUSPECT/degraded decisions."""

    suspect_after: int = 3
    """Attempt failures within ``window_s`` that flag a node SUSPECT."""
    window_s: float = 60.0
    """Sliding window over which failures count as flapping."""
    probation_s: float = 120.0
    """Quiet time after which a SUSPECT node is eligible to rejoin."""
    degraded_below: float = 0.5
    """Cluster is *degraded* when ``cores_up / cores_total`` drops below
    this fraction — the portal shows a banner and ``stats()`` flags it."""

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {self.suspect_after}")
        if self.window_s <= 0 or self.probation_s < 0:
            raise ValueError("window_s must be > 0 and probation_s >= 0")
        if not 0 <= self.degraded_below <= 1:
            raise ValueError(f"degraded_below must be in [0, 1], got {self.degraded_below}")


@dataclass
class NodeHealth:
    """Rolling health record for one node."""

    failures: deque = field(default_factory=deque)  # recent failure times
    failures_total: int = 0
    last_failure: Optional[float] = None
    last_heartbeat: Optional[float] = None
    suspected_at: Optional[float] = None
    down_at: Optional[float] = None


class HealthMonitor:
    """Per-node failure/heartbeat history feeding placement decisions.

    The distributor reports attempt completions here: successes count as
    heartbeats, failures accumulate in a sliding window.  When a node
    collects ``suspect_after`` failures within ``window_s`` the monitor
    asks for it to be drained (SUSPECT); after ``probation_s`` without
    further failures :meth:`due_probation` offers it back.  Because a
    SUSPECT/DOWN node exposes zero free capacity through the incremental
    node → segment → grid index, the scheduler avoids unhealthy nodes
    with no policy-side changes at all.

    Thread-safe; the distributor calls in under its own lock but the
    portal may snapshot concurrently.
    """

    def __init__(self, grid: Grid, policy: HealthPolicy | None = None) -> None:
        self.grid = grid
        self.policy = policy or HealthPolicy()
        # Pre-populate one entry per node: the dict never changes shape
        # afterwards, so hot-path reads (heartbeats) need no lock.
        self._nodes: dict[str, NodeHealth] = {
            node.name: NodeHealth() for node in grid.compute_nodes()
        }
        self._suspects = 0  # nodes with suspected_at set; due_probation fast path
        self._lock = threading.Lock()
        self._c_failures = None
        self._c_heartbeats = None

    def bind(self, registry) -> None:
        """Mirror health state into a metrics registry (first registry wins).

        The gauges are callback-derived: they read the grid/monitor at
        scrape time, so the heartbeat hot path stays lock-free and pays
        only one counter increment.
        """
        if self._c_failures is not None or not registry.enabled:
            return
        self._c_failures = registry.counter(
            "repro_health_failures_total", "attempt failures charged to nodes"
        )
        self._c_heartbeats = registry.counter(
            "repro_health_heartbeats_total", "successful-attempt heartbeats"
        )
        registry.gauge(
            "repro_health_up_fraction", "surviving cores / total cores"
        ).set_fn(lambda: self.up_fraction)
        registry.gauge(
            "repro_health_degraded", "1 when surviving capacity is below threshold"
        ).set_fn(lambda: 1.0 if self.degraded else 0.0)
        registry.gauge("repro_health_suspect_nodes", "nodes marked SUSPECT").set_fn(
            lambda: sum(
                1 for n in self.grid.compute_nodes() if n.state is NodeState.SUSPECT
            )
        )
        registry.gauge("repro_health_down_nodes", "nodes out of service").set_fn(
            lambda: sum(
                1 for n in self.grid.compute_nodes() if n.state is NodeState.DOWN
            )
        )

    def _entry(self, node_name: str) -> NodeHealth:
        entry = self._nodes.get(node_name)
        if entry is None:
            entry = self._nodes[node_name] = NodeHealth()
        return entry

    # -- event intake ----------------------------------------------------
    def record_heartbeat(self, node_name: str, t: float) -> None:
        """A successful attempt (or explicit probe) touched the node.

        Lock-free on the hot path: this fires for every node of every
        completed job, and a plain timestamp store on a pre-existing
        entry is atomic enough (entries are created under the lock).
        """
        entry = self._nodes.get(node_name)
        if entry is None:
            with self._lock:
                entry = self._entry(node_name)
        entry.last_heartbeat = t
        if self._c_heartbeats is not None:
            self._c_heartbeats.inc()

    def record_failure(self, node_name: str, t: float) -> bool:
        """Count an attempt failure against the node.

        Returns ``True`` when the node just crossed the flapping
        threshold and should be marked SUSPECT by the caller.
        """
        if self._c_failures is not None:
            self._c_failures.inc()
        with self._lock:
            entry = self._entry(node_name)
            entry.failures_total += 1
            entry.last_failure = t
            window = entry.failures
            window.append(t)
            while window and window[0] < t - self.policy.window_s:
                window.popleft()
            if entry.suspected_at is None and len(window) >= self.policy.suspect_after:
                entry.suspected_at = t
                self._suspects += 1
                return True
            return False

    def record_down(self, node_name: str, t: float) -> None:
        """The node left service entirely (killed / crashed)."""
        with self._lock:
            entry = self._entry(node_name)
            entry.down_at = t
            if entry.suspected_at is not None:
                self._suspects -= 1
            entry.suspected_at = None

    def record_up(self, node_name: str, t: float) -> None:
        """The node rejoined service; its history restarts clean."""
        with self._lock:
            entry = self._entry(node_name)
            entry.failures.clear()
            if entry.suspected_at is not None:
                self._suspects -= 1
            entry.suspected_at = None
            entry.down_at = None
            entry.last_heartbeat = t

    # -- decisions ---------------------------------------------------------
    def due_probation(self, t: float) -> list[str]:
        """SUSPECT nodes whose quiet period has elapsed, oldest first."""
        if not self._suspects:
            # unsynchronised fast path: a stale zero only defers the rejoin
            # to the next dispatch round, and zero is the steady state —
            # this runs once per round so it must not take the lock
            return []
        with self._lock:
            due = [
                (entry.suspected_at, name)
                for name, entry in self._nodes.items()
                if entry.suspected_at is not None
                and t - max(entry.suspected_at, entry.last_failure or 0.0)
                >= self.policy.probation_s
            ]
        return [name for _, name in sorted(due)]

    @property
    def up_fraction(self) -> float:
        """Surviving capacity as a fraction of the whole machine."""
        total = self.grid.cores_total
        return self.grid.cores_up / total if total else 1.0

    @property
    def degraded(self) -> bool:
        """Below the capacity threshold segments are considered degraded."""
        return self.up_fraction < self.policy.degraded_below

    def snapshot(self) -> dict:
        """JSON-ready health summary (portal cluster status)."""
        suspect, down = [], []
        for node in self.grid.compute_nodes():
            if node.state is NodeState.SUSPECT:
                suspect.append(node.name)
            elif node.state is NodeState.DOWN:
                down.append(node.name)
        with self._lock:
            failures = {
                name: entry.failures_total
                for name, entry in self._nodes.items()
                if entry.failures_total
            }
        return {
            "degraded": self.degraded,
            "up_fraction": round(self.up_fraction, 4),
            "cores_up": self.grid.cores_up,
            "cores_total": self.grid.cores_total,
            "suspect_nodes": suspect,
            "down_nodes": down,
            "failures_by_node": failures,
        }
