"""The pending-job queue."""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, Optional

from repro._errors import SchedulingError
from repro.cluster.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """Ordered collection of queued jobs.

    Keeps submission order; scheduling *policies* decide which entry to
    pull (FIFO takes the head, priority scans, backfill peeks deeper), so
    the queue exposes ordered iteration and positional removal rather
    than a single ``pop``.

    Order is defined by ``job.seq`` (creation order): the common case is
    an O(1) append, but a job pushed out of order — e.g. re-queued after
    a placement raced with a node failure, or released from a dependency
    hold — is inserted back at its original submission position instead
    of the tail, so FIFO semantics survive requeues.
    """

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._lock = threading.Lock()

    def push(self, job: Job) -> None:
        """Add a job (must be QUEUED) at its submission-order position."""
        if job.state is not JobState.QUEUED:
            raise SchedulingError(
                f"only QUEUED jobs enter the queue; {job.id} is {job.state.value}"
            )
        with self._lock:
            if not self._jobs or self._jobs[-1].seq <= job.seq:
                self._jobs.append(job)
            else:
                bisect.insort(self._jobs, job, key=lambda j: j.seq)

    def remove(self, job: Job) -> bool:
        """Remove a specific job (e.g. on cancel). Returns success."""
        with self._lock:
            try:
                self._jobs.remove(job)
                return True
            except ValueError:
                return False

    def snapshot(self) -> list[Job]:
        """Copy of the current queue in submission order."""
        with self._lock:
            return list(self._jobs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.snapshot())

    def head(self) -> Optional[Job]:
        """Oldest queued job, or None."""
        with self._lock:
            return self._jobs[0] if self._jobs else None

    def purge_terminal(self) -> int:
        """Drop cancelled/finished jobs that are still lingering; count them."""
        with self._lock:
            before = len(self._jobs)
            self._jobs = [j for j in self._jobs if not j.terminal]
            return before - len(self._jobs)
