"""Generator-based simulated processes.

A *process* is a Python generator driven by the simulator.  The generator
``yield``s waitables and is resumed with the waitable's value once it
fires:

* ``yield sim.timeout(d)``          — sleep ``d`` virtual time units;
* ``yield some_event``              — wait for an event, receive its value;
* ``yield other_process``           — join another process, receive its
  return value;
* ``yield store.get()`` / ``put()`` — queue operations from
  :mod:`repro.desim.resources`.

A process is itself an :class:`~repro.desim.kernel.Event` that fires with
the generator's return value, so processes compose (``all_of`` over
processes, processes joining processes, ...).
"""

from __future__ import annotations

from typing import Any, Generator

from repro._errors import SimulationError
from repro.desim.kernel import Event, Simulator

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "process killed")
        self.reason = reason


class Process(Event):
    """A running simulated process.

    Do not instantiate directly — use :meth:`Simulator.process`.
    """

    __slots__ = ("generator", "_waiting_on", "_alive")

    def __init__(self, sim: Simulator, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Simulator.process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        self._alive = True
        # Bootstrap: resume on the next zero-delay tick so the creator
        # finishes its own time step first.
        boot = sim.timeout(0.0)
        self.sim._subscribe(boot, self._resume)

    # -- public --------------------------------------------------------
    @property
    def alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._alive

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process at its wait point.

        The process may catch it to clean up; if it does not, the process
        event *fails* with the :class:`ProcessKilled`.
        """
        if not self._alive:
            return
        self._step(ProcessKilled(reason), is_exc=True)

    # -- driving -------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev._exc is not None:
            self._step(ev._exc, is_exc=True)
        else:
            self._step(ev._value, is_exc=False)

    def _step(self, payload: Any, is_exc: bool) -> None:
        if not self._alive:
            return
        try:
            if is_exc:
                target = self.generator.throw(payload)
            else:
                target = self.generator.send(payload)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessKilled as pk:
            self._finish(exc=pk)
            return
        except BaseException as exc:
            self._finish(exc=exc)
            return

        if not isinstance(target, Event):
            self._finish(
                exc=SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected an Event/Process/operation"
                )
            )
            return
        self._waiting_on = target
        self.sim._subscribe(target, self._resume)

    def _finish(self, value: Any = None, exc: BaseException | None = None) -> None:
        self._alive = False
        if self.triggered:  # pragma: no cover - defensive
            return
        if exc is not None:
            self.fail(exc)
        else:
            self.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"
