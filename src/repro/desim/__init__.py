"""Discrete-event simulation kernel.

``repro.desim`` is the substrate under every simulated component of the
reproduction: the simulated cluster backend, the minimpi network cost
model, and the UMA/NUMA memory-timing experiments all advance a shared
virtual clock through this kernel.

The design is a deliberately small, dependency-free take on the
generator-process style popularised by SimPy:

* :class:`~repro.desim.kernel.Simulator` owns the virtual clock and the
  event queue.
* :class:`~repro.desim.process.Process` wraps a Python generator; the
  generator ``yield``s *waitables* (timeouts, events, other processes,
  store operations) and is resumed when they fire.
* :mod:`~repro.desim.resources` provides queuing resources: FIFO
  :class:`~repro.desim.resources.Store`, counted
  :class:`~repro.desim.resources.Resource` and
  :class:`~repro.desim.resources.Container`.

Everything is deterministic given a seed; no wall-clock time is consulted
anywhere in the simulated path.
"""

from repro.desim.kernel import Event, Simulator
from repro.desim.process import Process, ProcessKilled
from repro.desim.resources import Container, Resource, Store
from repro.desim.rng import SeedSequenceSplitter, substream

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "ProcessKilled",
    "Store",
    "Resource",
    "Container",
    "SeedSequenceSplitter",
    "substream",
]
