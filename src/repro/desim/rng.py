"""Seeded random-stream management.

Every stochastic component in the reproduction draws from its own named
substream derived from one master seed, so adding a new random consumer
never perturbs the draws of existing ones (the classic "common random
numbers" discipline from simulation practice).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["substream", "SeedSequenceSplitter"]


def _digest(master_seed: int, name: str) -> int:
    """Stable 64-bit digest of ``(master_seed, name)``."""
    h = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(h[:8], "little")


def substream(master_seed: int, name: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for ``name``.

    Deterministic: the same ``(master_seed, name)`` pair always yields a
    generator producing the same draws, regardless of what other streams
    exist or in which order they were created.
    """
    return np.random.default_rng(np.random.SeedSequence(_digest(master_seed, name)))


class SeedSequenceSplitter:
    """Factory handing out named substreams of one master seed.

    >>> split = SeedSequenceSplitter(42)
    >>> a = split.stream("arrivals")
    >>> b = split.stream("service")
    >>> a is not b
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._made: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Get (and memoise) the generator for ``name``."""
        if name not in self._made:
            self._made[name] = substream(self.master_seed, name)
        return self._made[name]

    def fresh(self, name: str) -> np.random.Generator:
        """A non-memoised copy: restarts ``name``'s stream from scratch."""
        return substream(self.master_seed, name)

    def spawn_int(self, name: str) -> int:
        """A stable integer seed derived for ``name`` (for foreign RNGs)."""
        return _digest(self.master_seed, name)
