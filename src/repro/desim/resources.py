"""Queuing resources for simulated processes.

Three classic shapes:

* :class:`Store`     — FIFO buffer of discrete items (optionally bounded);
* :class:`Resource`  — counted resource with ``request``/``release``
  (think: CPU cores on a node);
* :class:`Container` — continuous level with ``put``/``get`` amounts
  (think: memory bytes).

All operations return :class:`~repro.desim.kernel.Event` objects to be
``yield``-ed from process generators; they fire when the operation
completes.  Waiters are served strictly FIFO, which keeps simulations
deterministic and starvation-free.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro._errors import ResourceError
from repro.desim.kernel import Event, Simulator

__all__ = ["Store", "Resource", "Container"]


class Store:
    """FIFO item buffer.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum items held; ``put`` blocks when full.  ``None`` means
        unbounded.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None, name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise ResourceError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    # -- operations ------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it is buffered."""
        ev = self.sim.event(f"{self.name}.put")
        self._putters.append((ev, item))
        self._drain()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event fires valued with the item."""
        ev = self.sim.event(f"{self.name}.get")
        self._getters.append(ev)
        self._drain()
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items and not self._getters:
            item = self._items.popleft()
            self._drain()
            return True, item
        return False, None

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while there is room.
            while self._putters and (self.capacity is None or len(self._items) < self.capacity):
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed()
                progressed = True
            # Serve gets while there are items.
            while self._getters and self._items:
                ev = self._getters.popleft()
                ev.succeed(self._items.popleft())
                progressed = True


class Resource:
    """Counted resource with FIFO request queue.

    >>> sim = Simulator()
    >>> cores = Resource(sim, capacity=2)

    Inside a process::

        yield cores.request()
        try:
            yield sim.timeout(work)
        finally:
            cores.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ResourceError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[tuple[Event, int]] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting."""
        return len(self._waiters)

    def request(self, units: int = 1) -> Event:
        """Acquire ``units``; event fires when granted."""
        if units < 1 or units > self.capacity:
            raise ResourceError(
                f"cannot request {units} units of {self.name!r} (capacity {self.capacity})"
            )
        ev = self.sim.event(f"{self.name}.request")
        self._waiters.append((ev, units))
        self._grant()
        return ev

    def release(self, units: int = 1) -> None:
        """Return ``units``; immediately grants queued requests that fit."""
        if units < 1:
            raise ResourceError(f"release units must be >= 1, got {units}")
        if units > self._in_use:
            raise ResourceError(
                f"double release on {self.name!r}: releasing {units}, only {self._in_use} in use"
            )
        self._in_use -= units
        self._grant()

    def _grant(self) -> None:
        # Strict FIFO: the head request blocks later smaller ones so a
        # wide parallel job cannot starve behind a stream of narrow jobs.
        while self._waiters:
            ev, units = self._waiters[0]
            if self._in_use + units > self.capacity:
                break
            self._waiters.popleft()
            self._in_use += units
            ev.succeed(units)


class Container:
    """Continuous-level resource (e.g. bytes of memory).

    ``get`` blocks until the requested amount is available; ``put`` blocks
    while it would overflow ``capacity``.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ResourceError(f"container capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ResourceError(f"init level {init} outside [0, {capacity}]")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def get(self, amount: float) -> Event:
        """Withdraw ``amount``; event fires when satisfied."""
        if amount <= 0 or amount > self.capacity:
            raise ResourceError(f"invalid get amount {amount} for {self.name!r}")
        ev = self.sim.event(f"{self.name}.get")
        self._getters.append((ev, amount))
        self._drain()
        return ev

    def put(self, amount: float) -> Event:
        """Deposit ``amount``; event fires when it fits."""
        if amount <= 0 or amount > self.capacity:
            raise ResourceError(f"invalid put amount {amount} for {self.name!r}")
        ev = self.sim.event(f"{self.name}.put")
        self._putters.append((ev, amount))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed()
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True
