"""Virtual clock, events and the simulation event loop."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional

from repro._errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once given a value (or
    an exception) and a firing time, and is *processed* after its
    callbacks have run.  Processes wait on events by ``yield``-ing them.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "_value", "_exc", "_triggered", "_processed", "callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self.callbacks: list[Callable[["Event"], None]] = []

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been given a value or exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have been dispatched."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` when triggered successfully (no exception attached)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value. Raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError(f"event {self!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire carrying exception ``exc``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._push(delay, self)
        return self

    def _dispatch(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = self.name or hex(id(self))
        return f"<Event {label} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    The simulator keeps a priority queue of triggered events keyed by
    ``(time, sequence)``; ties at equal times dispatch in trigger order,
    which keeps runs reproducible.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> def proc(sim):
    ...     yield sim.timeout(3)
    ...     out.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> out
    [3.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._processed_events = 0

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Count of events dispatched so far (for tests / stats)."""
        return self._processed_events

    # -- event construction --------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` time units from now.

        ``delay`` must be non-negative; zero-delay timeouts fire in FIFO
        order after already-queued same-time events.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        ev = Event(self, f"timeout({delay})")
        ev.succeed(value, delay=delay)
        return ev

    def process(self, generator) -> "Process":
        """Start a generator as a simulated process. See :class:`Process`."""
        from repro.desim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event firing when *all* of ``events`` have fired.

        The value is the list of individual values in input order. Fails
        fast with the first failure.
        """
        events = list(events)
        done = self.event("all_of")
        remaining = len(events)
        if remaining == 0:
            return done.succeed([])
        values: list[Any] = [None] * remaining

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                nonlocal remaining
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # propagate failure
                    return
                values[i] = ev._value
                remaining -= 1
                if remaining == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            self._subscribe(ev, make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event firing when *any* of ``events`` fires, valued ``(index, value)``."""
        events = list(events)
        if not events:
            raise SimulationError("any_of() requires at least one event")
        done = self.event("any_of")

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)
                else:
                    done.succeed((i, ev._value))

            return cb

        for i, ev in enumerate(events):
            self._subscribe(ev, make_cb(i))
        return done

    # -- internals -------------------------------------------------------
    def _subscribe(self, ev: Event, cb: Callable[[Event], None]) -> None:
        """Attach ``cb`` to ``ev``, calling immediately if already processed."""
        if ev.processed:
            cb(ev)
        else:
            ev.callbacks.append(cb)

    def _push(self, delay: float, ev: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), ev))

    # -- running -------------------------------------------------------
    def step(self) -> None:
        """Dispatch the single next event. Raises on an empty queue."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        t, _, ev = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - guarded by _push
            raise SimulationError("event queue time went backwards")
        self._now = t
        self._processed_events += 1
        ev._dispatch()

    def peek(self) -> float:
        """Time of the next queued event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None, max_events: int | None = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            ``None``     — run to queue exhaustion.
            ``float``    — run until the clock would pass this time, then
            set ``now`` to it.
            ``Event``    — run until this event is processed and return
            its value (re-raising its failure).
        max_events:
            Optional safety valve for tests: raise
            :class:`SimulationError` after this many dispatches.
        """
        stop_at: float | None = None
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(f"run(until={stop_at}) is in the past (now={self._now})")

        dispatched = 0
        while self._queue:
            if stop_at is not None and self._queue[0][0] > stop_at:
                break
            self.step()
            dispatched += 1
            if stop_event is not None and stop_event.processed:
                break
            if max_events is not None and dispatched >= max_events:
                if stop_event is not None and not stop_event.processed:
                    raise SimulationError(f"max_events={max_events} exhausted before event fired")
                break

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError("event queue exhausted before awaited event fired (deadlock?)")
            return stop_event.value
        if stop_at is not None:
            self._now = max(self._now, stop_at)
        return None
