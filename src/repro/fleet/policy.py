"""Scaling policies: how many nodes the fleet *wants*, given demand.

A policy is a pure demand→delta function: :meth:`ScalingPolicy.evaluate`
reads one :class:`FleetSample` and returns how many nodes to add
(positive), remove (negative) or leave alone (zero).  Everything
stateful about *when* a decision may execute — warm-up, cooldowns,
idle-only scale-in, pool bounds — lives in the
:class:`~repro.fleet.manager.ScalingManager`, so policies stay trivially
testable.

Flapping is prevented twice over:

* every policy keeps a **deadband** between its scale-out and scale-in
  thresholds (enforced at construction), so a load level sitting on one
  threshold can never trip both; and
* the manager's :class:`HysteresisGate` refuses a decision within the
  direction's cooldown window of the previous action — the property
  battery in ``tests/test_fleet.py`` hammers exactly this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FleetSample",
    "HysteresisGate",
    "QueueWaitP95Policy",
    "ScalingPolicy",
    "TargetQueueDepthPolicy",
]


@dataclass(frozen=True)
class FleetSample:
    """One tick's view of demand vs capacity, as policies see it."""

    now: float
    queue_depth: int          # jobs queued or dependency-held
    running: int              # jobs currently running
    cores_free: int           # grid free cores right now
    fleet_size: int           # nodes currently joined by the manager
    pending: int              # scale-outs decided but still warming up
    queue_wait_p95: Optional[float] = None  # windowed p95 queue wait (s)


class ScalingPolicy:
    """Base policy. Subclasses implement :meth:`evaluate`."""

    name = "base"

    def evaluate(self, sample: FleetSample) -> int:
        """Desired node delta: ``> 0`` scale out, ``< 0`` scale in."""
        raise NotImplementedError


class TargetQueueDepthPolicy(ScalingPolicy):
    """Hold the queue near a target backlog per node.

    Scale out one ``step`` when the backlog exceeds
    ``out_depth_per_node × (fleet_size + pending)`` (warming nodes count:
    capacity already bought must not be bought twice); scale in when the
    backlog drops to ``in_depth_per_node`` or below *and* nothing is
    pending.  ``out_depth_per_node > in_depth_per_node`` is the deadband.
    """

    name = "target-queue-depth"

    def __init__(
        self,
        out_depth_per_node: float = 4.0,
        in_depth_per_node: float = 0.5,
        step: int = 2,
    ) -> None:
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if out_depth_per_node <= in_depth_per_node:
            raise ValueError(
                "deadband required: out_depth_per_node "
                f"({out_depth_per_node}) must exceed in_depth_per_node "
                f"({in_depth_per_node})"
            )
        self.out_depth_per_node = out_depth_per_node
        self.in_depth_per_node = in_depth_per_node
        self.step = step

    def evaluate(self, sample: FleetSample) -> int:
        effective = max(1, sample.fleet_size + sample.pending)
        if sample.queue_depth > self.out_depth_per_node * effective:
            return self.step
        if (
            sample.pending == 0
            and sample.fleet_size > 0
            and sample.queue_depth <= self.in_depth_per_node * effective
        ):
            return -self.step
        return 0


class QueueWaitP95Policy(ScalingPolicy):
    """Hold the p95 queue wait inside a latency band.

    Driven by the PR 4 queue-wait histogram: the manager computes a
    *windowed* p95 (the delta between consecutive tick snapshots, so old
    waits never mask current pain) and hands it over in the sample.
    Out when p95 exceeds ``out_wait_s``; in when the window is quiet —
    no samples, or p95 at/below ``in_wait_s`` — with an empty queue.
    """

    name = "queue-wait-p95"

    def __init__(
        self,
        out_wait_s: float = 30.0,
        in_wait_s: float = 2.0,
        step: int = 2,
    ) -> None:
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if out_wait_s <= in_wait_s:
            raise ValueError(
                f"deadband required: out_wait_s ({out_wait_s}) must exceed "
                f"in_wait_s ({in_wait_s})"
            )
        self.out_wait_s = out_wait_s
        self.in_wait_s = in_wait_s
        self.step = step

    def evaluate(self, sample: FleetSample) -> int:
        p95 = sample.queue_wait_p95
        if p95 is not None and p95 > self.out_wait_s:
            return self.step
        if sample.queue_depth > 0 and p95 is not None and p95 > self.in_wait_s:
            return 0  # inside the band: hold
        quiet = p95 is None or p95 <= self.in_wait_s
        if (
            quiet
            and sample.pending == 0
            and sample.fleet_size > 0
            and sample.queue_depth == 0
        ):
            return -self.step
        return 0


class HysteresisGate:
    """Cooldown arbiter between raw policy deltas and executed actions.

    One gate instance serialises the manager's decision stream:

    * a scale-**out** executes only ``out_cooldown_s`` after the previous
      scale-out (bursts still grow, one step per window, instead of
      panic-buying the whole pool on one spike);
    * a scale-**in** executes only ``in_cooldown_s`` after the previous
      action *in either direction* — capacity just added (or a burst
      just shed) must prove itself idle for a full window before being
      given back.

    Consequence (the no-flapping property): between an executed out and
    an executed in there is always at least ``in_cooldown_s``, and
    between an in and an out at least... nothing — growth after shrink
    is intentionally cheap, because queueing pain is user-visible while
    over-capacity only costs node-seconds.
    """

    def __init__(self, out_cooldown_s: float, in_cooldown_s: float) -> None:
        if out_cooldown_s < 0 or in_cooldown_s < 0:
            raise ValueError("cooldowns must be >= 0")
        self.out_cooldown_s = out_cooldown_s
        self.in_cooldown_s = in_cooldown_s
        self._last_out: Optional[float] = None
        self._last_in: Optional[float] = None

    def _last_action(self) -> Optional[float]:
        if self._last_out is None:
            return self._last_in
        if self._last_in is None:
            return self._last_out
        return max(self._last_out, self._last_in)

    def allow(self, delta: int, now: float) -> bool:
        """May a ``delta``-direction action execute at ``now``?  Records
        the action when allowed (call only when committed)."""
        if delta > 0:
            if self._last_out is not None and now - self._last_out < self.out_cooldown_s:
                return False
            self._last_out = now
            return True
        if delta < 0:
            last = self._last_action()
            if last is not None and now - last < self.in_cooldown_s:
                return False
            self._last_in = now
            return True
        return False
