"""The fleet manager: policy decisions turned into membership changes.

:class:`ScalingManager` sits beside a :class:`JobDistributor` and runs a
periodic *tick*:

1. accrue node-seconds (the cost axis of the bench's frontier);
2. materialise scale-outs whose warm-up elapsed — the node joins the
   grid through :meth:`JobDistributor.add_node`, i.e. as an ordinary
   capacity event the next scheduling round dispatches onto;
3. sample demand (queue depth, windowed queue-wait p95 from the PR 4
   histogram) and ask the :class:`~repro.fleet.policy.ScalingPolicy`
   for a node delta;
4. execute the delta through the
   :class:`~repro.fleet.policy.HysteresisGate` — scale-out enters the
   warm-up queue, scale-in gracefully removes only nodes idle past
   ``idle_s`` and never below a pool's ``min_nodes``.

Preemptible capacity: a pool marked ``spot=True`` can be *reclaimed* at
any moment (:meth:`ScalingManager.reclaim`); reclamation is delivered as
``node_lost`` through :meth:`JobDistributor.remove_node(force=True)` —
the same retry budget, requeue and journal lineage as any node death, so
the PR 8 recovery reconciliation sees nothing new.

Timing: on a wall-clock distributor, :meth:`start` self-arms a daemon
timer.  Under the DES backend, drive :meth:`tick` explicitly from a
``sim.process`` driver (a self-rearming virtual timer would keep the
event queue non-empty forever) — ``benchmarks/bench_fleet.py`` shows
the pattern.

Every decision — executed, rejected by cooldown, or impossible at the
pool bounds — lands in a bounded decision log the portal serves at
``GET /debug/fleet``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro._errors import ResourceError
from repro.cluster.spec import NodeSpec
from repro.fleet.policy import FleetSample, HysteresisGate, ScalingPolicy
from repro.telemetry.instruments import FleetTelemetry
from repro.telemetry.registry import HistogramSnapshot

__all__ = ["NodePool", "PendingJoin", "ScalingManager"]


@dataclass(frozen=True)
class NodePool:
    """One homogeneous source of elastic capacity."""

    name: str
    spec: NodeSpec
    segment: str
    min_nodes: int = 0
    max_nodes: int = 8
    spot: bool = False
    warmup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_nodes < 0:
            raise ValueError(f"min_nodes must be >= 0, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) must be >= min_nodes ({self.min_nodes})"
            )
        if self.warmup_s < 0:
            raise ValueError(f"warmup_s must be >= 0, got {self.warmup_s}")


@dataclass
class PendingJoin:
    """A scale-out decided but still warming up."""

    pool: str
    decided_at: float
    ready_at: float

    def as_dict(self) -> dict:
        return {
            "pool": self.pool,
            "decided_at": self.decided_at,
            "ready_at": self.ready_at,
        }


class ScalingManager:
    """Evaluate a scaling policy and apply it to the distributor's grid."""

    def __init__(
        self,
        dist,
        pools: Sequence[NodePool],
        policy: ScalingPolicy,
        *,
        scale_out_cooldown_s: float = 15.0,
        scale_in_cooldown_s: float = 60.0,
        idle_s: float = 30.0,
        log_capacity: int = 256,
        registry=None,
    ) -> None:
        if not pools:
            raise ValueError("a fleet needs at least one pool")
        names = [p.name for p in pools]
        if len(set(names)) != len(names):
            raise ValueError(f"pool names must be unique, got {names}")
        self.dist = dist
        self.pools = tuple(pools)
        self._pool_by_name = {p.name: p for p in self.pools}
        self.policy = policy
        self.gate = HysteresisGate(scale_out_cooldown_s, scale_in_cooldown_s)
        self.idle_s = idle_s
        self._lock = threading.RLock()
        #: managed node name -> pool name (join order preserved; scale-in
        #: prefers the newest join so long-lived nodes stay warm)
        self._nodes: dict[str, str] = {}
        self._pending: list[PendingJoin] = []
        #: node name -> last instant it was seen busy (or its join time)
        self._idle_since: dict[str, float] = {}
        self.node_seconds: dict[str, float] = {p.name: 0.0 for p in self.pools}
        self._last_accrual: Optional[float] = None
        self._log: deque = deque(maxlen=log_capacity)
        self._timer: Optional[threading.Timer] = None
        self._interval_s: Optional[float] = None
        self.telemetry = FleetTelemetry(
            registry if registry is not None else dist.telemetry.registry
        )
        self.telemetry.bind_manager(self)
        # Windowed queue-wait p95: snapshot of the PR 4 histogram at the
        # previous tick; the delta between snapshots is this window.
        self._wait_prev: Optional[HistogramSnapshot] = None
        # Jobs may *request* a pool's node type before any such node has
        # joined — the fleet can provision it on demand.
        dist.grid.advertised_types.update(p.spec.node_type for p in self.pools)
        dist.fleet = self
        # Floor capacity joins immediately: min_nodes is the capacity the
        # operator pays for unconditionally, so there is nothing to warm.
        now = dist.now_fn()
        self._last_accrual = now
        for pool in self.pools:
            for _ in range(pool.min_nodes):
                self._join(pool, now, decided_at=now)

    # -- introspection -----------------------------------------------------
    def managed_nodes(self) -> dict[str, str]:
        """``{node_name: pool_name}`` for every node this manager joined."""
        with self._lock:
            return dict(self._nodes)

    def forget(self, name: str) -> None:
        """Drop ``name`` from the managed set (node removed externally).

        The tick loop reconciles this lazily; callers that remove a
        managed node themselves (the spec reconfigurer's drain path)
        call this so ``pool_sizes()`` is exact immediately.
        """
        with self._lock:
            self._forget(name)

    def pending(self) -> list[PendingJoin]:
        """Scale-outs still warming up."""
        with self._lock:
            return list(self._pending)

    def pool_sizes(self) -> dict[str, int]:
        """``{pool_name: joined node count}`` (pending not included)."""
        with self._lock:
            sizes = {p.name: 0 for p in self.pools}
            for pool_name in self._nodes.values():
                sizes[pool_name] += 1
            return sizes

    def decision_log(self) -> list[dict]:
        """The bounded decision history, oldest first (JSON-safe)."""
        with self._lock:
            return [dict(entry) for entry in self._log]

    def snapshot(self) -> dict:
        """JSON-safe fleet state for ``GET /api/fleet`` / ``cluster.fleet``."""
        with self._lock:
            sizes = {p.name: 0 for p in self.pools}
            for pool_name in self._nodes.values():
                sizes[pool_name] += 1
            return {
                "enabled": True,
                "policy": self.policy.name,
                "nodes": len(self._nodes),
                "pending": [p.as_dict() for p in self._pending],
                "node_seconds": dict(self.node_seconds),
                "pools": [
                    {
                        "name": p.name,
                        "segment": p.segment,
                        "node_type": p.spec.node_type,
                        "cores": p.spec.cores,
                        "spot": p.spot,
                        "min_nodes": p.min_nodes,
                        "max_nodes": p.max_nodes,
                        "warmup_s": p.warmup_s,
                        "size": sizes[p.name],
                    }
                    for p in self.pools
                ],
                "cooldowns": {
                    "scale_out_s": self.gate.out_cooldown_s,
                    "scale_in_s": self.gate.in_cooldown_s,
                    "idle_s": self.idle_s,
                },
            }

    # -- reconfiguration ---------------------------------------------------
    def reconfigure(
        self,
        pools: Optional[Sequence[NodePool]] = None,
        policy: Optional[ScalingPolicy] = None,
        *,
        scale_out_cooldown_s: Optional[float] = None,
        scale_in_cooldown_s: Optional[float] = None,
        idle_s: Optional[float] = None,
    ) -> list[str]:
        """Swap pools/policy/cooldowns on a live manager (spec apply path).

        Returns the *orphans*: names of joined nodes whose pool no
        longer exists.  They are forgotten here (node-seconds stop
        accruing) but stay in the grid — the caller owns draining and
        removing them, which is exactly what the
        :class:`repro.spec.apply.Reconfigurer` does rolling.
        """
        orphans: list[str] = []
        with self._lock:
            if pools is not None:
                names = [p.name for p in pools]
                if not pools:
                    raise ValueError("a fleet needs at least one pool")
                if len(set(names)) != len(names):
                    raise ValueError(f"pool names must be unique, got {names}")
                self.pools = tuple(pools)
                self._pool_by_name = {p.name: p for p in self.pools}
                for p in self.pools:
                    self.node_seconds.setdefault(p.name, 0.0)
                self._pending = [
                    p for p in self._pending if p.pool in self._pool_by_name
                ]
                orphans = [
                    name for name, pool_name in self._nodes.items()
                    if pool_name not in self._pool_by_name
                ]
                for name in orphans:
                    self._forget(name)
                self.dist.grid.advertised_types.update(
                    p.spec.node_type for p in self.pools
                )
                # Honour new floors immediately, as the constructor does.
                now = self.dist.now_fn()
                sizes = {p.name: 0 for p in self.pools}
                for pool_name in self._nodes.values():
                    sizes[pool_name] += 1
                for pool in self.pools:
                    for _ in range(pool.min_nodes - sizes[pool.name]):
                        self._join(pool, now, decided_at=now)
            if policy is not None:
                self.policy = policy
            if scale_out_cooldown_s is not None:
                self.gate.out_cooldown_s = scale_out_cooldown_s
            if scale_in_cooldown_s is not None:
                self.gate.in_cooldown_s = scale_in_cooldown_s
            if idle_s is not None:
                self.idle_s = idle_s
            self._record(
                self.dist.now_fn(), "reconfigure",
                pools=[p.name for p in self.pools],
                policy=self.policy.name, orphans=list(orphans),
            )
        return orphans

    # -- the tick ----------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> Optional[dict]:
        """One evaluation round; returns the executed decision, if any."""
        if now is None:
            now = self.dist.now_fn()
        with self._lock:
            self._accrue(now)
            self._materialise_joins(now)
            self._track_idle(now)
            sample = self._sample(now)
            delta = self.policy.evaluate(sample)
            if delta > 0:
                return self._scale_out(delta, now, sample)
            if delta < 0:
                return self._scale_in(-delta, now, sample)
            return None

    def _accrue(self, now: float) -> None:
        last = self._last_accrual
        self._last_accrual = now
        if last is None or now <= last:
            return
        dt = now - last
        counts: dict[str, int] = {}
        for pool_name in self._nodes.values():
            counts[pool_name] = counts.get(pool_name, 0) + 1
        for pool_name, n in counts.items():
            self.node_seconds[pool_name] += n * dt

    def _materialise_joins(self, now: float) -> None:
        due = [p for p in self._pending if p.ready_at <= now]
        if not due:
            return
        self._pending = [p for p in self._pending if p.ready_at > now]
        for pend in due:
            pool = self._pool_by_name[pend.pool]
            node = self._join(pool, now, decided_at=pend.decided_at)
            self.telemetry.joined(now - pend.decided_at)
            self._record(
                now, "join", pool=pool.name, node=node.name,
                lag_s=now - pend.decided_at,
            )

    def _join(self, pool: NodePool, now: float, decided_at: float):
        node = self.dist.add_node(pool.segment, pool.spec)
        self._nodes[node.name] = pool.name
        self._idle_since[node.name] = now
        return node

    def _track_idle(self, now: float) -> None:
        grid = self.dist.grid
        for name in list(self._nodes):
            node = grid.get(name)
            if node is None:
                # removed behind our back (operator action); forget it
                self._forget(name)
            elif node.running_jobs:
                self._idle_since[name] = now

    def _forget(self, name: str) -> None:
        self._nodes.pop(name, None)
        self._idle_since.pop(name, None)

    def _sample(self, now: float) -> FleetSample:
        dist = self.dist
        with dist._lock:
            queue_depth = len(dist.queue) + len(dist._held)
            running = len(dist._running)
        snap = dist.telemetry.h_queue_wait.value
        prev = self._wait_prev
        self._wait_prev = snap
        p95 = None
        if prev is None:
            p95 = snap.quantile(0.95)
        elif snap.count > prev.count:
            window = HistogramSnapshot(
                snap.bounds,
                tuple(a - b for a, b in zip(snap.counts, prev.counts)),
                snap.sum - prev.sum,
                snap.count - prev.count,
            )
            p95 = window.quantile(0.95)
        return FleetSample(
            now=now,
            queue_depth=queue_depth,
            running=running,
            cores_free=dist.grid.cores_free,
            fleet_size=len(self._nodes),
            pending=len(self._pending),
            queue_wait_p95=p95,
        )

    # -- decision execution ------------------------------------------------
    def _scale_out(self, want: int, now: float, sample: FleetSample) -> Optional[dict]:
        pending_per_pool: dict[str, int] = {}
        for p in self._pending:
            pending_per_pool[p.pool] = pending_per_pool.get(p.pool, 0) + 1
        sizes = {p.name: 0 for p in self.pools}
        for pool_name in self._nodes.values():
            sizes[pool_name] += 1
        # Fill pools in declaration order up to their max.
        plan: list[NodePool] = []
        remaining = want
        for pool in self.pools:
            room = pool.max_nodes - sizes[pool.name] - pending_per_pool.get(pool.name, 0)
            take = min(remaining, max(0, room))
            plan.extend([pool] * take)
            remaining -= take
            if remaining <= 0:
                break
        if not plan:
            return self._reject(now, "out", "all pools at max capacity", sample)
        if not self.gate.allow(len(plan), now):
            return self._reject(now, "out", "scale-out cooldown", sample)
        for pool in plan:
            self._pending.append(
                PendingJoin(pool=pool.name, decided_at=now, ready_at=now + pool.warmup_s)
            )
        self.telemetry.action("scale_out")
        entry = self._record(
            now, "scale_out", count=len(plan),
            pools=[p.name for p in plan], queue_depth=sample.queue_depth,
            fleet_size=sample.fleet_size,
        )
        # Zero-warm-up pools become capacity in this same tick.
        self._materialise_joins(now)
        return entry

    def _scale_in(self, want: int, now: float, sample: FleetSample) -> Optional[dict]:
        sizes = {p.name: 0 for p in self.pools}
        for pool_name in self._nodes.values():
            sizes[pool_name] += 1
        # Newest-first: the long-lived floor stays warm, elastic capacity
        # added for a burst goes back first.
        candidates: list[str] = []
        for name in reversed(list(self._nodes)):
            if len(candidates) >= want:
                break
            pool = self._pool_by_name[self._nodes[name]]
            if sizes[pool.name] <= pool.min_nodes:
                continue
            node = self.dist.grid.get(name)
            if node is None or node.running_jobs:
                continue
            if now - self._idle_since.get(name, now) < self.idle_s:
                continue
            candidates.append(name)
            sizes[pool.name] -= 1
        if not candidates:
            return self._reject(now, "in", "no idle candidates past cooldown", sample)
        if not self.gate.allow(-len(candidates), now):
            return self._reject(now, "in", "scale-in cooldown", sample)
        removed = []
        for name in candidates:
            try:
                self.dist.remove_node(name)
            except ResourceError:
                continue  # a job landed between the idle check and removal
            self._forget(name)
            removed.append(name)
        self.telemetry.action("scale_in")
        return self._record(
            now, "scale_in", count=len(removed), nodes=removed,
            queue_depth=sample.queue_depth, fleet_size=len(self._nodes),
        )

    def _reject(self, now: float, direction: str, reason: str, sample: FleetSample) -> None:
        self.telemetry.action("rejected")
        self._record(
            now, "rejected", direction=direction, reason=reason,
            queue_depth=sample.queue_depth, fleet_size=sample.fleet_size,
        )
        return None

    def _record(self, now: float, kind: str, **fields) -> dict:
        entry = {"t": now, "kind": kind, **fields}
        self._log.append(entry)
        return entry

    # -- spot reclamation --------------------------------------------------
    def spot_nodes(self) -> list[str]:
        """Names of joined nodes living in preemptible pools."""
        with self._lock:
            return [
                name for name, pool_name in self._nodes.items()
                if self._pool_by_name[pool_name].spot
            ]

    def reclaim(self, node_name: str) -> list:
        """Preempt a spot node *now*: its running attempts are retired as
        ``node_lost`` through the normal retry budget and the node leaves
        the inventory.  Returns the rerouted jobs."""
        with self._lock:
            pool_name = self._nodes.get(node_name)
            if pool_name is None:
                raise ResourceError(f"node {node_name!r} is not fleet-managed")
            if not self._pool_by_name[pool_name].spot:
                raise ResourceError(
                    f"node {node_name!r} is in on-demand pool {pool_name!r}, "
                    "not preemptible"
                )
            rerouted = self.dist.remove_node(node_name, force=True)
            self._forget(node_name)
            self.telemetry.action("reclaim")
            self._record(
                self.dist.now_fn(), "reclaim", pool=pool_name, node=node_name,
                rerouted=len(rerouted),
            )
            return rerouted

    # -- wall-clock self-driving ------------------------------------------
    def start(self, interval_s: float = 5.0) -> None:
        """Self-arm a recurring wall-clock tick (daemon timer).

        Not for DES runs: a self-rearming timer keeps the simulator's
        event queue non-empty forever — drive :meth:`tick` from a
        terminating ``sim.process`` instead.
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        with self._lock:
            self._interval_s = interval_s
            if self._timer is None:
                self._arm()

    def _arm(self) -> None:
        t = threading.Timer(self._interval_s, self._fire)
        t.daemon = True
        self._timer = t
        t.start()

    def _fire(self) -> None:
        self.tick()
        with self._lock:
            if self._interval_s is not None:
                self._arm()

    def stop(self) -> None:
        """Stop the recurring tick (the fleet keeps its current size)."""
        with self._lock:
            self._interval_s = None
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
