"""repro.fleet — elastic, demand-driven cluster capacity.

The paper's cluster is a fixed machine carved into static partitions;
this package makes the reproduction's grid *elastic*: a
:class:`ScalingManager` watches the distributor's queue and telemetry,
evaluates a pluggable :class:`ScalingPolicy`, and grows or shrinks the
fleet through the grid's dynamic-membership API.  Joins flow through the
PR 1 capacity observers as ordinary capacity events; scale-in drains
idle nodes; preemptible "spot" pools deliver reclamation as
``node_lost`` through the PR 3 retry budget, so no acked job is ever
lost to an elastic decision.

See DESIGN §15 for the architecture and hysteresis semantics.
"""

from repro.fleet.manager import NodePool, PendingJoin, ScalingManager
from repro.fleet.policy import (
    FleetSample,
    HysteresisGate,
    QueueWaitP95Policy,
    ScalingPolicy,
    TargetQueueDepthPolicy,
)

__all__ = [
    "FleetSample",
    "HysteresisGate",
    "NodePool",
    "PendingJoin",
    "QueueWaitP95Policy",
    "ScalingManager",
    "ScalingPolicy",
    "TargetQueueDepthPolicy",
]
