"""Real compiler wrappers: gcc, g++, javac."""

from __future__ import annotations

import re
import shutil
import subprocess
from pathlib import Path

from repro.toolchain.base import Artifact, CompileResult, Toolchain

__all__ = ["GccToolchain", "GxxToolchain", "JavacToolchain"]

_COMPILE_TIMEOUT_S = 60


class _CCompilerBase(Toolchain):
    """Shared machinery for gcc/g++."""

    compiler = ""
    std_flag = ""

    def available(self) -> bool:
        return shutil.which(self.compiler) is not None

    def compile(self, source: Path, workdir: Path) -> CompileResult:
        workdir.mkdir(parents=True, exist_ok=True)
        out = workdir / (source.stem + ".bin")
        argv = [self.compiler, self.std_flag, "-O2", "-Wall", "-o", str(out), str(source), "-lpthread", "-lm"]
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=_COMPILE_TIMEOUT_S
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            return CompileResult(False, self.language, self.name, diagnostics=f"compiler invocation failed: {exc}")
        diagnostics = (proc.stdout + proc.stderr).strip()
        if proc.returncode != 0:
            return CompileResult(False, self.language, self.name, diagnostics=diagnostics)
        warnings = [l for l in diagnostics.splitlines() if "warning:" in l]
        return CompileResult(
            True,
            self.language,
            self.name,
            diagnostics=diagnostics,
            warnings=warnings,
            artifact=Artifact(kind="binary", path=out, language=self.language),
        )


class GccToolchain(_CCompilerBase):
    """C via gcc (C11)."""

    language = "c"
    name = "gcc"
    compiler = "gcc"
    std_flag = "-std=c11"


class GxxToolchain(_CCompilerBase):
    """C++ via g++ (C++17)."""

    language = "cpp"
    name = "g++"
    compiler = "g++"
    std_flag = "-std=c++17"


_JAVA_PUBLIC_CLASS = re.compile(r"\bpublic\s+(?:final\s+|abstract\s+)?class\s+(\w+)")
_JAVA_ANY_CLASS = re.compile(r"\bclass\s+(\w+)")


class JavacToolchain(Toolchain):
    """Java via javac; runs with ``java -cp <dir> MainClass``."""

    language = "java"
    name = "javac"

    def available(self) -> bool:
        return shutil.which("javac") is not None and shutil.which("java") is not None

    def compile(self, source: Path, workdir: Path) -> CompileResult:
        workdir.mkdir(parents=True, exist_ok=True)
        argv = ["javac", "-d", str(workdir), str(source)]
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=_COMPILE_TIMEOUT_S
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            return CompileResult(False, self.language, self.name, diagnostics=f"compiler invocation failed: {exc}")
        diagnostics = (proc.stdout + proc.stderr).strip()
        if proc.returncode != 0:
            return CompileResult(False, self.language, self.name, diagnostics=diagnostics)
        main_class = self._main_class(source)
        class_file = workdir / f"{main_class}.class"
        return CompileResult(
            True,
            self.language,
            self.name,
            diagnostics=diagnostics,
            artifact=Artifact(
                kind="java-class", path=class_file, language="java", entry=main_class
            ),
        )

    @staticmethod
    def _main_class(source: Path) -> str:
        text = source.read_text(errors="replace")
        m = _JAVA_PUBLIC_CLASS.search(text) or _JAVA_ANY_CLASS.search(text)
        return m.group(1) if m else source.stem
