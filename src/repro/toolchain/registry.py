"""Language → toolchain resolution."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro._errors import ToolchainNotFound
from repro.toolchain.base import Toolchain
from repro.toolchain.real import GccToolchain, GxxToolchain, JavacToolchain
from repro.toolchain.simulated import (
    SimulatedCToolchain,
    SimulatedCppToolchain,
    SimulatedJavaToolchain,
)

__all__ = ["infer_language", "ToolchainRegistry"]

_EXTENSIONS = {
    ".c": "c",
    ".cc": "cpp",
    ".cpp": "cpp",
    ".cxx": "cpp",
    ".java": "java",
}


def infer_language(path: str | Path) -> Optional[str]:
    """Language key from a file name, or None when unknown."""
    return _EXTENSIONS.get(Path(path).suffix.lower())


class ToolchainRegistry:
    """Ordered candidate toolchains per language, resolved by availability.

    The default registry prefers the real compilers and falls back to
    the simulated ones, so the same portal code runs on developer
    machines (with gcc) and in hermetic CI (without).  New languages
    plug in via :meth:`register` — the "framework for further expansion"
    the paper calls for.
    """

    def __init__(self, prefer_real: bool = True) -> None:
        self._chains: dict[str, list[Toolchain]] = {}
        self._extensions: dict[str, str] = dict(_EXTENSIONS)
        real: list[Toolchain] = [GccToolchain(), GxxToolchain(), JavacToolchain()]
        sim: list[Toolchain] = [SimulatedCToolchain(), SimulatedCppToolchain(), SimulatedJavaToolchain()]
        ordered = real + sim if prefer_real else sim + real
        for tc in ordered:
            self.register(tc)

    def register(self, toolchain: Toolchain, extensions: tuple[str, ...] = ()) -> None:
        """Append a candidate for its language.

        ``extensions`` optionally teaches this registry new file
        extensions (e.g. ``(".py",)``) so :meth:`resolve_for` can route
        them — the runtime path for adding a language to a live portal.
        """
        self._chains.setdefault(toolchain.language, []).append(toolchain)
        for ext in extensions:
            self._extensions[ext.lower()] = toolchain.language

    def languages(self) -> list[str]:
        """Languages with at least one registered candidate."""
        return sorted(self._chains)

    def resolve(self, language: str) -> Toolchain:
        """First *available* candidate for ``language``.

        Raises :class:`ToolchainNotFound` for unknown languages or when
        every candidate reports unavailable.
        """
        candidates = self._chains.get(language)
        if not candidates:
            raise ToolchainNotFound(
                f"no toolchain registered for language {language!r} "
                f"(known: {', '.join(self.languages())})"
            )
        for tc in candidates:
            if tc.available():
                return tc
        raise ToolchainNotFound(f"no available toolchain for language {language!r}")

    def infer(self, path: str | Path) -> Optional[str]:
        """Language from a file name, including runtime-registered extensions."""
        return self._extensions.get(Path(path).suffix.lower())

    def resolve_for(self, path: str | Path) -> Toolchain:
        """Resolve from a file name's extension."""
        lang = self.infer(path)
        if lang is None:
            raise ToolchainNotFound(f"cannot infer language from {Path(path).name!r}")
        return self.resolve(lang)
