"""Compilation service: C, C++ and Java, real or simulated.

The portal's stated goal: "limited platform processing, compilation and
execution of C, C++, and Java source code".  Two toolchain families
implement one interface:

* :mod:`~repro.toolchain.real` shells out to ``gcc``/``g++``/``javac``
  when they are installed;
* :mod:`~repro.toolchain.simulated` is a hermetic fallback — a
  deterministic validator plus a tiny translator that turns the
  program's output statements into a runnable Python stub — so the
  full upload → compile → dispatch → run → monitor path works on
  machines with no compilers at all.

:class:`~repro.toolchain.registry.ToolchainRegistry` picks per language,
preferring real toolchains and falling back to simulated ones, exactly
like the framework's "further expansion ... to handle additional
programming languages" hook the paper describes.
"""

from repro.toolchain.base import Artifact, CompileResult, Toolchain
from repro.toolchain.real import GccToolchain, GxxToolchain, JavacToolchain
from repro.toolchain.simulated import (
    SimulatedCToolchain,
    SimulatedCppToolchain,
    SimulatedJavaToolchain,
)
from repro.toolchain.python_lang import PythonToolchain
from repro.toolchain.registry import ToolchainRegistry, infer_language

__all__ = [
    "Toolchain",
    "Artifact",
    "CompileResult",
    "GccToolchain",
    "GxxToolchain",
    "JavacToolchain",
    "SimulatedCToolchain",
    "SimulatedCppToolchain",
    "SimulatedJavaToolchain",
    "PythonToolchain",
    "ToolchainRegistry",
    "infer_language",
]
