"""Python 'toolchain': the paper's language-extensibility hook, exercised.

The paper: "The framework can then serve for further expansion and
development of modules to handle additional programming languages and
platforms."  This module is that expansion for Python: compilation is a
syntax check (``compile()``), and the artifact runs the script with the
interpreter.  ``examples/extend_portal_language.py`` shows wiring it
into a live portal.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.toolchain.base import Artifact, CompileResult, Toolchain

__all__ = ["PythonToolchain"]


class PythonToolchain(Toolchain):
    """Syntax-check + run for Python sources."""

    language = "python"
    name = "cpython"

    def available(self) -> bool:
        return shutil.which("python3") is not None

    def compile(self, source: Path, workdir: Path) -> CompileResult:
        workdir.mkdir(parents=True, exist_ok=True)
        try:
            text = source.read_text(errors="replace")
        except OSError as exc:
            return CompileResult(False, self.language, self.name, diagnostics=str(exc))
        try:
            compile(text, str(source), "exec")
        except SyntaxError as exc:
            return CompileResult(
                False,
                self.language,
                self.name,
                diagnostics=f"{source.name}: line {exc.lineno}: {exc.msg}",
            )
        # "Compilation" copies the source into the build dir so the run
        # artefact is immutable even if the user edits the original.
        staged = workdir / source.name
        staged.write_text(text)
        return CompileResult(
            True,
            self.language,
            self.name,
            diagnostics=f"{source.name}: syntax ok",
            artifact=Artifact(kind="python-stub", path=staged, language=self.language),
        )
