"""Hermetic simulated toolchains.

Where the real machine had gcc/javac, an offline test environment may
not.  These toolchains keep the portal's full pipeline exercisable:

1. **Validate** the source with deterministic structural checks
   (balanced braces/parens/quotes, presence of an entry point, a few
   high-signal syntax mistakes).  Broken programs fail compilation with
   line-numbered diagnostics — which is what the portal UI shows.
2. **Translate** the program's *output statements* (``printf``/``puts``/
   ``std::cout``/``System.out.println``) into a runnable Python stub, so
   executing the "compiled" artifact produces the output a student's
   hello-world-class program would.

This is not a C compiler — it is a faithful stand-in for the portal's
compile→dispatch→run→monitor contract, per the substitution policy in
DESIGN.md.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.toolchain.base import Artifact, CompileResult, Toolchain

__all__ = ["SimulatedCToolchain", "SimulatedCppToolchain", "SimulatedJavaToolchain"]

_PAIRS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = {v: k for k, v in _PAIRS.items()}


def _strip_comments_and_strings(text: str, line_comment: str = "//") -> tuple[str, list[str]]:
    """Blank out comments and collect string literals (structure-preserving).

    Returns the scrubbed text (same length per line, literals replaced by
    spaces) and the list of double-quoted literals in order.
    """
    out: list[str] = []
    literals: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j : j + 2])
                    j += 2
                    continue
                buf.append(text[j])
                j += 1
            literals.append("".join(buf))
            out.append('"' + " " * max(0, j - i - 1) + '"')
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            out.append("' '" if j > i + 1 else "''")
            i = j + 1
        elif text.startswith(line_comment, i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            segment = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in segment))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), literals


def _check_balance(scrubbed: str) -> list[str]:
    """Line-numbered diagnostics for unbalanced brackets."""
    stack: list[tuple[str, int]] = []
    problems: list[str] = []
    line = 1
    for ch in scrubbed:
        if ch == "\n":
            line += 1
        elif ch in _PAIRS:
            stack.append((ch, line))
        elif ch in _CLOSERS:
            if not stack or stack[-1][0] != _CLOSERS[ch]:
                problems.append(f"line {line}: unexpected {ch!r}")
                if stack:
                    stack.pop()
            else:
                stack.pop()
    for ch, ln in stack:
        problems.append(f"line {ln}: unclosed {ch!r}")
    return problems


class _SimulatedBase(Toolchain):
    """Shared validate+translate pipeline."""

    entry_pattern: re.Pattern = re.compile(r"")
    entry_hint = ""

    def available(self) -> bool:
        return True  # hermetic by construction

    def compile(self, source: Path, workdir: Path) -> CompileResult:
        workdir.mkdir(parents=True, exist_ok=True)
        try:
            text = source.read_text(errors="replace")
        except OSError as exc:
            return CompileResult(False, self.language, self.name, diagnostics=str(exc))
        scrubbed, _ = _strip_comments_and_strings(text)
        problems = _check_balance(scrubbed)
        if not self.entry_pattern.search(scrubbed):
            problems.append(f"no entry point found ({self.entry_hint})")
        if problems:
            return CompileResult(
                False, self.language, self.name,
                diagnostics="\n".join(f"{source.name}: {p}" for p in problems),
            )
        stub = workdir / (source.stem + "_sim.py")
        stub.write_text(self._translate(text))
        return CompileResult(
            True,
            self.language,
            self.name,
            diagnostics=f"{source.name}: simulated compilation ok",
            artifact=Artifact(kind="python-stub", path=stub, language=self.language),
        )

    def _translate(self, text: str) -> str:
        """Emit a Python stub replaying the program's print statements."""
        raise NotImplementedError


def _c_unescape(s: str) -> str:
    return (
        s.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


class SimulatedCToolchain(_SimulatedBase):
    """C validator + output-statement translator."""

    language = "c"
    name = "sim-cc"
    entry_pattern = re.compile(r"\bint\s+main\s*\(")
    entry_hint = "expected `int main(...)`"

    def _translate(self, text: str) -> str:
        lines = ["# auto-generated execution stub (simulated C toolchain)", "import sys", ""]
        for m in re.finditer(r'(printf|puts)\s*\(\s*"((?:[^"\\]|\\.)*)"', text):
            fn, literal = m.group(1), m.group(2)
            printable = _c_unescape(literal)
            if fn == "puts":
                lines.append(f"print({printable!r})")
            else:
                lines.append(f"sys.stdout.write({printable!r})")
        if len(lines) == 3:
            lines.append("pass  # no literal output statements found")
        lines.append("sys.exit(0)")
        return "\n".join(lines) + "\n"


class SimulatedCppToolchain(_SimulatedBase):
    """C++ validator + output-statement translator."""

    language = "cpp"
    name = "sim-c++"
    entry_pattern = re.compile(r"\bint\s+main\s*\(")
    entry_hint = "expected `int main(...)`"

    def _translate(self, text: str) -> str:
        lines = ["# auto-generated execution stub (simulated C++ toolchain)", "import sys", ""]
        # std::cout << "..." [<< std::endl];  plus printf for C-style code.
        for m in re.finditer(r'cout\s*<<\s*"((?:[^"\\]|\\.)*)"([^;]*);', text):
            printable = _c_unescape(m.group(1))
            endl = "endl" in m.group(2) or "\\n" in m.group(1)
            if endl:
                lines.append(f"print({printable.rstrip(chr(10))!r})")
            else:
                lines.append(f"sys.stdout.write({printable!r})")
        for m in re.finditer(r'printf\s*\(\s*"((?:[^"\\]|\\.)*)"', text):
            lines.append(f"sys.stdout.write({_c_unescape(m.group(1))!r})")
        if len(lines) == 3:
            lines.append("pass  # no literal output statements found")
        lines.append("sys.exit(0)")
        return "\n".join(lines) + "\n"


class SimulatedJavaToolchain(_SimulatedBase):
    """Java validator + output-statement translator."""

    language = "java"
    name = "sim-javac"
    entry_pattern = re.compile(r"\bpublic\s+static\s+void\s+main\s*\(")
    entry_hint = "expected `public static void main(...)`"

    def _translate(self, text: str) -> str:
        lines = ["# auto-generated execution stub (simulated Java toolchain)", "import sys", ""]
        for m in re.finditer(r'System\.out\.(println|print)\s*\(\s*"((?:[^"\\]|\\.)*)"\s*\)', text):
            fn, literal = m.group(1), m.group(2)
            printable = _c_unescape(literal)
            if fn == "println":
                lines.append(f"print({printable!r})")
            else:
                lines.append(f"sys.stdout.write({printable!r})")
        if len(lines) == 3:
            lines.append("pass  # no literal output statements found")
        lines.append("sys.exit(0)")
        return "\n".join(lines) + "\n"
