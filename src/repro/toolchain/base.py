"""Toolchain interface and result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = ["Artifact", "CompileResult", "Toolchain"]


@dataclass(frozen=True)
class Artifact:
    """A compiled, runnable thing.

    ``run_argv()`` yields the command line that executes the artifact —
    the portal's executor hands exactly this to the cluster's subprocess
    backend.
    """

    kind: str                      # "binary" | "java-class" | "python-stub"
    path: Path                     # main produced file
    language: str
    entry: str = ""                # e.g. the Java main class name
    extra_paths: tuple[Path, ...] = ()

    def run_argv(self, args: tuple[str, ...] = ()) -> list[str]:
        """Command line to execute this artifact."""
        if self.kind == "binary":
            return [str(self.path), *args]
        if self.kind == "java-class":
            return ["java", "-cp", str(self.path.parent), self.entry or self.path.stem, *args]
        if self.kind == "python-stub":
            return ["python3", str(self.path), *args]
        raise ValueError(f"unknown artifact kind {self.kind!r}")


@dataclass
class CompileResult:
    """Outcome of one compilation."""

    ok: bool
    language: str
    toolchain: str
    diagnostics: str = ""
    artifact: Optional[Artifact] = None
    warnings: list[str] = field(default_factory=list)

    def raise_on_error(self) -> "CompileResult":
        """Raise :class:`~repro._errors.CompilationError` if compilation failed."""
        if not self.ok:
            from repro._errors import CompilationError

            raise CompilationError(
                f"{self.language} compilation failed ({self.toolchain})",
                diagnostics=self.diagnostics,
            )
        return self


class Toolchain:
    """One language's compiler wrapper."""

    #: language key, e.g. "c", "cpp", "java"
    language: str = ""
    #: human-readable name, e.g. "gcc"
    name: str = ""

    def available(self) -> bool:
        """Can this toolchain run on this machine right now?"""
        raise NotImplementedError

    def compile(self, source: Path, workdir: Path) -> CompileResult:
        """Compile ``source``; artefacts land in ``workdir``."""
        raise NotImplementedError
