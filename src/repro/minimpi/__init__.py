"""minimpi — an MPI-flavoured message-passing library for the simulated cluster.

The portal's parallel jobs and the course's Multicore Lab 3 ("Using
Pthread and MPI to ... evaluate the access times to local shared memory
and ... remote memory") need a message-passing runtime.  ``minimpi``
provides one with the mpi4py API surface:

* lowercase, pickle-style methods for arbitrary Python objects —
  ``send``/``recv``/``isend``/``irecv``/``bcast``/``scatter``/``gather``/
  ``reduce``/``allreduce``/``barrier``/``scan``/``alltoall``;
* uppercase buffer methods (``Send``/``Recv``/``Bcast``/``Reduce``) that
  operate on NumPy arrays in place;
* :class:`~repro.minimpi.request.Request` objects with ``test``/``wait``
  for the nonblocking calls;
* Cartesian topologies (:meth:`Comm.create_cart`, ``dims_create``).

Ranks run as OS threads inside one process (the "mock cluster" of this
reproduction), while *communication time* is accounted on a virtual
clock through a :class:`~repro.minimpi.network.NetworkModel`: each
message charges latency × hop-distance + size ÷ bandwidth, so the
latency/ topology/routing topics the paper's Computer Organization
module introduces are measurable even though everything runs locally.

Example
-------
>>> from repro.minimpi import run_mpi
>>> def program(comm):
...     rank = comm.Get_rank()
...     total = comm.allreduce(rank)
...     return total
>>> run_mpi(program, 4)
[6, 6, 6, 6]
"""

from repro.minimpi.network import NetworkModel, Topology
from repro.minimpi.request import Request
from repro.minimpi.comm import ANY_SOURCE, ANY_TAG, Comm, Status
from repro.minimpi.collectives import MAX, MIN, PROD, SUM, ReduceOp
from repro.minimpi.topology import CartComm, dims_create
from repro.minimpi.launcher import MPIFailure, run_mpi

__all__ = [
    "Comm",
    "Status",
    "Request",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "ReduceOp",
    "NetworkModel",
    "Topology",
    "CartComm",
    "dims_create",
    "run_mpi",
    "MPIFailure",
]
