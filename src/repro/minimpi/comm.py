"""Communicators and point-to-point messaging.

Ranks are OS threads; messages are Python objects moved through
per-destination mailboxes with (source, tag) matching, eager (buffered)
send semantics and FIFO ordering per (source, destination, tag) — the
same guarantees MPI gives for matching sends/receives.

Every message also advances a per-rank *virtual clock* using the
:class:`~repro.minimpi.network.NetworkModel`, so programs can ask
``comm.virtual_time_us()`` to see how long their communication pattern
*would* have taken on the modelled interconnect — independent of Python's
actual execution speed.  Lab 3 and the collectives benchmarks are built
on this.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro._errors import MPIError, RankError
from repro.minimpi.network import NetworkModel
from repro.minimpi.request import Request

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Comm"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Tags >= this value are reserved for collective-operation internals.
_COLLECTIVE_TAG_BASE = 1 << 30


@dataclass
class Status:
    """Receive-side message metadata (mpi4py's ``Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0


@dataclass
class _Message:
    source: int
    tag: int
    obj: Any
    nbytes: int
    arrival_us: float
    comm_id: int
    #: set when a synchronous sender is blocked waiting for the match
    sync_event: Optional[threading.Event] = None


class _Mailbox:
    """One rank's incoming message queue with (source, tag) matching."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: list[_Message] = []
        # Posted nonblocking receives waiting for a match:
        self._posted: list[tuple[int, int, int, Request, "Comm"]] = []

    def deliver(self, msg: _Message) -> None:
        with self._cond:
            # Try to satisfy a posted irecv first (FIFO among posts).
            for i, (src, tag, comm_id, req, comm) in enumerate(self._posted):
                if comm_id == msg.comm_id and _matches(src, tag, msg):
                    del self._posted[i]
                    comm._advance_clock_on_recv(msg)
                    if msg.sync_event is not None:
                        msg.sync_event.set()
                    req._complete(msg.obj)
                    return
            self._messages.append(msg)
            self._cond.notify_all()

    def post_recv(self, source: int, tag: int, comm: "Comm", req: Request) -> None:
        with self._cond:
            for i, msg in enumerate(self._messages):
                if msg.comm_id == comm._comm_id and _matches(source, tag, msg):
                    del self._messages[i]
                    comm._advance_clock_on_recv(msg)
                    if msg.sync_event is not None:
                        msg.sync_event.set()
                    req._complete(msg.obj)
                    return
            self._posted.append((source, tag, comm._comm_id, req, comm))

    def blocking_recv(
        self, source: int, tag: int, comm: "Comm", timeout: float | None, status: Status | None
    ) -> Any:
        with self._cond:
            while True:
                for i, msg in enumerate(self._messages):
                    if msg.comm_id == comm._comm_id and _matches(source, tag, msg):
                        del self._messages[i]
                        comm._advance_clock_on_recv(msg)
                        if msg.sync_event is not None:
                            msg.sync_event.set()
                        if status is not None:
                            status.source = msg.source
                            status.tag = msg.tag
                            status.nbytes = msg.nbytes
                        return msg.obj
                comm._abort_check()  # a peer died: fail fast, don't hang
                if not self._cond.wait(timeout):
                    raise MPIError(
                        f"recv(source={source}, tag={tag}) timed out after {timeout}s "
                        "(deadlock or dead peer?)"
                    )

    def probe(self, source: int, tag: int, comm_id: int, block: bool, timeout: float | None) -> Optional[Status]:
        with self._cond:
            while True:
                for msg in self._messages:
                    if msg.comm_id == comm_id and _matches(source, tag, msg):
                        return Status(source=msg.source, tag=msg.tag, nbytes=msg.nbytes)
                if not block:
                    return None
                if not self._cond.wait(timeout):
                    raise MPIError(f"probe(source={source}, tag={tag}) timed out after {timeout}s")


def _matches(want_src: int, want_tag: int, msg: _Message) -> bool:
    if want_src not in (ANY_SOURCE, msg.source):
        return False
    if want_tag == ANY_TAG:
        # A user wildcard must never steal collective-internal traffic —
        # real MPI runs collectives on a separate internal channel.
        return msg.tag < _COLLECTIVE_TAG_BASE
    return want_tag == msg.tag


class _World:
    """Process-wide state of one MPI job (size ranks, one network)."""

    def __init__(self, size: int, network: NetworkModel) -> None:
        self.size = size
        self.network = network
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.clocks_us = [0.0] * size
        self._clock_locks = [threading.Lock() for _ in range(size)]
        self.aborted = threading.Event()
        self.abort_reason: str | None = None

    def advance_clock(self, rank: int, to_at_least: float | None = None, add: float = 0.0) -> float:
        with self._clock_locks[rank]:
            if to_at_least is not None:
                self.clocks_us[rank] = max(self.clocks_us[rank], to_at_least)
            self.clocks_us[rank] += add
            return self.clocks_us[rank]

    def read_clock(self, rank: int) -> float:
        with self._clock_locks[rank]:
            return self.clocks_us[rank]


class Comm:
    """A communicator: a group of ranks that can message each other.

    Created by :func:`~repro.minimpi.launcher.run_mpi` (the world
    communicator) or by :meth:`split`.  API names follow mpi4py: the
    classic ``Get_rank``/``Get_size`` plus pythonic properties.
    """

    def __init__(
        self,
        world: _World,
        rank: int,
        members: list[int] | None = None,
        comm_id: int = 0,
        default_timeout: float | None = 60.0,
    ) -> None:
        self._world = world
        self._members = members if members is not None else list(range(world.size))
        self._world_rank = rank
        self._rank = self._members.index(rank)
        self._comm_id = comm_id
        self._coll_seq = 0
        self.default_timeout = default_timeout

    # -- identity ----------------------------------------------------------
    def Get_rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    def Get_size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._members)

    rank = property(Get_rank)
    size = property(Get_size)

    def _check_peer(self, peer: int) -> int:
        """Validate a communicator-local rank; return the world rank."""
        if not 0 <= peer < len(self._members):
            raise RankError(f"rank {peer} outside [0, {len(self._members)}) in this communicator")
        return self._members[peer]

    # -- virtual time --------------------------------------------------------
    def virtual_time_us(self) -> float:
        """This rank's accumulated communication time (virtual µs)."""
        return self._world.read_clock(self._world_rank)

    def charge_compute_us(self, us: float) -> None:
        """Model local computation: advance this rank's virtual clock."""
        if us < 0:
            raise MPIError(f"cannot charge negative time {us}")
        self._world.advance_clock(self._world_rank, add=us)

    # -- point-to-point --------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager (buffered) send: returns once the message is en route."""
        self._send_internal(obj, dest, tag, self._comm_id)

    def _send_internal(
        self, obj: Any, dest: int, tag: int, comm_id: int,
        sync_event: "threading.Event | None" = None,
    ) -> None:
        self._abort_check()
        world_dest = self._check_peer(dest)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(payload)
        net = self._world.network
        cost = net.cost_us(self._world_rank, world_dest, nbytes, self._world.size)
        send_clock = self._world.advance_clock(self._world_rank, add=net.overhead_us)
        arrival = send_clock + cost
        msg = _Message(
            source=self._rank,
            tag=tag,
            obj=pickle.loads(payload),
            nbytes=nbytes,
            arrival_us=arrival,
            comm_id=comm_id,
            sync_event=sync_event,
        )
        self._world.mailboxes[world_dest].deliver(msg)

    def ssend(self, obj: Any, dest: int, tag: int = 0, timeout: float | None = None) -> None:
        """Synchronous (rendezvous) send: blocks until the receiver matches.

        Unlike the eager :meth:`send`, ``ssend`` only returns once a
        matching ``recv``/``irecv`` has consumed the message — so two
        ranks ssend-ing to each other head-to-head deadlock, the classic
        message-passing pitfall the course teaches.  A timeout raises
        :class:`MPIError` instead of hanging the class demo forever.
        """
        event = threading.Event()
        self._send_internal(obj, dest, tag, self._comm_id, sync_event=event)
        limit = timeout if timeout is not None else self.default_timeout
        while not event.wait(0.05):
            self._abort_check()
            if limit is not None:
                limit -= 0.05
                if limit <= 0:
                    raise MPIError(
                        f"ssend(dest={dest}, tag={tag}) timed out waiting for a matching "
                        "receive (rendezvous deadlock?)"
                    )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Blocking receive; returns the matched object."""
        self._abort_check()
        if source != ANY_SOURCE:
            self._check_peer(source)
        mailbox = self._world.mailboxes[self._world_rank]
        return mailbox.blocking_recv(
            source, tag, self, timeout if timeout is not None else self.default_timeout, status
        )

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send. Eager: completes immediately after buffering."""
        req = Request("isend")
        self.send(obj, dest, tag)
        req._complete(None)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()``/``test()`` yield the object."""
        self._abort_check()
        if source != ANY_SOURCE:
            self._check_peer(source)
        req = Request("irecv")
        self._world.mailboxes[self._world_rank].post_recv(source, tag, self, req)
        return req

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        recvsource: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free exchange)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(recvsource, recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float | None = None) -> Status:
        """Block until a matching message is queued; returns its Status."""
        mb = self._world.mailboxes[self._world_rank]
        st = mb.probe(source, tag, self._comm_id, block=True,
                      timeout=timeout if timeout is not None else self.default_timeout)
        assert st is not None
        return st

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Nonblocking probe: is a matching message waiting?"""
        mb = self._world.mailboxes[self._world_rank]
        return mb.probe(source, tag, self._comm_id, block=False, timeout=None) is not None

    # -- collectives (implemented in collectives.py) -----------------------------
    def barrier(self) -> None:
        """Block until every rank in the communicator has arrived."""
        from repro.minimpi import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns it."""
        from repro.minimpi import collectives

        return collectives.bcast(self, obj, root)

    def scatter(self, sendobjs: list | None = None, root: int = 0) -> Any:
        """Root distributes one element of ``sendobjs`` to each rank."""
        from repro.minimpi import collectives

        return collectives.scatter(self, sendobjs, root)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Collect one object from each rank at ``root`` (rank order)."""
        from repro.minimpi import collectives

        return collectives.gather(self, obj, root)

    def allgather(self, obj: Any) -> list:
        """Every rank gets the list of all ranks' objects."""
        from repro.minimpi import collectives

        return collectives.allgather(self, obj)

    def alltoall(self, sendobjs: list) -> list:
        """Personalised all-to-all exchange."""
        from repro.minimpi import collectives

        return collectives.alltoall(self, sendobjs)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        """Combine all ranks' objects with ``op`` (default SUM) at root."""
        from repro.minimpi import collectives

        return collectives.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op=None) -> Any:
        """reduce + bcast: every rank gets the combined value."""
        from repro.minimpi import collectives

        return collectives.allreduce(self, obj, op)

    def scan(self, obj: Any, op=None) -> Any:
        """Inclusive prefix reduction over rank order."""
        from repro.minimpi import collectives

        return collectives.scan(self, obj, op)

    def exscan(self, obj: Any, op=None) -> Any:
        """Exclusive prefix reduction (rank 0 receives None)."""
        from repro.minimpi import collectives

        return collectives.exscan(self, obj, op)

    def scatterv(self, sendobjs: list | None, counts: list, root: int = 0) -> list:
        """Scatter variable-length blocks (``counts[i]`` items to rank i)."""
        from repro.minimpi import collectives

        return collectives.scatterv(self, sendobjs, counts, root)

    def gatherv(self, block: list, root: int = 0) -> list | None:
        """Gather variable-length blocks; root gets the concatenation."""
        from repro.minimpi import collectives

        return collectives.gatherv(self, block, root)

    def reduce_scatter(self, values: list, op=None) -> Any:
        """Elementwise reduce of per-rank vectors, one slot per rank."""
        from repro.minimpi import collectives

        return collectives.reduce_scatter(self, values, op)

    # -- uppercase (buffer) API ----------------------------------------------
    def Send(self, array, dest: int, tag: int = 0) -> None:
        """Buffer-style send of a NumPy array (contents are copied)."""
        import numpy as np

        self.send(np.ascontiguousarray(array), dest, tag)

    def Recv(self, array, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        """Buffer-style receive *into* ``array`` (shapes must match)."""
        import numpy as np

        data = self.recv(source, tag)
        buf = np.asarray(data)
        if buf.shape != array.shape:
            from repro._errors import TruncationError

            raise TruncationError(
                f"Recv buffer shape {array.shape} != incoming {buf.shape}"
            )
        array[...] = buf

    def Bcast(self, array, root: int = 0) -> None:
        """Buffer-style broadcast into ``array`` on non-root ranks."""
        data = self.bcast(array if self._rank == root else None, root)
        if self._rank != root:
            array[...] = data

    def Reduce(self, sendarr, recvarr, op=None, root: int = 0) -> None:
        """Elementwise buffer reduction into ``recvarr`` at root."""
        result = self.reduce(sendarr, op, root)
        if self._rank == root:
            recvarr[...] = result

    def Allreduce(self, sendarr, recvarr, op=None) -> None:
        """Elementwise buffer allreduce into ``recvarr`` everywhere."""
        recvarr[...] = self.allreduce(sendarr, op)

    # -- communicator management ------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Comm":
        """Partition the communicator by ``color``; order ranks by ``key``.

        All members must call it (it is collective).  Returns the new
        sub-communicator containing the ranks that passed this rank's
        color.
        """
        from repro.minimpi import collectives

        key = key if key is not None else self._rank
        triples = collectives.allgather(self, (color, key, self._rank))
        mine = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        members_local = [r for _, r in mine]
        members_world = [self._members[r] for r in members_local]
        # Deterministic id every member computes identically:
        sub_id = hash((self._comm_id, color, tuple(members_world))) & 0x7FFFFFFF
        return Comm(
            self._world,
            self._world_rank,
            members=members_world,
            comm_id=sub_id,
            default_timeout=self.default_timeout,
        )

    def create_cart(self, dims: list[int], periods: list[bool] | None = None):
        """Cartesian-topology view of this communicator."""
        from repro.minimpi.topology import CartComm

        return CartComm(self, dims, periods)

    # -- failure handling ----------------------------------------------------
    def abort(self, reason: str = "user abort") -> None:
        """Mark the whole job aborted; other ranks fail on next operation."""
        self._world.abort_reason = reason
        self._world.aborted.set()

    def _abort_check(self) -> None:
        if self._world.aborted.is_set():
            raise MPIError(f"job aborted: {self._world.abort_reason}")

    # -- internals ---------------------------------------------------------------
    def _advance_clock_on_recv(self, msg: _Message) -> None:
        net = self._world.network
        self._world.advance_clock(
            self._world_rank, to_at_least=msg.arrival_us, add=net.overhead_us
        )

    def _next_collective_tag(self) -> int:
        """Per-collective matching tag; safe because collectives are called
        in the same order by every member (an MPI requirement)."""
        self._coll_seq += 1
        return _COLLECTIVE_TAG_BASE + self._coll_seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm rank={self._rank}/{self.size} id={self._comm_id}>"
