"""Network cost model: topology, latency, routing.

The paper's Computer Organization module adds "Message Passing topics
such as topology, latency, and routing".  This module makes those
concrete: a :class:`NetworkModel` assigns every (src, dst, nbytes)
message a cost in microseconds computed from

* the *hop distance* between the ranks' nodes in a chosen
  :class:`Topology` (routing = shortest path), and
* a per-hop latency plus a bandwidth term.

The model also understands the paper's cluster shape: the
``segmented`` topology places ranks into segments of ``segment_size``
nodes; intra-segment messages go through the segment switch (1 hop)
while inter-segment messages traverse the grid master (3 hops) — the
exact reason remote (NUMA-like) traffic is slower in Lab 3.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro._errors import MPIError

__all__ = ["Topology", "NetworkModel"]


class Topology(enum.Enum):
    """Supported interconnect shapes."""

    FLAT = "flat"            # full crossbar: 1 hop between any two ranks
    RING = "ring"            # ranks on a ring
    GRID2D = "grid2d"        # near-square 2-D mesh
    HYPERCUBE = "hypercube"  # hops = Hamming distance (size rounded up to 2^k)
    SEGMENTED = "segmented"  # the paper's cluster: segments behind a master


@dataclass(frozen=True)
class NetworkModel:
    """Microsecond-resolution message cost model.

    Parameters
    ----------
    topology:
        Interconnect shape used for hop counting.
    latency_us:
        Per-hop wire+switch latency.
    bandwidth_bytes_per_us:
        Link bandwidth (default 1000 bytes/µs = ~1 GB/s).
    segment_size:
        Only for ``SEGMENTED``: slave nodes per segment (paper: 16).
    overhead_us:
        Fixed software send/receive overhead per message.
    """

    topology: Topology = Topology.FLAT
    latency_us: float = 1.0
    bandwidth_bytes_per_us: float = 1000.0
    segment_size: int = 16
    overhead_us: float = 0.5

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.overhead_us < 0:
            raise MPIError("latencies must be non-negative")
        if self.bandwidth_bytes_per_us <= 0:
            raise MPIError("bandwidth must be positive")
        if self.segment_size < 1:
            raise MPIError("segment_size must be >= 1")

    # -- hop counting ------------------------------------------------------
    def hops(self, src: int, dst: int, size: int) -> int:
        """Routing distance between ranks ``src`` and ``dst`` (of ``size``)."""
        if src == dst:
            return 0
        if not (0 <= src < size and 0 <= dst < size):
            raise MPIError(f"rank out of range: src={src} dst={dst} size={size}")
        if self.topology is Topology.FLAT:
            return 1
        if self.topology is Topology.RING:
            d = abs(src - dst)
            return min(d, size - d)
        if self.topology is Topology.GRID2D:
            cols = max(1, int(math.isqrt(size)))
            r1, c1 = divmod(src, cols)
            r2, c2 = divmod(dst, cols)
            return abs(r1 - r2) + abs(c1 - c2)
        if self.topology is Topology.HYPERCUBE:
            return bin(src ^ dst).count("1")
        if self.topology is Topology.SEGMENTED:
            if src // self.segment_size == dst // self.segment_size:
                return 1  # through the segment's master switch
            return 3  # up to segment master, across grid master, down
        raise MPIError(f"unknown topology {self.topology!r}")  # pragma: no cover

    # -- cost --------------------------------------------------------------
    def cost_us(self, src: int, dst: int, nbytes: int, size: int) -> float:
        """Virtual microseconds for an ``nbytes`` message ``src -> dst``."""
        if src == dst:
            return self.overhead_us  # self-send still pays software overhead
        h = self.hops(src, dst, size)
        return self.overhead_us + h * self.latency_us + nbytes / self.bandwidth_bytes_per_us

    def diameter(self, size: int) -> int:
        """Largest hop distance in a world of ``size`` ranks."""
        if size <= 1:
            return 0
        return max(self.hops(0, d, size) for d in range(1, size))
