"""Nonblocking-operation handles (``isend``/``irecv`` results)."""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro._errors import MPIError

__all__ = ["Request"]


class Request:
    """Completion handle for a nonblocking operation.

    Mirrors mpi4py's ``Request``: ``test()`` polls, ``wait()`` blocks.
    For ``irecv`` the wait/test result is the received object; for
    ``isend`` it is ``None``.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._done = threading.Event()
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._cancelled = False

    # -- completion (called by the comm layer) -----------------------------
    def _complete(self, value: Any = None, exc: BaseException | None = None) -> None:
        self._value = value
        self._exc = exc
        self._done.set()

    # -- user API -----------------------------------------------------------
    def test(self) -> tuple[bool, Any]:
        """Poll: ``(completed, value_or_None)``. Never blocks."""
        if not self._done.is_set():
            return False, None
        if self._exc is not None:
            raise self._exc
        return True, self._value

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; returns the operation's value.

        Raises :class:`MPIError` on timeout (simulating a hung peer).
        """
        if not self._done.wait(timeout):
            raise MPIError(f"{self.kind} request timed out after {timeout}s")
        if self._exc is not None:
            raise self._exc
        return self._value

    def cancel(self) -> None:
        """Mark cancelled. Only unmatched requests are truly cancellable."""
        self._cancelled = True

    @property
    def completed(self) -> bool:
        """``True`` once the operation finished (successfully or not)."""
        return self._done.is_set()

    @staticmethod
    def waitall(requests: list["Request"], timeout: float | None = None) -> list[Any]:
        """Wait for every request; returns their values in order."""
        return [r.wait(timeout) for r in requests]

    @staticmethod
    def testall(requests: list["Request"]) -> tuple[bool, list[Any] | None]:
        """``(all_done, values_or_None)`` without blocking."""
        if all(r.completed for r in requests):
            return True, [r.test()[1] for r in requests]
        return False, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {state}>"
