"""Cartesian process topologies (``MPI_Cart_create`` family)."""

from __future__ import annotations

import math
from typing import Any, Optional

from repro._errors import MPIError, RankError
from repro.minimpi.comm import Comm

__all__ = ["dims_create", "CartComm"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Choose a balanced ``ndims``-dimensional grid for ``nnodes`` ranks.

    Mirrors ``MPI_Dims_create``: the product of the returned dims equals
    ``nnodes`` and the dims are as close to each other as possible,
    sorted non-increasing.
    """
    if nnodes < 1 or ndims < 1:
        raise MPIError(f"dims_create({nnodes}, {ndims}): both must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Greedy: repeatedly give the smallest dim the largest factor <= the
    # balanced target.
    for i in range(ndims - 1):
        target = round(remaining ** (1.0 / (ndims - i)))
        # Find the divisor of `remaining` closest to target (>=1).
        best = 1
        for d in range(1, int(math.isqrt(remaining)) + 1):
            if remaining % d == 0:
                for cand in (d, remaining // d):
                    if abs(cand - target) < abs(best - target):
                        best = cand
        dims[i] = best
        remaining //= best
    dims[ndims - 1] = remaining
    return sorted(dims, reverse=True)


class CartComm:
    """A Cartesian view over an existing communicator.

    Provides coordinate/rank conversion and neighbour shifts; the
    underlying messaging is delegated to the wrapped :class:`Comm`.
    """

    def __init__(self, comm: Comm, dims: list[int], periods: list[bool] | None = None) -> None:
        if math.prod(dims) != comm.size:
            raise MPIError(
                f"cart dims {dims} (= {math.prod(dims)} ranks) do not cover comm size {comm.size}"
            )
        if any(d < 1 for d in dims):
            raise MPIError(f"cart dims must all be >= 1, got {dims}")
        self.comm = comm
        self.dims = list(dims)
        self.periods = list(periods) if periods is not None else [False] * len(dims)
        if len(self.periods) != len(self.dims):
            raise MPIError("periods must have one entry per dimension")

    # -- coordinates --------------------------------------------------------
    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of ``rank`` (row-major)."""
        if not 0 <= rank < self.comm.size:
            raise RankError(f"rank {rank} outside [0, {self.comm.size})")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def rank_of(self, coords: tuple[int, ...] | list[int]) -> int:
        """Rank at ``coords``; honours periodicity, raises off-grid."""
        coords = list(coords)
        if len(coords) != len(self.dims):
            raise MPIError(f"expected {len(self.dims)} coordinates, got {len(coords)}")
        normalised = []
        for c, d, per in zip(coords, self.dims, self.periods):
            if per:
                c %= d
            elif not 0 <= c < d:
                raise RankError(f"coordinate {c} outside non-periodic dimension of extent {d}")
            normalised.append(c)
        rank = 0
        for c, d in zip(normalised, self.dims):
            rank = rank * d + c
        return rank

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's coordinates."""
        return self.coords_of(self.comm.rank)

    # -- neighbours -----------------------------------------------------------
    def shift(self, dimension: int, displacement: int = 1) -> tuple[Optional[int], Optional[int]]:
        """``(source, dest)`` ranks for a shift along ``dimension``.

        ``None`` marks an off-grid neighbour (non-periodic edge), like
        ``MPI_PROC_NULL``.
        """
        if not 0 <= dimension < len(self.dims):
            raise MPIError(f"dimension {dimension} outside [0, {len(self.dims)})")
        me = list(self.coords)

        def neighbour(sign: int) -> Optional[int]:
            c = list(me)
            c[dimension] += sign * displacement
            try:
                return self.rank_of(c)
            except RankError:
                return None

        return neighbour(-1), neighbour(+1)

    def neighbors(self) -> list[int]:
        """All existing ±1 neighbours across every dimension."""
        out = []
        for d in range(len(self.dims)):
            src, dst = self.shift(d, 1)
            for r in (src, dst):
                if r is not None and r not in out:
                    out.append(r)
        return out

    # -- messaging sugar --------------------------------------------------------
    def exchange_with_neighbors(self, obj: Any, tag: int = 0) -> dict[int, Any]:
        """Send ``obj`` to every neighbour; return {neighbour: received}.

        A halo-exchange convenience for stencil examples.
        """
        nbrs = self.neighbors()
        for n in nbrs:
            self.comm.send(obj, n, tag)
        return {n: self.comm.recv(n, tag) for n in nbrs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CartComm dims={self.dims} periods={self.periods} rank={self.comm.rank}>"
