"""In-process ``mpiexec``: run an SPMD function across N rank-threads.

:func:`run_mpi` is the entry point the portal's parallel-job backend and
all examples use::

    def program(comm, *args):
        ...

    results = run_mpi(program, n_ranks=8, args=(...))

Each rank runs ``program`` on its own OS thread with its own
:class:`~repro.minimpi.comm.Comm`.  The launcher joins all ranks,
propagates the first rank failure as :class:`MPIFailure` (with every
rank's traceback attached), and enforces a wall-clock timeout so a
deadlocked student program fails loudly instead of hanging the portal.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro._errors import MPIError
from repro.minimpi.comm import Comm, _World
from repro.minimpi.network import NetworkModel

__all__ = ["MPIFailure", "RankOutcome", "run_mpi"]


@dataclass
class RankOutcome:
    """What one rank produced."""

    rank: int
    value: Any = None
    error: str | None = None


class MPIFailure(MPIError):
    """At least one rank raised; carries all per-rank outcomes."""

    def __init__(self, outcomes: list[RankOutcome]) -> None:
        failed = [o for o in outcomes if o.error is not None]
        lines = [f"{len(failed)} of {len(outcomes)} rank(s) failed:"]
        for o in failed:
            first = o.error.strip().splitlines()[-1] if o.error else "?"
            lines.append(f"  rank {o.rank}: {first}")
        super().__init__("\n".join(lines))
        self.outcomes = outcomes


def run_mpi(
    fn: Callable[..., Any],
    n_ranks: int,
    args: Sequence[Any] = (),
    network: NetworkModel | None = None,
    timeout: float = 120.0,
    op_timeout: float | None = 60.0,
    return_world: bool = False,
):
    """Run ``fn(comm, *args)`` on ``n_ranks`` threads.

    Parameters
    ----------
    fn:
        SPMD program; first parameter is this rank's :class:`Comm`.
    n_ranks:
        World size.
    args:
        Extra positional arguments passed to every rank.
    network:
        Cost model for the virtual communication clock (default: flat
        1 µs/hop, ~1 GB/s).
    timeout:
        Wall-clock seconds to wait for all ranks before declaring the
        job hung.
    op_timeout:
        Per-receive timeout handed to each communicator (None = never).
    return_world:
        Also return the internal world (for virtual-clock inspection).

    Returns
    -------
    list
        Per-rank return values (rank order); or ``(values, world)`` when
        ``return_world`` is set.

    Raises
    ------
    MPIFailure
        If any rank raised, timed out, or the job deadlocked.
    """
    if n_ranks < 1:
        raise MPIError(f"n_ranks must be >= 1, got {n_ranks}")
    world = _World(n_ranks, network or NetworkModel())
    outcomes = [RankOutcome(rank=r) for r in range(n_ranks)]

    def body(rank: int) -> None:
        comm = Comm(world, rank, default_timeout=op_timeout)
        try:
            outcomes[rank].value = fn(comm, *args)
        except BaseException:  # noqa: BLE001 - report any rank failure
            outcomes[rank].error = traceback.format_exc()
            world.abort_reason = f"rank {rank} raised"
            world.aborted.set()
            # Wake peers blocked in recv so they fail fast instead of
            # waiting out their op timeout.
            for mb in world.mailboxes:
                with mb._cond:
                    mb._cond.notify_all()

    threads = [
        threading.Thread(target=body, args=(r,), name=f"minimpi-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    deadline_hit = False
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            deadline_hit = True
            break
    if deadline_hit:
        world.abort_reason = "wall-clock timeout"
        world.aborted.set()
        for mb in world.mailboxes:
            with mb._cond:
                mb._cond.notify_all()
        for t in threads:
            t.join(5.0)
        for r, t in enumerate(threads):
            if t.is_alive() and outcomes[r].error is None:
                outcomes[r].error = f"rank {r} hung (wall-clock timeout {timeout}s)"

    if any(o.error for o in outcomes):
        raise MPIFailure(outcomes)
    values = [o.value for o in outcomes]
    return (values, world) if return_world else values
