"""Collective operations over point-to-point messaging.

Every collective is implemented on top of ``send``/``recv`` with a
per-call reserved tag, using the textbook algorithms so the *virtual
time* accounting reflects realistic costs:

=============  ==========================================
barrier        dissemination (⌈log₂ p⌉ rounds)
bcast          binomial tree
reduce         binomial tree (leaves towards root)
scatter/gather root-linear
allgather      ring (p−1 steps)
alltoall       pairwise exchange
allreduce      reduce + bcast
scan           linear chain
=============  ==========================================

All collectives require every rank of the communicator to call them in
the same order — the standard MPI contract; the per-communicator
collective sequence number turns violations into timeouts rather than
silent cross-matched data.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TYPE_CHECKING

import numpy as np

from repro._errors import MPIError, RankError
from repro.telemetry.registry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.minimpi.comm import Comm

__all__ = [
    "ReduceOp", "SUM", "PROD", "MAX", "MIN",
    "barrier", "bcast", "scatter", "gather",
    "allgather", "alltoall", "reduce", "allreduce", "scan",
    "scatterv", "gatherv", "reduce_scatter", "exscan",
]


class ReduceOp:
    """A named, associative binary reduction operator."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]) -> None:
        self.name = name
        self.fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReduceOp {self.name}>"


def _add(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    return a + b


def _mul(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.multiply(a, b)
    return a * b


def _max(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


SUM = ReduceOp("SUM", _add)
PROD = ReduceOp("PROD", _mul)
MAX = ReduceOp("MAX", _max)
MIN = ReduceOp("MIN", _min)


def _resolve_op(op) -> ReduceOp:
    if op is None:
        return SUM
    if isinstance(op, ReduceOp):
        return op
    if callable(op):
        return ReduceOp(getattr(op, "__name__", "custom"), op)
    raise MPIError(f"invalid reduce op {op!r}")


def _check_root(comm: "Comm", root: int) -> None:
    if not 0 <= root < comm.size:
        raise RankError(f"root {root} outside [0, {comm.size})")


def _timed(fn):
    """Record each collective's wall time in the process-wide registry.

    Collectives have no configuration surface to thread a registry
    through, so they report to :func:`repro.telemetry.get_registry`;
    install a ``NullRegistry`` there and this decorator adds only one
    attribute check per call.  Composite collectives (``allreduce`` =
    reduce + bcast) time each constituent under its own label too.
    """
    op = fn.__name__

    @functools.wraps(fn)
    def wrapper(comm, *args, **kwargs):
        registry = get_registry()
        if not registry.enabled:
            return fn(comm, *args, **kwargs)
        child = registry.histogram(
            "repro_minimpi_collective_seconds",
            "wall time of collective operations",
            labels=("op",),
        ).labels(op)
        t0 = time.perf_counter()
        try:
            return fn(comm, *args, **kwargs)
        finally:
            child.observe(time.perf_counter() - t0)

    return wrapper


# ---------------------------------------------------------------------------
# barrier — dissemination
# ---------------------------------------------------------------------------
@_timed
def barrier(comm: "Comm") -> None:
    """Dissemination barrier: ⌈log₂ p⌉ rounds of pairwise tokens."""
    tag = comm._next_collective_tag()
    p = comm.size
    if p == 1:
        return
    rank = comm.rank
    k = 1
    while k < p:
        comm.send(None, (rank + k) % p, tag)
        comm.recv((rank - k) % p, tag)
        k <<= 1


# ---------------------------------------------------------------------------
# bcast — binomial tree rooted at `root`
# ---------------------------------------------------------------------------
@_timed
def bcast(comm: "Comm", obj: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the object on every rank."""
    _check_root(comm, root)
    tag = comm._next_collective_tag()
    p = comm.size
    if p == 1:
        return obj
    # Work in "virtual rank" space where the root is 0.
    vrank = (comm.rank - root) % p
    if vrank != 0:
        # Receive from parent: clear lowest set bit.
        parent = (vrank & (vrank - 1))
        obj = comm.recv((parent + root) % p, tag)
    # Forward to children: set bits above the lowest set bit / above 0.
    mask = 1
    while mask < p:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child = vrank | mask
            if child < p:
                comm.send(obj, (child + root) % p, tag)
        if vrank & mask:
            break
        mask <<= 1
    return obj


# ---------------------------------------------------------------------------
# reduce — binomial tree towards `root`
# ---------------------------------------------------------------------------
@_timed
def reduce(comm: "Comm", obj: Any, op=None, root: int = 0) -> Any:
    """Tree reduction; only ``root`` receives the combined value."""
    _check_root(comm, root)
    rop = _resolve_op(op)
    tag = comm._next_collective_tag()
    p = comm.size
    vrank = (comm.rank - root) % p
    acc = obj
    mask = 1
    while mask < p:
        if vrank & mask:
            comm.send(acc, ((vrank & ~mask) + root) % p, tag)
            break
        partner = vrank | mask
        if partner < p:
            other = comm.recv((partner + root) % p, tag)
            acc = rop(acc, other)
        mask <<= 1
    return acc if comm.rank == root else None


# ---------------------------------------------------------------------------
# scatter / gather — root-linear
# ---------------------------------------------------------------------------
@_timed
def scatter(comm: "Comm", sendobjs: list | None, root: int = 0) -> Any:
    """Root sends ``sendobjs[i]`` to rank ``i``; each rank returns its piece."""
    _check_root(comm, root)
    tag = comm._next_collective_tag()
    if comm.rank == root:
        if sendobjs is None or len(sendobjs) != comm.size:
            raise MPIError(
                f"scatter needs exactly {comm.size} elements at root, got "
                f"{None if sendobjs is None else len(sendobjs)}"
            )
        mine = None
        for dst in range(comm.size):
            if dst == root:
                mine = sendobjs[dst]
            else:
                comm.send(sendobjs[dst], dst, tag)
        return mine
    return comm.recv(root, tag)


@_timed
def gather(comm: "Comm", obj: Any, root: int = 0) -> list | None:
    """Each rank contributes ``obj``; root returns the rank-ordered list."""
    _check_root(comm, root)
    tag = comm._next_collective_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for src in range(comm.size):
            if src != root:
                out[src] = comm.recv(src, tag)
        return out
    comm.send(obj, root, tag)
    return None


# ---------------------------------------------------------------------------
# allgather — ring
# ---------------------------------------------------------------------------
@_timed
def allgather(comm: "Comm", obj: Any) -> list:
    """Ring allgather: p−1 neighbour exchanges; returns rank-ordered list."""
    tag = comm._next_collective_tag()
    p = comm.size
    out: list[Any] = [None] * p
    out[comm.rank] = obj
    if p == 1:
        return out
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    carry_idx = comm.rank
    for _ in range(p - 1):
        comm.send((carry_idx, out[carry_idx]), right, tag)
        carry_idx, value = comm.recv(left, tag)
        out[carry_idx] = value
    return out


# ---------------------------------------------------------------------------
# alltoall — pairwise exchange
# ---------------------------------------------------------------------------
@_timed
def alltoall(comm: "Comm", sendobjs: list) -> list:
    """Personalised exchange: result[i] is what rank i sent to this rank.

    Ring schedule: at step ``s`` every rank sends to ``rank+s`` and
    receives from ``rank-s`` (mod p).  Eager sends make the pattern
    deadlock-free for any communicator size.
    """
    p = comm.size
    if len(sendobjs) != p:
        raise MPIError(f"alltoall needs exactly {p} elements, got {len(sendobjs)}")
    tag = comm._next_collective_tag()
    out: list[Any] = [None] * p
    out[comm.rank] = sendobjs[comm.rank]
    for step in range(1, p):
        dst = (comm.rank + step) % p
        src = (comm.rank - step) % p
        comm.send(sendobjs[dst], dst, tag)
        out[src] = comm.recv(src, tag)
    return out


# ---------------------------------------------------------------------------
# allreduce / scan
# ---------------------------------------------------------------------------
@_timed
def allreduce(comm: "Comm", obj: Any, op=None) -> Any:
    """reduce-to-0 then bcast — every rank gets the combined value."""
    partial = reduce(comm, obj, op, root=0)
    return bcast(comm, partial, root=0)


@_timed
def scan(comm: "Comm", obj: Any, op=None) -> Any:
    """Inclusive prefix reduction along rank order (linear chain)."""
    rop = _resolve_op(op)
    tag = comm._next_collective_tag()
    acc = obj
    if comm.rank > 0:
        upstream = comm.recv(comm.rank - 1, tag)
        acc = rop(upstream, obj)
    if comm.rank < comm.size - 1:
        comm.send(acc, comm.rank + 1, tag)
    return acc


# ---------------------------------------------------------------------------
# variable-count collectives
# ---------------------------------------------------------------------------
@_timed
def scatterv(comm: "Comm", sendobjs: list | None, counts: list[int], root: int = 0) -> list:
    """Scatter variable-length blocks: rank ``i`` gets ``counts[i]`` items.

    ``sendobjs`` (root only) is the flat list; every rank must pass the
    same ``counts`` (the usual MPI contract).
    """
    _check_root(comm, root)
    if len(counts) != comm.size or any(c < 0 for c in counts):
        raise MPIError(f"scatterv needs {comm.size} non-negative counts, got {counts}")
    tag = comm._next_collective_tag()
    if comm.rank == root:
        if sendobjs is None or len(sendobjs) != sum(counts):
            raise MPIError(
                f"scatterv needs {sum(counts)} items at root, got "
                f"{None if sendobjs is None else len(sendobjs)}"
            )
        offset = 0
        mine: list = []
        for dst, count in enumerate(counts):
            block = list(sendobjs[offset : offset + count])
            offset += count
            if dst == root:
                mine = block
            else:
                comm.send(block, dst, tag)
        return mine
    return comm.recv(root, tag)


@_timed
def gatherv(comm: "Comm", block: list, root: int = 0) -> list | None:
    """Gather variable-length blocks; root returns the flat concatenation.

    Unlike MPI's C API no counts are needed — object messages carry
    their own length.
    """
    _check_root(comm, root)
    tag = comm._next_collective_tag()
    if comm.rank == root:
        out: list = []
        blocks: dict[int, list] = {root: list(block)}
        for src in range(comm.size):
            if src != root:
                blocks[src] = comm.recv(src, tag)
        for src in range(comm.size):
            out.extend(blocks[src])
        return out
    comm.send(list(block), root, tag)
    return None


@_timed
def reduce_scatter(comm: "Comm", values: list, op=None) -> Any:
    """Elementwise reduction of per-rank lists, then scatter one slot each.

    Every rank contributes a list of ``comm.size`` values; rank ``i``
    receives ``reduce(op, [contrib[i] for every rank])``.
    """
    p = comm.size
    if len(values) != p:
        raise MPIError(f"reduce_scatter needs exactly {p} values, got {len(values)}")
    rop = _resolve_op(op)
    # reduce-to-root the whole vector, then scatter the slots.
    combined = reduce(comm, list(values), lambda a, b: [rop(x, y) for x, y in zip(a, b)], root=0)
    return scatter(comm, combined if comm.rank == 0 else None, root=0)


@_timed
def exscan(comm: "Comm", obj: Any, op=None) -> Any:
    """Exclusive prefix reduction: rank 0 gets ``None``, rank i gets
    ``op(obj_0, ..., obj_{i-1})``."""
    rop = _resolve_op(op)
    tag = comm._next_collective_tag()
    upstream = None
    if comm.rank > 0:
        upstream = comm.recv(comm.rank - 1, tag)
    if comm.rank < comm.size - 1:
        downstream = obj if upstream is None else rop(upstream, obj)
        comm.send(downstream, comm.rank + 1, tag)
    return upstream
